"""The declarative system configuration: every structural controller
knob as data.

A :class:`SystemConfig` names the pluggable components one simulated
memory system is assembled from — how many channels, which request
scheduler (:data:`repro.controller.scheduler.SCHEDULERS`), which
physical-address mapping (:data:`repro.dram.address.MAPPINGS`), which
refresh policy (:data:`repro.dram.refresh.REFRESH_POLICIES`) and which
page policy — plus per-component parameter dicts.  Everything that
assembles a system (:class:`repro.cpu.system.System`,
:class:`repro.controller.memory_system.MemorySystem`,
:func:`repro.experiments.common.build_system`, the campaign engine,
the bench workloads, the CLI) takes one of these instead of scattered
keyword arguments, so a new registered component is immediately
sweepable everywhere.

Like :class:`repro.campaigns.scenario.Scenario`, a ``SystemConfig`` is
plain data: it round-trips through dicts/JSON, crosses process-pool
boundaries by value, and has a stable content hash.  Fields equal to
their defaults are **omitted** from the canonical dict, so the default
config serializes to ``{}`` and every pre-existing scenario ID and
persisted campaign result is unchanged.
"""

from __future__ import annotations

from dataclasses import MISSING as _MISSING
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, Dict, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.scheduler import BankQueueScheduler
    from repro.core.engine import Engine
    from repro.dram.address import AddressMapping
    from repro.dram.config import DramConfig, DramOrganization
    from repro.dram.rank import Channel
    from repro.dram.refresh import RefreshScheduler

#: The field defaults, used for default-omission in :meth:`to_dict`.
DEFAULT_SCHEDULER = "fr_fcfs"
DEFAULT_MAPPING = "mop"
DEFAULT_REFRESH = "periodic"
DEFAULT_PAGE_POLICY = "open"


@dataclass(frozen=True)
class SystemConfig:
    """Declarative assembly spec for one simulated memory system.

    ``channels`` scales the memory system (one controller per
    channel); the name fields select registered components and the
    ``*_params`` mappings carry component-specific knobs (``cap`` /
    ``batch`` / ``queue_depth`` for schedulers, ``mop_width`` for the
    MOP mapping).  The default instance reproduces the historical
    hard-wired system bit-for-bit.
    """

    channels: int = 1
    scheduler: str = DEFAULT_SCHEDULER
    mapping: str = DEFAULT_MAPPING
    refresh: str = DEFAULT_REFRESH
    page_policy: str = DEFAULT_PAGE_POLICY
    scheduler_params: Mapping[str, Any] = field(default_factory=dict)
    mapping_params: Mapping[str, Any] = field(default_factory=dict)
    refresh_params: Mapping[str, Any] = field(default_factory=dict)
    #: Attach the online DRAM protocol sanitizer
    #: (:class:`repro.dram.sanitizer.ProtocolChecker`) to every
    #: controller.  Purely observational: results are bit-identical,
    #: but any protocol violation raises instead of going unnoticed.
    sanitize: bool = False
    #: Attach the structured trace recorder
    #: (:class:`repro.obs.trace.TraceRecorder`): the served command
    #: stream, REF/RFM windows, PRAC counter updates and ABO alert
    #: lifecycles become typed events exportable as JSONL / Chrome
    #: trace_event.  Observational like ``sanitize``: results are
    #: bit-identical, the off path is untouched.
    trace: bool = False
    #: Attach the metrics registry + periodic time-series sampler
    #: (:mod:`repro.obs.metrics` / :mod:`repro.obs.sampler`): windowed
    #: queue-depth / row-hit-rate / bus-occupancy / alert-rate series
    #: over sim-time intervals.  Simulation results are unchanged (the
    #: sampler only reads state); the off path does no telemetry work.
    metrics: bool = False

    # ------------------------------------------------------------------
    def validate(self) -> "SystemConfig":
        """Raise ValueError on any unknown/inconsistent value.

        Component names are checked against their registries, so the
        error lists the spellings that would have worked and the field
        that was wrong.
        """
        # Late imports: the registries live next to the components and
        # the component modules import this one.
        from repro.controller.scheduler import SCHEDULERS
        from repro.dram.address import MAPPINGS
        from repro.dram.refresh import REFRESH_POLICIES

        if not isinstance(self.channels, int) or self.channels < 1:
            raise ValueError("channels must be a positive integer")
        SCHEDULERS.get(self.scheduler)
        MAPPINGS.get(self.mapping)
        REFRESH_POLICIES.get(self.refresh)
        if self.page_policy not in ("open", "closed"):
            raise ValueError(
                "unknown page policy "
                f"{self.page_policy!r} (config field 'page_policy'); "
                "have ['closed', 'open']"
            )
        for name in ("scheduler_params", "mapping_params", "refresh_params"):
            if not isinstance(getattr(self, name), Mapping):
                raise ValueError(f"{name} must be a mapping")
        for name in ("sanitize", "trace", "metrics"):
            if not isinstance(getattr(self, name), bool):
                raise ValueError(f"{name} must be a bool")
        return self

    # ------------------------------------------------------------------
    # Component construction
    # ------------------------------------------------------------------
    def make_mapping(self, org: "DramOrganization") -> "AddressMapping":
        """Build this config's address mapping for ``org``."""
        from repro.dram.address import MAPPINGS

        return MAPPINGS.make(self.mapping, org, **dict(self.mapping_params))

    def make_scheduler(self, num_banks: int) -> "BankQueueScheduler":
        """Build this config's request scheduler for one channel."""
        from repro.controller.scheduler import SCHEDULERS

        return SCHEDULERS.make(
            self.scheduler, num_banks=num_banks, **dict(self.scheduler_params)
        )

    def make_refresh(
        self,
        engine: "Engine",
        channel: "Channel",
        config: "DramConfig",
        tref_per_trefi: float = 0.0,
    ) -> "RefreshScheduler":
        """Build this config's refresh scheduler for one channel."""
        from repro.dram.refresh import REFRESH_POLICIES

        return REFRESH_POLICIES.make(
            self.refresh,
            engine,
            channel,
            config,
            tref_per_trefi=tref_per_trefi,
            **dict(self.refresh_params),
        )

    def apply_to(self, dram_config: "DramConfig") -> "DramConfig":
        """Project this config onto a device config (channel count).

        Mirrors the historical ``channels=N`` keyword: a non-default
        ``channels`` overrides the device organization; the default of
        1 leaves a caller-supplied multi-channel organization alone.
        """
        if self.channels != 1 and (
            self.channels != dram_config.organization.channels
        ):
            dram_config = dram_config.with_organization(channels=self.channels)
        return dram_config

    # ------------------------------------------------------------------
    # Identity & serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (JSON-able; params copied).

        Fields equal to their defaults are omitted, so the default
        config is ``{}`` and adding a future axis never moves the hash
        of configs that do not use it.
        """
        spec: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            default = f.default if f.default_factory is _MISSING else f.default_factory()  # type: ignore[misc]
            if f.name.endswith("_params"):
                value = dict(value)
            if value != default:
                spec[f.name] = value
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "SystemConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys, validates."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(
                f"unknown system config keys: {unknown}; have {sorted(known)}"
            )
        kwargs = dict(spec)
        for name in ("scheduler_params", "mapping_params", "refresh_params"):
            if name in kwargs:
                kwargs[name] = dict(kwargs[name] or {})
        return cls(**kwargs).validate()

    @property
    def content_hash(self) -> str:
        """Stable content hash of the canonical spec dict."""
        from repro.analysis.storage import content_key

        return content_key(self.to_dict())[:12]

    def is_default(self) -> bool:
        """Whether this is the (historically hard-wired) default system."""
        return not self.to_dict()

    def replace(self, **overrides: Any) -> "SystemConfig":
        """Copy with the given fields overridden."""
        return replace(self, **overrides)


#: The default system — one channel, FR-FCFS, MOP, periodic refresh,
#: open page — i.e. exactly the pre-refactor hard-wired assembly.
DEFAULT_SYSTEM = SystemConfig()
