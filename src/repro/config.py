"""The declarative system configuration: every structural controller
knob as data.

A :class:`SystemConfig` names the pluggable components one simulated
memory system is assembled from — how many channels, which request
scheduler (:data:`repro.controller.scheduler.SCHEDULERS`), which
physical-address mapping (:data:`repro.dram.address.MAPPINGS`), which
refresh policy (:data:`repro.dram.refresh.REFRESH_POLICIES`) and which
page policy — plus per-component parameter dicts.  Everything that
assembles a system (:class:`repro.cpu.system.System`,
:class:`repro.controller.memory_system.MemorySystem`,
:func:`repro.experiments.common.build_system`, the campaign engine,
the bench workloads, the CLI) takes one of these instead of scattered
keyword arguments, so a new registered component is immediately
sweepable everywhere.

Like :class:`repro.campaigns.scenario.Scenario`, a ``SystemConfig`` is
plain data: it round-trips through dicts/JSON, crosses process-pool
boundaries by value, and has a stable content hash.  Fields equal to
their defaults are **omitted** from the canonical dict, so the default
config serializes to ``{}`` and every pre-existing scenario ID and
persisted campaign result is unchanged.
"""

from __future__ import annotations

from dataclasses import MISSING as _MISSING
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.scheduler import BankQueueScheduler
    from repro.core.engine import Engine
    from repro.core.engines import EngineBackend
    from repro.cpu.hierarchy import MemoryHierarchy
    from repro.cpu.interconnect import Interconnect
    from repro.dram.address import AddressMapping
    from repro.dram.config import DramConfig, DramOrganization
    from repro.dram.rank import Channel
    from repro.dram.refresh import RefreshScheduler
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import TraceRecorder
    from repro.registry import Registry

#: The field defaults, used for default-omission in :meth:`to_dict`.
DEFAULT_SCHEDULER = "fr_fcfs"
DEFAULT_MAPPING = "mop"
DEFAULT_REFRESH = "periodic"
DEFAULT_PAGE_POLICY = "open"
DEFAULT_CACHE = "none"
DEFAULT_INTERCONNECT = "none"
DEFAULT_ENGINE = "event"

#: Every registry-backed component axis, in declaration order.  Each
#: axis ``a`` is a pair of fields — ``a`` (the registered name) and
#: ``a_params`` (its keyword arguments) — and one registry; the generic
#: :meth:`SystemConfig.validate` / :meth:`SystemConfig.component` paths
#: are driven by this table, so a future axis is one tuple entry plus
#: its two fields, not another hand-written clause.
COMPONENT_AXES = (
    "scheduler", "mapping", "refresh", "cache", "interconnect", "engine",
)


def component_registries() -> Dict[str, "Registry"]:
    """Axis name -> registry for every entry of :data:`COMPONENT_AXES`.

    Resolved late on every call: the registries live next to their
    components and the component modules import this one.
    """
    from repro.controller.scheduler import SCHEDULERS
    from repro.core.engines import ENGINES
    from repro.cpu.hierarchy import CACHES
    from repro.cpu.interconnect import INTERCONNECTS
    from repro.dram.address import MAPPINGS
    from repro.dram.refresh import REFRESH_POLICIES

    return {
        "scheduler": SCHEDULERS,
        "mapping": MAPPINGS,
        "refresh": REFRESH_POLICIES,
        "cache": CACHES,
        "interconnect": INTERCONNECTS,
        "engine": ENGINES,
    }


@dataclass(frozen=True)
class SystemConfig:
    """Declarative assembly spec for one simulated memory system.

    ``channels`` scales the memory system (one controller per
    channel); the name fields select registered components and the
    ``*_params`` mappings carry component-specific knobs (``cap`` /
    ``batch`` / ``queue_depth`` for schedulers, ``mop_width`` for the
    MOP mapping).  The default instance reproduces the historical
    hard-wired system bit-for-bit.
    """

    channels: int = 1
    scheduler: str = DEFAULT_SCHEDULER
    mapping: str = DEFAULT_MAPPING
    refresh: str = DEFAULT_REFRESH
    page_policy: str = DEFAULT_PAGE_POLICY
    #: cache hierarchy in front of the memory system
    #: (:data:`repro.cpu.hierarchy.CACHES`); ``"none"`` is the
    #: historical direct core -> controller wiring.
    cache: str = DEFAULT_CACHE
    #: interconnect between the last cache level (or the cores) and the
    #: memory system (:data:`repro.cpu.interconnect.INTERCONNECTS`).
    interconnect: str = DEFAULT_INTERCONNECT
    #: execution backend (:data:`repro.core.engines.ENGINES`);
    #: ``"event"`` is the exact historical kernel, ``"batched"`` the
    #: numpy-accelerated controller hot loop, ``"sharded"`` per-channel
    #: worker processes for ``channels > 1``.
    engine: str = DEFAULT_ENGINE
    scheduler_params: Mapping[str, Any] = field(default_factory=dict)
    mapping_params: Mapping[str, Any] = field(default_factory=dict)
    refresh_params: Mapping[str, Any] = field(default_factory=dict)
    cache_params: Mapping[str, Any] = field(default_factory=dict)
    interconnect_params: Mapping[str, Any] = field(default_factory=dict)
    engine_params: Mapping[str, Any] = field(default_factory=dict)
    #: Attach the online DRAM protocol sanitizer
    #: (:class:`repro.dram.sanitizer.ProtocolChecker`) to every
    #: controller.  Purely observational: results are bit-identical,
    #: but any protocol violation raises instead of going unnoticed.
    sanitize: bool = False
    #: Attach the structured trace recorder
    #: (:class:`repro.obs.trace.TraceRecorder`): the served command
    #: stream, REF/RFM windows, PRAC counter updates and ABO alert
    #: lifecycles become typed events exportable as JSONL / Chrome
    #: trace_event.  Observational like ``sanitize``: results are
    #: bit-identical, the off path is untouched.
    trace: bool = False
    #: Attach the metrics registry + periodic time-series sampler
    #: (:mod:`repro.obs.metrics` / :mod:`repro.obs.sampler`): windowed
    #: queue-depth / row-hit-rate / bus-occupancy / alert-rate series
    #: over sim-time intervals.  Simulation results are unchanged (the
    #: sampler only reads state); the off path does no telemetry work.
    metrics: bool = False

    # ------------------------------------------------------------------
    def validate(self) -> "SystemConfig":
        """Raise ValueError on any unknown/inconsistent value.

        Component axes are checked generically against
        :data:`COMPONENT_AXES`: every name goes through its registry
        (so the error lists the spellings that would have worked and
        the field that was wrong) and every params field must be a
        mapping.
        """
        if not isinstance(self.channels, int) or self.channels < 1:
            raise ValueError("channels must be a positive integer")
        registries = component_registries()
        for axis in COMPONENT_AXES:
            registries[axis].get(getattr(self, axis))
            if not isinstance(getattr(self, axis + "_params"), Mapping):
                raise ValueError(f"{axis}_params must be a mapping")
        if self.page_policy not in ("open", "closed"):
            raise ValueError(
                "unknown page policy "
                f"{self.page_policy!r} (config field 'page_policy'); "
                "have ['closed', 'open']"
            )
        for name in ("sanitize", "trace", "metrics"):
            if not isinstance(getattr(self, name), bool):
                raise ValueError(f"{name} must be a bool")
        return self

    # ------------------------------------------------------------------
    # Uniform component specs
    # ------------------------------------------------------------------
    def component(self, axis: str) -> "Tuple[str, Dict[str, Any]]":
        """``(name, params)`` spec of one registry-backed axis.

        The uniform accessor over :data:`COMPONENT_AXES`:
        ``config.component("scheduler")`` replaces reaching for the
        ``scheduler`` / ``scheduler_params`` field pair, and an unknown
        axis fails with the registry-style error shape.
        """
        if axis not in COMPONENT_AXES:
            raise ValueError(
                f"unknown component axis {axis!r}; "
                f"have {sorted(COMPONENT_AXES)}"
            )
        return getattr(self, axis), dict(getattr(self, axis + "_params"))

    # ------------------------------------------------------------------
    # Component construction
    # ------------------------------------------------------------------
    def make_mapping(self, org: "DramOrganization") -> "AddressMapping":
        """Build this config's address mapping for ``org``."""
        from repro.dram.address import MAPPINGS

        return MAPPINGS.make(self.mapping, org, **dict(self.mapping_params))

    def make_scheduler(self, num_banks: int) -> "BankQueueScheduler":
        """Build this config's request scheduler for one channel."""
        from repro.controller.scheduler import SCHEDULERS

        return SCHEDULERS.make(
            self.scheduler, num_banks=num_banks, **dict(self.scheduler_params)
        )

    def make_refresh(
        self,
        engine: "Engine",
        channel: "Channel",
        config: "DramConfig",
        tref_per_trefi: float = 0.0,
    ) -> "RefreshScheduler":
        """Build this config's refresh scheduler for one channel."""
        from repro.dram.refresh import REFRESH_POLICIES

        return REFRESH_POLICIES.make(
            self.refresh,
            engine,
            channel,
            config,
            tref_per_trefi=tref_per_trefi,
            **dict(self.refresh_params),
        )

    def make_engine(self) -> "EngineBackend":
        """Build this config's execution backend.

        ``engine_params`` are keyword arguments of the backend factory
        (e.g. ``{"numpy": False}`` for the batched backend's
        pure-Python fallback, ``{"quantum": 4000.0}`` for the sharded
        backend's epoch length).
        """
        from repro.core.engines import ENGINES

        return ENGINES.make(self.engine, **dict(self.engine_params))

    def make_interconnect(self) -> "Optional[Interconnect]":
        """Build this config's interconnect (``None`` for ``"none"``)."""
        from repro.cpu.interconnect import INTERCONNECTS

        return INTERCONNECTS.make(
            self.interconnect, **dict(self.interconnect_params)
        )

    def make_cache(
        self,
        engine: "Engine",
        memory: Any,
        num_cores: int,
        interconnect: "Optional[Interconnect]" = None,
        recorder: "Optional[TraceRecorder]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> "Optional[MemoryHierarchy]":
        """Build this config's cache hierarchy (``None`` for ``"none"``).

        ``memory`` is the downstream request sink (usually the
        :class:`~repro.controller.memory_system.MemorySystem`);
        ``interconnect`` routes the hierarchy's DRAM traffic when set.
        """
        from repro.cpu.hierarchy import CACHES

        return CACHES.make(
            self.cache,
            engine,
            memory,
            num_cores,
            interconnect=interconnect,
            recorder=recorder,
            metrics=metrics,
            **dict(self.cache_params),
        )

    def apply_to(self, dram_config: "DramConfig") -> "DramConfig":
        """Project this config onto a device config (channel count).

        Mirrors the historical ``channels=N`` keyword: a non-default
        ``channels`` overrides the device organization; the default of
        1 leaves a caller-supplied multi-channel organization alone.
        """
        if self.channels != 1 and (
            self.channels != dram_config.organization.channels
        ):
            dram_config = dram_config.with_organization(channels=self.channels)
        return dram_config

    # ------------------------------------------------------------------
    # Identity & serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (JSON-able; params copied).

        Fields equal to their defaults are omitted, so the default
        config is ``{}`` and adding a future axis never moves the hash
        of configs that do not use it.
        """
        spec: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            default = f.default if f.default_factory is _MISSING else f.default_factory()  # type: ignore[misc]
            if f.name.endswith("_params"):
                value = dict(value)
            if value != default:
                spec[f.name] = value
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "SystemConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys, validates."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(
                f"unknown system config keys: {unknown}; have {sorted(known)}"
            )
        kwargs = dict(spec)
        for axis in COMPONENT_AXES:
            name = axis + "_params"
            if name in kwargs:
                kwargs[name] = dict(kwargs[name] or {})
        return cls(**kwargs).validate()

    @property
    def content_hash(self) -> str:
        """Stable content hash of the canonical spec dict."""
        from repro.analysis.storage import content_key

        return content_key(self.to_dict())[:12]

    def is_default(self) -> bool:
        """Whether this is the (historically hard-wired) default system."""
        return not self.to_dict()

    def replace(self, **overrides: Any) -> "SystemConfig":
        """Copy with the given fields overridden."""
        return replace(self, **overrides)


#: The default system — one channel, FR-FCFS, MOP, periodic refresh,
#: open page — i.e. exactly the pre-refactor hard-wired assembly.
DEFAULT_SYSTEM = SystemConfig()
