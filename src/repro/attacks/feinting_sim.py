"""Executable Feinting attack against the live simulator.

The analytical model (:mod:`repro.analysis.feinting`) predicts the
worst-case activations TMAX an adversary can land on one row under
TPRAC.  This module *runs* the attack: a round-based driver that
uniformly activates a decoy pool plus a target row, drops mitigated
rows from the pool, and finally concentrates on the target — then
reports the target's actual peak counter for comparison against the
analytical bound.  Used by tests and the ablation benches to confirm
the simulator never exceeds the theory (the theory is a worst case, so
``measured <= analytical`` must hold; a violation would mean a bug in
either the model or the defense).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.analysis.feinting import feinting_target_acts
from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.config import DramConfig, small_test_config
from repro.mitigations import make_policy


@dataclass
class FeintingRunResult:
    """Outcome of one executed Feinting attack."""

    pool_size: int
    tb_window: float
    target_peak: int          # max counter the target row ever reached
    analytical_tmax: int      # the model's bound for this configuration
    alerts: int
    rounds_executed: int
    mitigations: int

    @property
    def within_bound(self) -> bool:
        return self.target_peak <= self.analytical_tmax

    @property
    def defense_held(self) -> bool:
        return self.alerts == 0


class FeintingAttack:
    """Round-based Feinting driver (Section 4.2.1 pattern)."""

    def __init__(
        self,
        pool_size: int = 16,
        tb_window: Optional[float] = None,
        nbo: int = 10_000,
        config: Optional[DramConfig] = None,
        max_rounds: int = 4096,
    ) -> None:
        self.config = (config or small_test_config(rows_per_bank=4096)).with_prac(
            nbo=nbo, abo_act=0
        )
        timing = self.config.timing
        chain_ns = (timing.tRCD + timing.tCL + timing.tBL) + timing.tRP
        # Default window: ~24 activations per window at the chain cadence.
        self.tb_window = tb_window if tb_window is not None else 24 * chain_ns
        self.pool_size = pool_size
        self.max_rounds = max_rounds
        self.target_row = 0
        self.decoy_rows = list(range(1, pool_size))

    # ------------------------------------------------------------------
    def run(self) -> FeintingRunResult:
        """Run the experiment at the configured scale; returns the result object."""
        engine = Engine()
        policy = make_policy("tprac", tb_window=self.tb_window)
        controller = MemoryController(
            engine, self.config, policy=policy,
            enable_refresh=False, record_samples=False,
        )
        bank = controller.channel.bank(0)
        state = {
            "pool": [self.target_row] + list(self.decoy_rows),
            "cursor": 0,
            "rounds": 0,
            "target_peak": 0,
            "final_acts": 0,
            "phase": "feint",
        }
        mitigated_seen: Set[int] = set()
        acts_per_window = max(1, int(self.tb_window // 70.0))

        def note_mitigations() -> None:
            for record in controller.stats.rfm_records:
                victim = record.mitigated_rows.get(0)
                if victim is not None:
                    mitigated_seen.add(victim)

        def issue(req=None) -> None:
            state["target_peak"] = max(
                state["target_peak"], bank.counter(self.target_row)
            )
            if state["phase"] == "done":
                return
            if state["phase"] == "final":
                if state["final_acts"] >= acts_per_window + 4:
                    state["phase"] = "done"
                    return
                state["final_acts"] += 1
                row = (
                    self.target_row
                    if state["final_acts"] % 2
                    else self.decoy_rows[0] + self.pool_size  # fresh conflictor
                )
                controller.enqueue(
                    MemRequest(
                        phys_addr=bank_address(controller, 0, row), on_complete=issue
                    )
                )
                return
            # Feinting phase: activate the surviving pool uniformly.
            note_mitigations()
            pool = [
                row
                for row in state["pool"]
                if row == self.target_row or row not in mitigated_seen
            ]
            state["pool"] = pool
            if len(pool) <= 1 or state["rounds"] >= self.max_rounds:
                state["phase"] = "final"
                engine.schedule(engine.now, issue)
                return
            row = pool[state["cursor"] % len(pool)]
            state["cursor"] += 1
            if state["cursor"] % len(pool) == 0:
                state["rounds"] += 1
            controller.enqueue(
                MemRequest(
                    phys_addr=bank_address(controller, 0, row), on_complete=issue
                )
            )

        issue()
        engine.run(until=500_000_000, max_events=20_000_000)
        state["target_peak"] = max(
            state["target_peak"], bank.counter(self.target_row)
        )
        analytical = feinting_target_acts(self.pool_size, acts_per_window)
        return FeintingRunResult(
            pool_size=self.pool_size,
            tb_window=self.tb_window,
            target_peak=state["target_peak"],
            analytical_tmax=analytical,
            alerts=controller.abo.alert_count,
            rounds_executed=state["rounds"],
            mitigations=policy.mitigations_performed,
        )
