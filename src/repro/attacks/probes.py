"""Attacker primitives: the latency probe and the hammering sender.

The probe is the receiver side of every PRACLeak variant: a thread in a
different bank that issues memory accesses in a closed loop and records
each access's end-to-end latency.  An RFMab anywhere on the channel
blocks the probe's bank too, so the probe sees a latency spike whose
magnitude (~N_mit * tRFMab) identifies the mitigation (Figure 3).

Two probing modes mirror the paper:

* ``same_row`` (open-page): re-access one row repeatedly — every access
  is a row-buffer hit, so the probe's own activation counters never
  move and it cannot self-induce an ABO.
* ``rotate_rows`` (closed-page): round-robin over many rows, keeping
  each row's counter growth negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.dram.address import DramAddress


def bank_address(
    controller: MemoryController, bank: int, row: int, column: int = 0, rank: int = 0
) -> int:
    """Physical address of (rank, flat-bank, row, column) on the channel."""
    org = controller.config.organization
    bank_group, bank_in_group = divmod(bank % org.banks_per_rank, org.banks_per_group)
    return controller.mapping.encode(
        DramAddress(
            channel=0,
            rank=rank,
            bank_group=bank_group,
            bank=bank_in_group,
            row=row,
            column=column,
        )
    )


def is_rfm_spike(
    latency: float,
    done_time: float,
    timing,
    threshold_ns: float = 250.0,
    baseline_ns: float = 0.0,
) -> bool:
    """Classify a latency spike as RFM-caused rather than refresh-caused.

    The attacker knows the refresh grid (tREFI-periodic) and the
    blocking durations, and can calibrate its own no-contention access
    latency (``baseline_ns``).  A refresh-only spike completes shortly
    after a grid point with *excess* latency ~tRFC; a single RFMab
    stalls only tRFMab = tRFC - 60 ns, so the excess distinguishes them
    even when an RFM lands right before the grid.  Channel blocking
    serializes, so an RFM colliding with a refresh produces an additive
    stall (>= tRFC + tRFMab) and is always detected.

    A spike is therefore dismissed as "just the refresh" only when it
    is on-grid *and* its baseline-corrected excess sits inside the
    refresh band [tRFC - 40, tRFC + 160].
    """
    if latency <= threshold_ns:
        return False
    phase = done_time % timing.tREFI
    on_refresh_grid = phase < timing.tRFC + 300.0
    excess = latency - baseline_ns
    refresh_band = (timing.tRFC - 40.0) <= excess <= (timing.tRFC + 160.0)
    return not (on_refresh_grid and refresh_band)


@dataclass
class ProbeResult:
    """Latency trace observed by the probe."""

    times: List[float] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)

    def spikes(self, threshold_ns: float) -> List[int]:
        """Indices of probe accesses whose latency exceeded the threshold."""
        return [i for i, lat in enumerate(self.latencies) if lat > threshold_ns]

    def spike_times(self, threshold_ns: float) -> List[float]:
        """Completion times of probe accesses above the threshold."""
        return [self.times[i] for i in self.spikes(threshold_ns)]

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def baseline(self, threshold_ns: float = 250.0) -> float:
        """Median uncontended latency (spikes excluded) — the attacker's
        calibration input to :func:`is_rfm_spike`."""
        normal = sorted(lat for lat in self.latencies if lat <= threshold_ns)
        if not normal:
            return 0.0
        return normal[len(normal) // 2]


class LatencyProbe:
    """Closed-loop latency monitor on one bank of the shared channel."""

    def __init__(
        self,
        controller: MemoryController,
        bank: int,
        mode: str = "same_row",
        rows: Optional[List[int]] = None,
        core_id: int = 1,
        gap_ns: float = 0.0,
    ) -> None:
        if mode not in ("same_row", "rotate_rows"):
            raise ValueError("mode must be 'same_row' or 'rotate_rows'")
        self.controller = controller
        self.bank = bank
        self.mode = mode
        self.rows = rows or ([0] if mode == "same_row" else list(range(64)))
        self.core_id = core_id
        self.gap_ns = gap_ns
        self.result = ProbeResult()
        self._row_cursor = 0
        self._running = False

    def start(self) -> None:
        """Begin issuing; idempotent."""
        self._running = True
        self._issue()

    def stop(self) -> None:
        """Stop after the in-flight access completes."""
        self._running = False

    def _next_row(self) -> int:
        row = self.rows[self._row_cursor % len(self.rows)]
        if self.mode == "rotate_rows":
            self._row_cursor += 1
        return row

    def _issue(self) -> None:
        if not self._running:
            return
        addr = bank_address(self.controller, self.bank, self._next_row())
        request = MemRequest(
            phys_addr=addr, core_id=self.core_id, on_complete=self._completed
        )
        self.controller.enqueue(request)

    def _completed(self, request: MemRequest) -> None:
        self.result.times.append(request.done_time)
        self.result.latencies.append(request.latency)
        if not self._running:
            return
        if self.gap_ns > 0:
            self.controller.engine.schedule_after(self.gap_ns, self._issue)
        else:
            self._issue()


class RowHammerSender:
    """Sender primitive: drive activations onto a chosen row.

    ``hammer(row, activations, done)`` alternates accesses between the
    target row and a decoy in the same bank so every access causes a
    row-buffer conflict, i.e. one activation — the paper's sender
    pattern.  The decoy rotates so its own counter also rises (both
    rows accumulate activations; the Alert fires at whichever reaches
    N_BO first).
    """

    def __init__(
        self,
        controller: MemoryController,
        bank: int,
        core_id: int = 0,
    ) -> None:
        self.controller = controller
        self.bank = bank
        self.core_id = core_id
        self.accesses_issued = 0

    def hammer(
        self,
        row: int,
        target_acts: int,
        decoy_row: int,
        done=None,
        close_row: Optional[int] = None,
    ) -> None:
        """Put ``target_acts`` activations on ``row`` (paired with decoy).

        Always closes with an access to ``close_row`` (default: a third
        row) so the row buffer does not hold the target afterwards — a
        later accessor's first touch must be a conflict, i.e. a real
        activation.  The closing row is distinct from the decoy so the
        decoy's counter stays at exactly ``target_acts``.
        """
        if close_row is None:
            close_row = decoy_row + 1 if decoy_row + 1 != row else decoy_row + 2
        state = {"remaining": target_acts, "toggle": False, "closed": False}

        def issue(request: Optional[MemRequest] = None) -> None:
            if state["remaining"] <= 0:
                if state["toggle"] and not state["closed"]:
                    # Last access hit the target row; close elsewhere.
                    state["closed"] = True
                    self._access(close_row, issue)
                    return
                if done is not None:
                    done()
                return
            if state["toggle"]:
                target = decoy_row
            else:
                target = row
                state["remaining"] -= 1
            state["toggle"] = not state["toggle"]
            self._access(target, issue)

        issue()

    def _access(self, row: int, on_complete) -> None:
        self.accesses_issued += 1
        addr = bank_address(self.controller, self.bank, row)
        self.controller.enqueue(
            MemRequest(phys_addr=addr, core_id=self.core_id, on_complete=on_complete)
        )

    def hammer_rate(
        self,
        row: int,
        target_acts: int,
        decoy_row: int,
        interval_ns: Optional[float] = None,
        done=None,
    ) -> None:
        """Timer-driven hammering: one access every ``interval_ns``.

        A real attacker issues independent loads, so the bank pipeline
        stays full and activations proceed at the tRAS+tRTP+tRP cadence
        rather than the dependent-chain round trip.  The default
        interval is exactly that cadence.
        """
        timing = self.controller.config.timing
        if interval_ns is None:
            interval_ns = timing.tRAS + timing.tRTP + timing.tRP
        engine = self.controller.engine
        state = {"sent_target": 0, "toggle": False}
        total_accesses = 2 * target_acts

        def tick(step: int) -> None:
            if step >= total_accesses:
                if done is not None:
                    done()
                return
            target = decoy_row if state["toggle"] else row
            if not state["toggle"]:
                state["sent_target"] += 1
            state["toggle"] = not state["toggle"]
            self._access(target, None)
            engine.schedule_after(interval_ns, lambda: tick(step + 1))

        tick(0)
