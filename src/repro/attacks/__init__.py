"""PRACLeak: timing-channel attacks on PRAC-based mitigations.

* :mod:`repro.attacks.probes` — latency-monitoring receiver machinery
  (the Section 3.1 characterization).
* :mod:`repro.attacks.covert` — the two covert channels: activity-based
  (1 bit / window) and activation-count-based (log2 N_BO bits / window).
* :mod:`repro.attacks.side_channel` — the AES T-table key-recovery
  attack built on the activation-count channel.
"""

from repro.attacks.probes import LatencyProbe, ProbeResult, RowHammerSender
from repro.attacks.covert import (
    ActivationCountChannel,
    ActivityChannel,
    CovertChannelResult,
)
from repro.attacks.side_channel import AesSideChannelAttack, SideChannelResult
from repro.attacks.acb_channel import AcbRfmChannel, AcbChannelResult

__all__ = [
    "AcbChannelResult",
    "AcbRfmChannel",
    "ActivationCountChannel",
    "ActivityChannel",
    "AesSideChannelAttack",
    "CovertChannelResult",
    "LatencyProbe",
    "ProbeResult",
    "RowHammerSender",
    "SideChannelResult",
]
