"""PRACLeak covert channels (Section 3.2, Table 2).

Two channel variants between a trojan (sender) and a spy (receiver)
sharing one DRAM channel:

* :class:`ActivityChannel` — the sender transmits one bit per fixed
  time window: '1' by hammering a row pair to the Back-Off threshold
  (triggering an ABO-RFM whose channel-wide stall the receiver sees),
  '0' by staying idle.
* :class:`ActivationCountChannel` — sender and receiver share one DRAM
  row.  The sender activates it k < N_BO times; the receiver then
  activates it until the ABO fires after N_BO - k activations,
  recovering k exactly — log2(N_BO) bits per window.

Both run on the full event-driven controller model, so the measured
period includes real scheduling/refresh noise.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.probes import (
    LatencyProbe,
    RowHammerSender,
    bank_address,
    is_rfm_spike,
)
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.config import DramConfig, ddr5_8000b
from repro.mitigations.abo_only import AboOnlyPolicy


@dataclass
class CovertChannelResult:
    """Outcome of one covert transmission run."""

    sent_bits: List[int]
    received_bits: List[int]
    window_ns: float            # configured transmission window
    elapsed_ns: float
    symbols: int
    bits_per_symbol: int

    @property
    def error_rate(self) -> float:
        if not self.sent_bits:
            return 0.0
        wrong = sum(1 for s, r in zip(self.sent_bits, self.received_bits) if s != r)
        wrong += abs(len(self.sent_bits) - len(self.received_bits))
        return wrong / len(self.sent_bits)

    @property
    def period_us(self) -> float:
        """Measured time per transmitted symbol (us)."""
        if self.symbols == 0:
            return 0.0
        return (self.elapsed_ns / self.symbols) / 1000.0

    @property
    def bitrate_kbps(self) -> float:
        """Measured bits per second / 1000."""
        if self.elapsed_ns <= 0:
            return 0.0
        total_bits = self.symbols * self.bits_per_symbol
        return total_bits / (self.elapsed_ns * 1e-9) / 1000.0


def _attack_config(nbo: int, prac_level: int = 4) -> DramConfig:
    """Device config for attack studies.

    ``abo_act=0`` makes the Alert->RFM attribution deterministic (the
    paper's ABO_ACT=3 merely shifts attribution by a known constant;
    see EXPERIMENTS.md).
    """
    return ddr5_8000b().with_prac(nbo=nbo, prac_level=prac_level, abo_act=0)


class ActivityChannel:
    """One bit per window: ABO-RFM present (1) or absent (0)."""

    def __init__(
        self,
        nbo: int = 256,
        prac_level: int = 4,
        message: Optional[List[int]] = None,
        seed: int = 7,
        config: Optional[DramConfig] = None,
        spike_threshold_ns: float = 250.0,
        policy_factory=AboOnlyPolicy,
    ) -> None:
        self.nbo = nbo
        rng = random.Random(seed)
        self.message = message or [rng.randrange(2) for _ in range(32)]
        self.config = config or _attack_config(nbo, prac_level)
        self.spike_threshold_ns = spike_threshold_ns
        # The mitigation the channel runs against.  ABO-Only is the
        # paper's Table 2 setting; campaign grids inject TPRAC & co. to
        # measure how each defense degrades the channel.
        self.policy_factory = policy_factory
        # Window: hammering a pair to N_BO takes 2*N_BO activations at
        # the dependent-chain conflict cadence (data return + tRP),
        # inflated by the refresh duty cycle, + the RFM burst + margin.
        timing = self.config.timing
        refresh_inflation = timing.tREFI / (timing.tREFI - timing.tRFC)
        self.act_cadence_ns = (timing.tRCD + timing.tCL + timing.tBL) + timing.tRP
        self.window_ns = (
            2 * nbo * self.act_cadence_ns * refresh_inflation
            + prac_level * timing.tRFMab
            + 2 * timing.tRFC
        )

    # ------------------------------------------------------------------
    def run(self, setup=None) -> CovertChannelResult:
        """Run the experiment at the configured scale; returns the result object.

        ``setup(engine, controller)``, when given, is called after the
        system is built and before any channel event is scheduled —
        campaign trials use it to splice background workload traffic
        into the run as scheduling noise.
        """
        engine = Engine()
        controller = MemoryController(
            engine, self.config, policy=self.policy_factory(), record_samples=False
        )
        if setup is not None:
            setup(engine, controller)
        sender = RowHammerSender(controller, bank=0, core_id=0)
        probe = LatencyProbe(controller, bank=4, mode="same_row", core_id=1)
        probe.start()

        # The sender schedules each bit at its window start; fresh row
        # pairs per window avoid residual counters from earlier windows.
        for index, bit in enumerate(self.message):
            start = index * self.window_ns
            if bit:
                row = 2 * index
                engine.schedule(
                    start,
                    lambda r=row: sender.hammer(
                        r, target_acts=self.nbo, decoy_row=r + 1
                    ),
                    label="send-1",
                )
        total = len(self.message) * self.window_ns
        engine.run(until=total + self.window_ns)
        probe.stop()

        received = self._decode(probe)
        return CovertChannelResult(
            sent_bits=list(self.message),
            received_bits=received,
            window_ns=self.window_ns,
            elapsed_ns=len(self.message) * self.window_ns,
            symbols=len(self.message),
            bits_per_symbol=1,
        )

    def _decode(self, probe: LatencyProbe) -> List[int]:
        """Bit=1 iff a spike not explained by refresh lands in the window."""
        timing = self.config.timing
        baseline = probe.result.baseline(self.spike_threshold_ns)
        rfm_like = [
            t
            for t, lat in zip(probe.result.times, probe.result.latencies)
            if is_rfm_spike(lat, t, timing, self.spike_threshold_ns, baseline)
        ]
        bits = []
        for index in range(len(self.message)):
            lo = index * self.window_ns
            hi = lo + self.window_ns
            bits.append(1 if any(lo <= t < hi for t in rfm_like) else 0)
        return bits




class ActivationCountChannel:
    """log2(N_BO) bits per window via a shared DRAM row.

    The receiver counts its own activations to the shared row until the
    ABO-induced spike: ``k = N_BO - receiver_acts``.
    """

    def __init__(
        self,
        nbo: int = 256,
        prac_level: int = 4,
        values: Optional[List[int]] = None,
        seed: int = 11,
        config: Optional[DramConfig] = None,
        spike_threshold_ns: float = 250.0,
        policy_factory=AboOnlyPolicy,
    ) -> None:
        self.nbo = nbo
        rng = random.Random(seed)
        self.values = values if values is not None else [
            rng.randrange(nbo) for _ in range(16)
        ]
        if any(not 0 <= v < nbo for v in self.values):
            raise ValueError("values must be in [0, N_BO)")
        self.config = config or _attack_config(nbo, prac_level)
        self.spike_threshold_ns = spike_threshold_ns
        self.policy_factory = policy_factory
        timing = self.config.timing
        # Sender (2k accesses) + receiver (2(N_BO-k) accesses) both
        # alternate with decoys at the dependent-chain cadence,
        # inflated by the refresh duty cycle, + RFM burst + margin.
        refresh_inflation = timing.tREFI / (timing.tREFI - timing.tRFC)
        chain_cadence = (timing.tRCD + timing.tCL + timing.tBL) + timing.tRP
        self.window_ns = (
            4 * nbo * chain_cadence * refresh_inflation
            + prac_level * timing.tRFMab
            + 3 * timing.tRFC
        )

    # ------------------------------------------------------------------
    def run(self, setup=None) -> CovertChannelResult:
        """Run the experiment at the configured scale; returns the result object.

        ``setup(engine, controller)`` hooks in pre-run scheduling (e.g.
        background workload noise), as on :meth:`ActivityChannel.run`.
        """
        engine = Engine()
        controller = MemoryController(
            engine, self.config, policy=self.policy_factory(), record_samples=False
        )
        if setup is not None:
            setup(engine, controller)
        decoded: List[int] = []
        shared_bank = 0

        for index, value in enumerate(self.values):
            window_start = index * self.window_ns
            shared_row = 4 * index          # fresh shared row per window
            sender_decoy = shared_row + 1
            receiver_decoy = shared_row + 2
            engine.schedule(
                window_start,
                lambda row=shared_row, v=value, dec=sender_decoy, rdec=receiver_decoy: (
                    self._send_then_receive(
                        controller, shared_bank, row, v, dec, rdec, decoded
                    )
                ),
                label="count-window",
            )
        total = len(self.values) * self.window_ns
        engine.run(until=total + self.window_ns)

        bits_per_symbol = max(1, int(math.log2(self.nbo)))
        sent_bits = _values_to_bits(self.values, bits_per_symbol)
        received_bits = _values_to_bits(
            decoded + [0] * (len(self.values) - len(decoded)), bits_per_symbol
        )
        return CovertChannelResult(
            sent_bits=sent_bits,
            received_bits=received_bits,
            window_ns=self.window_ns,
            elapsed_ns=len(self.values) * self.window_ns,
            symbols=len(self.values),
            bits_per_symbol=bits_per_symbol,
        )

    # ------------------------------------------------------------------
    def _send_then_receive(
        self,
        controller: MemoryController,
        bank: int,
        row: int,
        value: int,
        sender_decoy: int,
        receiver_decoy: int,
        decoded: List[int],
    ) -> None:
        sender = RowHammerSender(controller, bank=bank, core_id=0)

        def receive() -> None:
            # Conflict-chain accesses run ~70-90 ns; the receiver
            # calibrates its baseline online from normal completions.
            state = {"acts": 0, "done": False, "baseline": 75.0}
            target_addr = bank_address(controller, bank, row)
            decoy_addr = bank_address(controller, bank, receiver_decoy)

            def spiked(request: MemRequest) -> bool:
                hit = is_rfm_spike(
                    request.latency,
                    request.done_time,
                    controller.config.timing,
                    self.spike_threshold_ns,
                    state["baseline"],
                )
                if not hit and request.latency <= self.spike_threshold_ns:
                    state["baseline"] += 0.2 * (request.latency - state["baseline"])
                return hit

            def decode(acts_when_triggered: int) -> None:
                state["done"] = True
                decoded.append(self.nbo - acts_when_triggered)

            def target_done(request: MemRequest) -> None:
                if state["done"]:
                    return
                if spiked(request):
                    # The RFM delayed this activation, so the trigger
                    # was the *previous* one: sender_k + (acts-1) = N_BO.
                    decode(state["acts"] - 1)
                    return
                controller.enqueue(
                    MemRequest(
                        phys_addr=decoy_addr, core_id=1, on_complete=decoy_done
                    )
                )

            def decoy_done(request: MemRequest) -> None:
                if state["done"]:
                    return
                if spiked(request):
                    # Normal case: the target activation just before this
                    # decoy crossed N_BO: sender_k + acts = N_BO.
                    decode(state["acts"])
                    return
                probe_once()

            def probe_once() -> None:
                if state["done"]:
                    return
                if state["acts"] >= self.nbo + 8:
                    state["done"] = True
                    decoded.append(0)       # nothing fired: decode as 0
                    return
                # One activation of the shared row, forced by a decoy
                # conflict; the RFM spike can land on either access.
                state["acts"] += 1
                controller.enqueue(
                    MemRequest(
                        phys_addr=target_addr, core_id=1, on_complete=target_done
                    )
                )

            probe_once()

        if value > 0:
            sender.hammer(
                row,
                target_acts=value,
                decoy_row=sender_decoy,
                done=receive,
                close_row=row + 3,
            )
        else:
            receive()


def _values_to_bits(values: List[int], bits_per_symbol: int) -> List[int]:
    bits: List[int] = []
    for value in values:
        for position in reversed(range(bits_per_symbol)):
            bits.append((value >> position) & 1)
    return bits
