"""PRACLeak side-channel attack on AES T-tables (Section 3.3).

Attack flow, per secret key byte ``k_t``:

1. **Victim phase** — the attacker triggers ``n`` encryptions with
   plaintext byte ``p_t`` fixed and all other bytes random, flushing
   the T-table lines so every first-round lookup reaches DRAM.  The
   cache line indexed by ``x_t = p_t XOR k_t`` is accessed once per
   encryption deterministically, so its DRAM row accumulates roughly
   double the activations of the other 15 rows (Figure 4, top ~207 vs
   ~40 at 200 encryptions).
2. **Probe phase** — the attacker sequentially activates the 16 rows
   of the target table in a loop until one access observes the
   ABO-RFM's latency spike.  The row activated immediately before the
   spike is the one whose combined (victim + attacker) count crossed
   N_BO: the hottest row.  Its index reveals ``x_t >> 4`` and hence the
   top 4 bits of ``k_t`` (Figure 5); over all 16 bytes, 64 of 128 key
   bits.

With TPRAC enabled, the first observed RFM is a Timing-Based RFM whose
position in the probe loop is unrelated to the key, so the recovered
index carries no information (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attacks.probes import bank_address, is_rfm_spike
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.crypto.victim import AesVictim, TTableLayout
from repro.dram.config import DramConfig, ddr5_8000b
from repro.mitigations import make_policy
from repro.analysis.tb_window import required_tb_window


@dataclass
class SideChannelResult:
    """Outcome of one attack instance (one key byte)."""

    target_byte: int
    fixed_plaintext: int
    true_nibble: int            # ground truth: top 4 bits of k_t
    recovered_nibble: Optional[int]
    trigger_row: Optional[int]  # row (0..15 within table) blamed for the RFM
    attacker_acts_on_trigger: int
    victim_histogram: Dict[int, int]
    encryptions: int
    probe_timeline: List[tuple] = field(default_factory=list)  # (t, latency)
    activation_timeline: List[tuple] = field(default_factory=list)
    rfm_times: List[float] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.recovered_nibble == self.true_nibble


class AesSideChannelAttack:
    """Drives the full two-phase attack on the simulated system."""

    def __init__(
        self,
        key: bytes,
        nbo: int = 256,
        prac_level: int = 1,
        encryptions: int = 200,
        defense: Optional[str] = None,
        tb_window: Optional[float] = None,
        spike_threshold_ns: float = 250.0,
        seed: int = 99,
        config: Optional[DramConfig] = None,
        record_timeline: bool = False,
        abo_act: int = 0,
    ) -> None:
        """``defense=None`` runs against ABO-Only; ``"tprac"`` enables TPRAC
        (with a TB-Window solved for this N_BO unless given).

        ``abo_act`` is the JEDEC grace-activation count (Table 1 allows
        up to 3).  No attribution correction is needed even at the spec
        maximum: a dependent-chain prober needs ~70 ns per activation,
        so the tABOACT deadline (180 ns) forces the RFM out before the
        three grace activations can complete — the last completed probe
        before the spike is still the triggering one.
        """
        self.key = bytes(key)
        self.nbo = nbo
        self.prac_level = prac_level
        self.encryptions = encryptions
        self.defense = defense
        self.spike_threshold_ns = spike_threshold_ns
        self.seed = seed
        self.record_timeline = record_timeline
        self.abo_act = abo_act
        self.config = (config or ddr5_8000b()).with_prac(
            nbo=nbo, prac_level=prac_level, abo_act=abo_act
        )
        if defense not in (None, "tprac"):
            raise ValueError("defense must be None or 'tprac'")
        if defense == "tprac" and tb_window is None:
            tb_window = required_tb_window(self.config, nbo, with_reset=True)
        self.tb_window = tb_window

    # ------------------------------------------------------------------
    def _build(self) -> MemoryController:
        engine = Engine()
        if self.defense == "tprac":
            policy = make_policy("tprac", tb_window=self.tb_window)
        else:
            policy = make_policy("abo_only")
        return MemoryController(
            engine, self.config, policy=policy, record_samples=False
        )

    def run_single(
        self, target_byte: int = 0, fixed_value: int = 0
    ) -> SideChannelResult:
        """Attack one key byte: victim phase then probe phase."""
        controller = self._build()
        engine = controller.engine
        layout = TTableLayout(bank=0, base_row=0)
        victim = AesVictim(self.key, layout=layout, seed=self.seed)
        rows, histogram = victim.first_round_rows(
            target_byte, fixed_value, self.encryptions
        )

        table = target_byte % 4
        table_rows = layout.table_rows(table)
        base_row = table_rows[0]
        probe_state = {
            "index": 0,
            "acts": {row: 0 for row in table_rows},
            "history": [],         # (time, row) of completed probes
            "trigger_row": None,
            "done": False,
            "baseline": 75.0,      # online-calibrated normal latency
        }
        result_timeline: List[tuple] = []
        act_timeline: List[tuple] = []

        # ---- victim phase: replay the first-round row stream ---------
        def victim_issue(position: int = 0) -> None:
            if position >= len(rows):
                engine.schedule(engine.now, probe_issue, label="probe-start")
                return
            addr = bank_address(controller, layout.bank, rows[position])
            controller.enqueue(
                MemRequest(
                    phys_addr=addr,
                    core_id=0,
                    on_complete=lambda _r: victim_issue(position + 1),
                )
            )

        # ---- probe phase: round-robin over the 16 table rows ---------
        def probe_issue(request: Optional[MemRequest] = None) -> None:
            if probe_state["done"]:
                return
            if request is not None:
                now = request.done_time
                latency = request.latency
                if self.record_timeline:
                    result_timeline.append((now, latency))
                    bank = controller.channel.bank(
                        request.addr.flat_bank(self.config.organization)
                    )
                    act_timeline.append(
                        (now, dict((r, bank.counter(r)) for r in table_rows))
                    )
                spiked = is_rfm_spike(
                    latency,
                    now,
                    self.config.timing,
                    self.spike_threshold_ns,
                    probe_state["baseline"],
                )
                if not spiked and latency <= self.spike_threshold_ns:
                    probe_state["baseline"] += 0.2 * (
                        latency - probe_state["baseline"]
                    )
                if spiked:
                    history = probe_state["history"]
                    probe_state["trigger_row"] = history[-1][1] if history else None
                    probe_state["done"] = True
                    return
                probe_state["history"].append((now, request.meta["probe_row"]))
                probe_state["acts"][request.meta["probe_row"]] += 1
                if probe_state["acts"][base_row] > self.nbo + 4:
                    probe_state["done"] = True   # nothing fired; give up
                    return
            row = table_rows[probe_state["index"] % len(table_rows)]
            probe_state["index"] += 1
            req = MemRequest(
                phys_addr=bank_address(controller, layout.bank, row),
                core_id=1,
                on_complete=probe_issue,
                meta={"probe_row": row},
            )
            controller.enqueue(req)

        victim_issue()
        engine.run(until=80_000_000)  # hard stop at 80 ms of simulated time

        trigger = probe_state["trigger_row"]
        recovered = None
        acts_on_trigger = 0
        if trigger is not None:
            line = trigger - base_row
            recovered = line ^ (fixed_value >> 4)
            acts_on_trigger = probe_state["acts"][trigger]
        return SideChannelResult(
            target_byte=target_byte,
            fixed_plaintext=fixed_value,
            true_nibble=self.key[target_byte] >> 4,
            recovered_nibble=recovered,
            trigger_row=(trigger - base_row) if trigger is not None else None,
            attacker_acts_on_trigger=acts_on_trigger,
            victim_histogram=histogram,
            encryptions=self.encryptions,
            probe_timeline=result_timeline,
            activation_timeline=act_timeline,
            rfm_times=[r.time for r in controller.stats.rfm_records],
        )

    # ------------------------------------------------------------------
    def run_key_sweep(
        self,
        target_byte: int = 0,
        key_values: Optional[List[int]] = None,
        fixed_value: int = 0,
    ) -> List[SideChannelResult]:
        """Figures 5 and 9: sweep the secret key byte, attack each value."""
        key_values = key_values if key_values is not None else list(range(0, 256, 16))
        results = []
        for value in key_values:
            key = bytearray(self.key)
            key[target_byte] = value
            attack = AesSideChannelAttack(
                bytes(key),
                nbo=self.nbo,
                prac_level=self.prac_level,
                encryptions=self.encryptions,
                defense=self.defense,
                tb_window=self.tb_window,
                spike_threshold_ns=self.spike_threshold_ns,
                seed=self.seed + value,
                record_timeline=False,
                abo_act=self.abo_act,
            )
            results.append(attack.run_single(target_byte, fixed_value))
        return results

    def recover_key_nibbles(self, fixed_value: int = 0) -> List[Optional[int]]:
        """Run the attack for all 16 key bytes; returns recovered nibbles."""
        nibbles: List[Optional[int]] = []
        for byte_index in range(16):
            result = self.run_single(byte_index, fixed_value)
            nibbles.append(result.recovered_nibble)
        return nibbles


