"""Timing channel through Activation-Based RFMs (Figure 2(b)).

The JEDEC Targeted-RFM flow (our ``AcbRfmPolicy``) eliminates ABO-RFMs
by proactively issuing an RFM whenever a bank accumulates BAT
activations — but the RFM is still a deterministic function of the
victim's *activity level*, so an attacker can count ACB-RFMs in a
window to estimate how many activations the victim performed.  This is
the paper's argument for why activity-dependent proactive RFMs cannot
close the channel, motivating TPRAC's time-based schedule.

The sender encodes a bit by either activating rows in its bank at a
high rate ('1') or idling ('0'); the receiver counts RFM-sized latency
spikes per window.  Under TPRAC the same decoder sees an identical RFM
count in every window regardless of the sender.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tb_window import required_tb_window
from repro.attacks.probes import LatencyProbe, bank_address, is_rfm_spike
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.config import DramConfig, ddr5_8000b
from repro.mitigations import make_policy


@dataclass
class AcbChannelResult:
    """Outcome of one ACB-RFM covert transmission."""

    sent_bits: List[int]
    received_bits: List[int]
    rfm_counts_per_window: List[int]
    window_ns: float
    defense: str

    @property
    def error_rate(self) -> float:
        if not self.sent_bits:
            return 0.0
        wrong = sum(1 for s, r in zip(self.sent_bits, self.received_bits) if s != r)
        return wrong / len(self.sent_bits)


class AcbRfmChannel:
    """Covert channel exploiting BAT-triggered proactive RFMs."""

    def __init__(
        self,
        bat: int = 64,
        message: Optional[List[int]] = None,
        defense: str = "acb",
        seed: int = 13,
        config: Optional[DramConfig] = None,
        spike_threshold_ns: float = 250.0,
    ) -> None:
        """``defense='acb'`` runs the JEDEC flow (leaky); ``'tprac'``
        swaps in timing-based RFMs (channel closed)."""
        if defense not in ("acb", "tprac"):
            raise ValueError("defense must be 'acb' or 'tprac'")
        rng = random.Random(seed)
        self.bat = bat
        self.message = message or [rng.randrange(2) for _ in range(16)]
        self.defense = defense
        # High N_BO so the ABO path never interferes with the study.
        self.config = (config or ddr5_8000b()).with_prac(nbo=100_000, bat=bat)
        self.spike_threshold_ns = spike_threshold_ns
        timing = self.config.timing
        chain_ns = (timing.tRCD + timing.tCL + timing.tBL) + timing.tRP
        # A '1' window drives ~3*BAT activations: enough for >= 2
        # ACB-RFMs even with scheduling noise.
        self.acts_per_one = 3 * bat
        refresh_inflation = timing.tREFI / (timing.tREFI - timing.tRFC)
        self.window_ns = self.acts_per_one * chain_ns * refresh_inflation + 2 * timing.tRFC

    # ------------------------------------------------------------------
    def run(self) -> AcbChannelResult:
        """Run the experiment at the configured scale; returns the result object."""
        engine = Engine()
        if self.defense == "acb":
            policy = make_policy("abo_acb", bat=self.bat)
        else:
            window = required_tb_window(
                self.config.with_prac(nbo=1024), 1024, with_reset=True
            )
            policy = make_policy("tprac", tb_window=window)
        controller = MemoryController(
            engine, self.config, policy=policy, record_samples=False
        )
        probe = LatencyProbe(controller, bank=4, mode="same_row", core_id=1)
        probe.start()

        for index, bit in enumerate(self.message):
            if bit:
                engine.schedule(
                    index * self.window_ns,
                    lambda i=index: self._drive_activity(controller, i),
                    label="acb-send",
                )
        engine.run(until=(len(self.message) + 1) * self.window_ns)
        probe.stop()

        baseline = probe.result.baseline(self.spike_threshold_ns)
        timing = self.config.timing
        rfm_times = [
            t
            for t, lat in zip(probe.result.times, probe.result.latencies)
            if is_rfm_spike(lat, t, timing, self.spike_threshold_ns, baseline)
        ]
        counts = []
        for index in range(len(self.message)):
            lo = index * self.window_ns
            hi = lo + self.window_ns
            counts.append(sum(1 for t in rfm_times if lo <= t < hi))
        # A '1' window drives >= 2 ACB-RFMs; a lone spike near a window
        # boundary is bleed-over from the previous window's last RFM.
        received = [1 if count >= 2 else 0 for count in counts]
        return AcbChannelResult(
            sent_bits=list(self.message),
            received_bits=received,
            rfm_counts_per_window=counts,
            window_ns=self.window_ns,
            defense=self.defense,
        )

    # ------------------------------------------------------------------
    def _drive_activity(self, controller: MemoryController, window_index: int) -> None:
        """Activate a spread of rows in the sender's bank (core 0)."""
        state = {"sent": 0}
        base_row = 64 * window_index  # fresh rows every window

        def issue(req=None) -> None:
            if state["sent"] >= self.acts_per_one:
                return
            row = base_row + (state["sent"] % 32)
            state["sent"] += 1
            controller.enqueue(
                MemRequest(
                    phys_addr=bank_address(controller, 0, row),
                    core_id=0,
                    on_complete=issue,
                )
            )

        issue()
