"""Observability: structured tracing, metrics, and campaign telemetry.

The simulator's only windows into a run used to be end-of-run
:class:`~repro.controller.stats.ControllerStats` aggregates.  This
package adds three opt-in layers, all following the sanitizer's
zero-overhead-off discipline (results are byte-identical with
telemetry disabled, and the off path adds no per-event work):

* :mod:`repro.obs.trace` — a structured trace recorder behind
  ``SystemConfig(trace=True)`` capturing the served DRAM command
  stream, REF/RFM windows, PRAC counter updates and ABO alert
  lifecycles as typed events, with JSONL and Chrome ``trace_event``
  exporters (loadable in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.metrics` + :mod:`repro.obs.sampler` — a counters/
  gauges/histograms registry behind ``SystemConfig(metrics=True)``
  plus a periodic sim-time sampler emitting windowed series (queue
  depth, row-hit rate, bus occupancy, alerts/s, events/s wall-rate).
* :mod:`repro.obs.heartbeat` / :mod:`repro.obs.progress` /
  :mod:`repro.obs.report` — campaign progress telemetry: an
  append-only heartbeat JSONL stream, a live TTY renderer behind
  ``repro campaign --progress``, and the ``repro obs`` CLI
  (``obs report`` / ``obs export-trace``).

:mod:`repro.obs.log` is the structured key=value logger the harness
layers use instead of bare ``print`` (enforced by the ``no-print``
repro_lints rule).
"""

from repro.obs.heartbeat import HeartbeatWriter, read_heartbeat
from repro.obs.log import get_logger, set_verbosity
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.trace import TraceEvent, TraceRecorder, chrome_trace, load_trace_jsonl

__all__ = [
    "HeartbeatWriter",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "TimeSeriesSampler",
    "TraceEvent",
    "TraceRecorder",
    "chrome_trace",
    "get_logger",
    "load_trace_jsonl",
    "read_heartbeat",
    "set_verbosity",
]
