"""Structured trace recording and export (JSONL + Chrome trace_event).

A :class:`TraceRecorder` is attached by ``SystemConfig(trace=True)``:
the memory controller forwards every served command into it (through
the same single ``_trace`` guard the sanitizer uses, so the
``trace=False`` path is untouched) and registers lifecycle hooks for
ABO alerts, tREFW counter resets, TREF slots and PRAC counter
updates.  Events are typed :class:`TraceEvent` records — kind,
sim-time, duration, channel/bank/row coordinates, optional detail —
held in memory and exported post-run:

* :meth:`TraceRecorder.export_jsonl` — one JSON object per line with a
  ``repro-trace-v1`` header record (the golden round-trip format;
  :func:`load_trace_jsonl` is the inverse).
* :meth:`TraceRecorder.export_chrome` — Chrome ``trace_event`` JSON
  loadable in Perfetto / ``chrome://tracing``: one process per
  channel, one thread track per bank, plus per-channel "channel"
  (REF/RFM windows) and "mitigation" (ABO lifecycle, counter resets,
  TREF slots) tracks, and a ``C``-phase counter series per bank for
  PRAC counts.

Durations are the command's channel/bank occupancy from the device
timing (ACT=tRCD, PRE=tRP, RD/WR=tBL, REF=tRFC, RFMab=tRFMab), so the
rendered spans line up with the blocking windows the paper's timing
channel observes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.dram.commands import Command, CommandKind
from repro.dram.config import DramConfig

#: JSONL schema tag written as the header record of every trace file.
TRACE_SCHEMA = "repro-trace-v1"

#: Lifecycle event kinds (command kinds use CommandKind values verbatim).
ALERT = "abo.alert"              # Alert pin asserted
ALERT_DONE = "abo.mitigated"     # controller finished the RFM burst
PRAC_COUNTER = "prac.counter"    # a row's PRAC counter after an ACT
PRAC_RESET = "prac.reset"        # tREFW boundary counter reset
TREF_SLOT = "tref.slot"          # a Targeted-Refresh slot fired
CACHE_MISS = "cache.miss"        # L2 miss heading to DRAM (hierarchy)
CACHE_WRITEBACK = "cache.writeback"  # dirty L2 victim written to DRAM

#: Synthetic Chrome thread ids for the non-bank tracks.
CHANNEL_TRACK = 1000
MITIGATION_TRACK = 1001


class TraceEvent:
    """One typed trace record.

    ``ts``/``dur`` are simulation nanoseconds; ``channel``/``bank``/
    ``row`` are -1 when not applicable (all-bank commands, lifecycle
    events).  ``detail`` carries kind-specific extras (RFM provenance,
    PRAC counter values).
    """

    __slots__ = ("kind", "ts", "dur", "channel", "bank", "row", "detail")

    def __init__(
        self,
        kind: str,
        ts: float,
        dur: float = 0.0,
        channel: int = 0,
        bank: int = -1,
        row: int = -1,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.ts = ts
        self.dur = dur
        self.channel = channel
        self.bank = bank
        self.row = row
        self.detail = detail

    def to_dict(self) -> Dict[str, Any]:
        """Compact JSON form; default-valued fields are omitted."""
        record: Dict[str, Any] = {"kind": self.kind, "ts": self.ts}
        if self.dur:
            record["dur"] = self.dur
        if self.channel:
            record["channel"] = self.channel
        if self.bank != -1:
            record["bank"] = self.bank
        if self.row != -1:
            record["row"] = self.row
        if self.detail is not None:
            record["detail"] = self.detail
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        return cls(
            kind=record["kind"],
            ts=record["ts"],
            dur=record.get("dur", 0.0),
            channel=record.get("channel", 0),
            bank=record.get("bank", -1),
            row=record.get("row", -1),
            detail=record.get("detail"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"ch{self.channel}"
        if self.bank != -1:
            where += f"/b{self.bank}"
        return f"<TraceEvent {self.kind} @ {self.ts:.1f}ns {where}>"


class TraceRecorder:
    """Collects :class:`TraceEvent` records from one or more channels.

    One recorder is shared by every controller of a
    :class:`~repro.controller.memory_system.MemorySystem` (events carry
    their channel id), so a single export covers the whole system.
    """

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.events: List[TraceEvent] = []
        timing = config.timing
        #: command kind -> channel/bank occupancy used as the span length
        self._durations: Dict[CommandKind, float] = {
            CommandKind.ACT: timing.tRCD,
            CommandKind.PRE: timing.tRP,
            CommandKind.RD: timing.tBL,
            CommandKind.WR: timing.tBL,
            CommandKind.REF: timing.tRFC,
            CommandKind.RFM_AB: timing.tRFMab,
            CommandKind.RFM_PB: timing.tRFMpb,
        }

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        ts: float,
        dur: float = 0.0,
        channel: int = 0,
        bank: int = -1,
        row: int = -1,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one event built from scalars (lifecycle call sites)."""
        self.events.append(TraceEvent(kind, ts, dur, channel, bank, row, detail))

    def observe_command(self, command: Command, channel: int) -> None:
        """Record one served command (controller ``_log`` forwarding)."""
        detail = None
        if command.provenance is not None:
            detail = {"provenance": command.provenance.value}
        self.events.append(
            TraceEvent(
                command.kind.value,
                command.issue_time,
                self._durations[command.kind],
                channel,
                command.bank_id,
                command.row,
                detail,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        """Event tally per kind (sorted), for summaries and tests."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self, path: Any, meta: Optional[Dict[str, Any]] = None) -> Any:
        """Write the recorded stream as JSONL (see :func:`export_trace_jsonl`)."""
        return export_trace_jsonl(self.events, path, meta=meta)

    def export_chrome(self, path: Any, label: str = "repro") -> Any:
        """Write the recorded stream as Chrome ``trace_event`` JSON."""
        from repro.analysis.storage import atomic_write_json

        return atomic_write_json(path, chrome_trace(self.events, label=label))


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def export_trace_jsonl(
    events: List[TraceEvent], path: Any, meta: Optional[Dict[str, Any]] = None
) -> Any:
    """Write a header record + one event per line, atomically."""
    from repro.analysis.storage import atomic_write_text

    header: Dict[str, Any] = {"schema": TRACE_SCHEMA, "events": len(events)}
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(event.to_dict()) for event in events)
    return atomic_write_text(path, "\n".join(lines) + "\n")


def load_trace_jsonl(path: Any) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Inverse of :func:`export_trace_jsonl`: ``(header, events)``.

    Tolerates a truncated final line (a reader racing a writer sees a
    complete prefix, never an exception).
    """
    header: Dict[str, Any] = {}
    events: List[TraceEvent] = []
    with open(path) as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # truncated tail
            if index == 0 and record.get("schema"):
                header = record
                continue
            events.append(TraceEvent.from_dict(record))
    return header, events


# ----------------------------------------------------------------------
# Chrome trace_event conversion
# ----------------------------------------------------------------------
def _track_of(event: TraceEvent) -> int:
    """Chrome thread id for one event (bank, channel or mitigation)."""
    if event.kind in (ALERT, ALERT_DONE, PRAC_RESET, TREF_SLOT):
        return MITIGATION_TRACK
    if event.bank != -1:
        return event.bank
    return CHANNEL_TRACK


def chrome_trace(events: List[TraceEvent], label: str = "repro") -> Dict[str, Any]:
    """Render events as a Chrome ``trace_event`` document.

    Layout: one process per channel (``pid`` = channel id), one thread
    per bank plus the synthetic "channel" and "mitigation" tracks.
    Commands become complete (``ph="X"``) spans; PRAC counter updates
    become ``ph="C"`` counter samples; counter resets and TREF slots
    become instant (``ph="i"``) marks.  ABO alert/mitigated pairs fuse
    into one span covering the alert-to-mitigation window.

    Timestamps: the sim's nanoseconds map onto the format's
    microsecond field, so viewers display 1 "µs" per simulated ns.
    """
    trace_events: List[Dict[str, Any]] = []
    seen_tracks: Dict[Tuple[int, int], None] = {}
    open_alerts: Dict[int, TraceEvent] = {}  # channel -> alert event

    for event in events:
        pid = event.channel
        tid = _track_of(event)
        seen_tracks.setdefault((pid, tid), None)
        if event.kind == ALERT:
            open_alerts[pid] = event
            continue
        if event.kind == ALERT_DONE:
            alert = open_alerts.pop(pid, None)
            start = event.ts if alert is None else alert.ts
            args: Dict[str, Any] = {}
            if alert is not None:
                args = {"bank": alert.bank, "row": alert.row}
            trace_events.append(
                {
                    "name": ALERT,
                    "ph": "X",
                    "ts": start,
                    "dur": event.ts - start,
                    "pid": pid,
                    "tid": tid,
                    "cat": "mitigation",
                    "args": args,
                }
            )
            continue
        if event.kind == PRAC_COUNTER:
            count = (event.detail or {}).get("count", 0)
            trace_events.append(
                {
                    "name": f"prac.bank{event.bank}",
                    "ph": "C",
                    "ts": event.ts,
                    "pid": pid,
                    "args": {"count": count},
                }
            )
            continue
        if event.kind in (PRAC_RESET, TREF_SLOT):
            trace_events.append(
                {
                    "name": event.kind,
                    "ph": "i",
                    "ts": event.ts,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "cat": "mitigation",
                }
            )
            continue
        args = {}
        if event.row != -1:
            args["row"] = event.row
        if event.detail:
            args.update(event.detail)
        trace_events.append(
            {
                "name": event.kind,
                "ph": "X",
                "ts": event.ts,
                "dur": event.dur,
                "pid": pid,
                "tid": tid,
                "cat": "command",
                "args": args,
            }
        )

    # A still-open alert at end of trace renders as an instant mark.
    for pid, alert in sorted(open_alerts.items()):
        trace_events.append(
            {
                "name": ALERT,
                "ph": "i",
                "ts": alert.ts,
                "pid": pid,
                "tid": MITIGATION_TRACK,
                "s": "t",
                "cat": "mitigation",
                "args": {"bank": alert.bank, "row": alert.row},
            }
        )

    metadata: List[Dict[str, Any]] = []
    for pid in sorted({pid for pid, _ in seen_tracks}):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"{label} channel {pid}"},
            }
        )
    for pid, tid in sorted(seen_tracks):
        if tid == CHANNEL_TRACK:
            thread_name = "channel"
        elif tid == MITIGATION_TRACK:
            thread_name = "mitigation"
        else:
            thread_name = f"bank {tid}"
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
        )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.obs", "schema": TRACE_SCHEMA},
    }
