"""Live campaign progress rendering (``repro campaign --progress``).

A :class:`CampaignProgressRenderer` subscribes to the same lifecycle
events the heartbeat stream records (``run_campaign``'s ``on_event``
hook) and keeps one status line current on **stderr**::

    campaign 7/12 scenarios | 23/36 trials | 1 fault | covert_activity/tprac/nbo256

On a TTY the line rewrites in place (carriage return, repaints
throttled to ~10 Hz with a final paint per scenario); on a non-TTY
stream it degrades to one plain line per completed scenario, so CI
logs stay readable.  Result tables are untouched — they belong to
stdout.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

_MIN_REPAINT_SECONDS = 0.1


class CampaignProgressRenderer:
    """Renders campaign lifecycle events as a live status line."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.total_scenarios = 0
        self.total_trials = 0
        self.scenarios_done = 0
        self.trials_done = 0
        self.cached = 0
        self.faults = 0
        self.retries = 0
        self.current_label = ""
        self._last_paint = 0.0
        self._line_open = False

    # ------------------------------------------------------------------
    def on_event(self, event: str, fields: Dict[str, Any]) -> None:
        """The ``run_campaign(on_event=...)`` subscriber."""
        if event == "campaign.start":
            self.total_scenarios = int(fields.get("scenarios", 0))
            self.total_trials = self.total_scenarios * int(fields.get("trials", 0))
        elif event == "scenario.cached":
            self.cached += 1
            self.scenarios_done += 1
            self.trials_done += int(fields.get("trials", 0))
            self._paint(force=not self.is_tty)
        elif event == "trial.finish":
            self.trials_done += 1
            self.current_label = str(fields.get("label", self.current_label))
            self._paint()
        elif event == "trial.fault":
            self.faults += 1
        elif event == "trial.retry":
            self.retries += 1
            self._paint()
        elif event == "scenario.finish":
            self.scenarios_done += 1
            self.current_label = str(fields.get("label", self.current_label))
            self._paint(force=not self.is_tty)
        elif event == "campaign.finish":
            self.close()

    # ------------------------------------------------------------------
    def _status(self) -> str:
        parts = [
            f"campaign {self.scenarios_done}/{self.total_scenarios} scenarios",
            f"{self.trials_done}/{self.total_trials} trials",
        ]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.retries:
            parts.append(
                f"{self.retries} retr{'ies' if self.retries != 1 else 'y'}"
            )
        if self.faults:
            parts.append(f"{self.faults} fault{'s' if self.faults != 1 else ''}")
        if self.current_label:
            parts.append(self.current_label)
        return " | ".join(parts)

    def _paint(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and self.is_tty and now - self._last_paint < _MIN_REPAINT_SECONDS:
            return
        self._last_paint = now
        if self.is_tty:
            self.stream.write("\r\x1b[2K" + self._status())
            self._line_open = True
        elif force:
            self.stream.write(self._status() + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Final paint + newline so later output starts on a clean line."""
        if self.is_tty:
            self.stream.write("\r\x1b[2K" + self._status() + "\n")
        else:
            self.stream.write(self._status() + "\n")
        self._line_open = False
        self.stream.flush()
