"""Persisting a run's telemetry next to its results.

:func:`export_system_telemetry` writes whatever observability a
:class:`~repro.controller.memory_system.MemorySystem` collected —
the structured trace (JSONL + Chrome ``trace_event``) and/or the
metrics document (registry snapshot, sampler time series, latency
percentiles) — into a directory using the atomic writers, and returns
the written paths.  The campaign perf trials call this with a
``<scenario-id>-s<seed>`` stem so every trial's telemetry is
addressable from the campaign's ``obs/`` subdirectory.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.memory_system import MemorySystem

PathLike = Union[str, Path]

#: file name patterns for one run's telemetry, keyed by artifact
TRACE_JSONL = "trace-{stem}.jsonl"
TRACE_CHROME = "trace-{stem}.chrome.json"
METRICS_JSON = "metrics-{stem}.json"


def export_system_telemetry(
    memory: "MemorySystem",
    directory: PathLike,
    stem: str,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Path]:
    """Write the memory system's collected telemetry into ``directory``.

    Returns ``{"trace_jsonl": ..., "trace_chrome": ..., "metrics": ...}``
    containing only the artifacts that were actually enabled.
    """
    out_dir = Path(directory)
    written: Dict[str, Path] = {}
    recorder = memory.recorder
    if recorder is not None:
        written["trace_jsonl"] = Path(
            recorder.export_jsonl(out_dir / TRACE_JSONL.format(stem=stem), meta=meta)
        )
        written["trace_chrome"] = Path(
            recorder.export_chrome(
                out_dir / TRACE_CHROME.format(stem=stem), label=stem
            )
        )
    sampler = memory.sampler
    if sampler is not None:
        # Closing sample: captures the tail window (and guarantees at
        # least one sample on runs shorter than the interval).  Rates in
        # it are computed over a full interval and therefore understate
        # the partial window — acceptable for an advisory series.
        sampler.sample()
        extra: Dict[str, Any] = {"registry": memory.metrics.snapshot()}
        stats = memory.stats
        extra["latency_percentiles_ns"] = stats.latency_percentiles()
        if meta:
            extra["meta"] = dict(meta)
        written["metrics"] = Path(
            sampler.export(out_dir / METRICS_JSON.format(stem=stem), extra=extra)
        )
    return written
