"""The metrics registry: named counters, gauges and histograms.

Instruments hold a **handle** (``Counter`` / ``Gauge`` / ``Histogram``,
all ``__slots__`` objects with one hot method) obtained once from a
:class:`MetricsRegistry` at wiring time, so the per-event cost is a
single method call on a pre-resolved object — no name lookups on the
hot path.  A registry constructed with ``enabled=False`` (or the
module-level :data:`NULL_REGISTRY`) hands out shared no-op singletons
instead, so call sites never need an ``if metrics:`` guard and the
disabled path costs one C-level no-op call at worst.  Components that
would pay per-request costs additionally gate their wiring on
:attr:`MetricsRegistry.enabled` so the default path does no telemetry
work at all.

Histograms are fixed-bucket (upper-bound list + overflow), matching
the always-on latency histogram in
:class:`repro.controller.stats.ControllerStats`;
:func:`percentile_from_buckets` is the shared estimator.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the running total."""
        self.value += amount


class Gauge:
    """A named value that can move both ways (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = value


class Histogram:
    """A fixed-bucket named distribution (upper bounds + overflow)."""

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # counts[i] tallies values <= bounds[i]; counts[-1] is overflow.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Tally one value into its bucket (one bisect, no allocation)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile via :func:`percentile_from_buckets`."""
        return percentile_from_buckets(self.bounds, self.counts, q)


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null", ())


def percentile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-quantile (0..1) of a fixed-bucket histogram.

    Linear interpolation inside the bucket holding the quantile rank;
    the overflow bucket reports its lower bound (the histogram cannot
    see past its last edge).  Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            lower = bounds[index - 1] if index > 0 else 0.0
            if index >= len(bounds):
                return float(lower)  # overflow bucket: clamp to last edge
            upper = bounds[index]
            fraction = (rank - cumulative) / count
            return float(lower + (upper - lower) * fraction)
        cumulative += count
    return float(bounds[-1]) if bounds else 0.0


class MetricsRegistry:
    """Process-local registry of named instruments.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name, bounds)``
    return the live handle for ``name`` (created on first request),
    or the shared no-op singleton when the registry is disabled.
    :meth:`snapshot` renders everything to one JSON-able dict.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (same handle per name; null when off)."""
        if not self.enabled:
            return NULL_COUNTER
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name)
        return handle

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (same handle per name; null when off)."""
        if not self.enabled:
            return NULL_GAUGE
        handle = self._gauges.get(name)
        if handle is None:
            handle = self._gauges[name] = Gauge(name)
        return handle

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        """The histogram named ``name``; re-registering with different
        bucket bounds raises (one distribution per name)."""
        if not self.enabled:
            return NULL_HISTOGRAM
        handle = self._histograms.get(name)
        if handle is None:
            handle = self._histograms[name] = Histogram(name, bounds)
        elif handle.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{handle.bounds}, requested {tuple(bounds)}"
            )
        return handle

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one JSON-able dict (sorted names)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "sum": h.sum,
                }
                for name, h in sorted(self._histograms.items())
            },
        }


#: The shared disabled registry: default for every component that takes
#: an optional ``metrics`` parameter.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def registry_or_null(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Normalize an optional registry parameter."""
    return metrics if metrics is not None else NULL_REGISTRY
