"""Structured key=value progress logging for the harness layers.

``print(...)`` in library code is banned by the ``no-print``
repro_lints rule: progress and diagnostics go through this logger,
which writes machine-parseable single-line events to **stderr** (the
CLIs own stdout for result tables, and ``verify.sh`` greps it)::

    suite.experiment experiment=fig10 status=ok elapsed=3.2

Verbosity has three levels — ``quiet`` (errors/warnings only),
``info`` (the default: lifecycle events) and ``debug`` (per-trial
noise) — set by the CLI's ``--quiet``/``--verbose`` flags via
:func:`set_verbosity`.  The level is mirrored into the
``REPRO_VERBOSITY`` environment variable so process-pool workers
inherit it.

Values render as ``repr``-free tokens: floats compactly, strings
quoted only when they contain whitespace or ``=``.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Optional, TextIO

#: verbosity order; higher includes lower
LEVELS = ("quiet", "info", "debug")

ENV_VAR = "REPRO_VERBOSITY"


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bool):
        return "true" if value else "false"
    text = str(value)
    if text == "" or any(c in text for c in ' \t"=') :
        return json.dumps(text)
    return text


class StructuredLogger:
    """One named key=value line logger (see module docstring)."""

    def __init__(
        self,
        name: str = "repro",
        level: Optional[str] = None,
        stream: Optional[TextIO] = None,
    ) -> None:
        if level is None:
            level = os.environ.get(ENV_VAR, "info")
        if level not in LEVELS:
            level = "info"
        self.name = name
        self.level = level
        self.stream = stream

    # ------------------------------------------------------------------
    def _emit(self, threshold: str, event: str, fields: Any) -> None:
        if LEVELS.index(self.level) < LEVELS.index(threshold):
            return
        parts = [event]
        parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
        stream = self.stream if self.stream is not None else sys.stderr
        stream.write(" ".join(parts) + "\n")
        stream.flush()

    def info(self, event: str, **fields: Any) -> None:
        """Lifecycle events (suite/campaign start, finish, errors)."""
        self._emit("info", event, fields)

    def debug(self, event: str, **fields: Any) -> None:
        """Per-trial / per-artifact noise; shown under ``--verbose``."""
        self._emit("debug", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        """Always shown (even under ``--quiet``)."""
        self._emit("quiet", event, fields)

    def set_level(self, level: str) -> None:
        """Switch verbosity; unknown level names raise ``ValueError``."""
        if level not in LEVELS:
            raise ValueError(f"unknown verbosity {level!r}; have {list(LEVELS)}")
        self.level = level


#: the process-wide default logger used by the harness layers
_default = StructuredLogger()


def get_logger() -> StructuredLogger:
    """The shared default logger."""
    return _default


def set_verbosity(level: str) -> None:
    """Set the default logger's level and export it to child processes."""
    _default.set_level(level)
    os.environ[ENV_VAR] = level
