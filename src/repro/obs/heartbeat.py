"""The campaign heartbeat: an append-only JSONL lifecycle stream.

``run_campaign`` writes one line per lifecycle event into
``heartbeat.jsonl`` inside the campaign directory — campaign start and
finish, scenario start / finish / cache-hit, trial finish and fault,
plus the recovery machinery's events (trial retry / timeout /
quarantine, pool rebuilds, corrupt-result quarantines on resume) — so
an external watcher (``tail -f``, the ``--progress`` renderer, the
``repro obs report`` summary, or the future campaign-as-a-service
dashboard) can follow a long campaign without touching the atomic
result documents.

Unlike the scenario documents, the heartbeat is *append-only*: a
resumed campaign appends a fresh ``campaign.start`` (with
``resumed=true``) and its events after the interrupted run's tail, so
the file is the full history of every attempt.  Lines are flushed per
event; :func:`read_heartbeat` tolerates a truncated final line, so a
reader racing the writer sees a complete prefix.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

HEARTBEAT_FILENAME = "heartbeat.jsonl"

#: schema tag stamped on every record
HEARTBEAT_SCHEMA = "repro-heartbeat-v1"


class HeartbeatWriter:
    """Appends lifecycle events to a campaign's ``heartbeat.jsonl``."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a")
        self._seq = 0

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event line and flush it."""
        record: Dict[str, Any] = {"event": event, "seq": self._seq}
        record.update(fields)
        # Advisory wall-clock: heartbeat timing is for humans/dashboards
        # and never part of result identity.
        record["wall_time"] = round(time.time(), 3)
        self._seq += 1
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        return record

    def close(self) -> None:
        """Close the underlying append handle."""
        self._handle.close()

    def __enter__(self) -> "HeartbeatWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_heartbeat(path: PathLike) -> List[Dict[str, Any]]:
    """All parseable heartbeat records (tolerates a truncated tail)."""
    records: List[Dict[str, Any]] = []
    file_path = Path(path)
    if file_path.is_dir():
        file_path = file_path / HEARTBEAT_FILENAME
    if not file_path.exists():
        return records
    with open(file_path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # truncated tail from an in-flight writer
            if isinstance(record, dict):
                records.append(record)
    return records


def last_run(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The records of the most recent ``campaign.start`` attempt.

    A resumed/re-run campaign appends its events after the previous
    attempt's; summaries usually want only the latest attempt.
    """
    start = 0
    for index, record in enumerate(records):
        if record.get("event") == "campaign.start":
            start = index
    return records[start:]


#: heartbeat events folded into ``summarize()``'s health sub-dict
HEALTH_EVENTS = {
    "trial.retry": "retries",
    "trial.timeout": "timeouts",
    "trial.quarantined": "quarantined",
    "pool.rebuild": "pool_rebuilds",
    "scenario.corrupt": "corrupt_results",
}


def summarize(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Compact statistics over one attempt's heartbeat records."""
    counts: Dict[str, int] = {}
    faults: List[Dict[str, Any]] = []
    health = {name: 0 for name in HEALTH_EVENTS.values()}
    for record in records:
        event = str(record.get("event"))
        counts[event] = counts.get(event, 0) + 1
        if event == "trial.fault":
            faults.append(record)
        if event in HEALTH_EVENTS:
            health[HEALTH_EVENTS[event]] += 1
    times = [r["wall_time"] for r in records if "wall_time" in r]
    wall_seconds: Optional[float] = None
    if len(times) >= 2:
        wall_seconds = round(max(times) - min(times), 3)
    return {
        "events": counts,
        "faults": faults,
        "health": health,
        "wall_seconds": wall_seconds,
        "finished": counts.get("campaign.finish", 0) > 0,
        "interrupted": counts.get("campaign.interrupted", 0) > 0,
    }
