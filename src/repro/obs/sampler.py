"""Periodic sim-time sampling of memory-system health metrics.

A :class:`TimeSeriesSampler` rides the engine's event queue
(:meth:`repro.core.engine.Engine.every`) and snapshots, every
``interval_ns`` of *simulation* time, the windowed series the ROADMAP's
live-dashboard item needs:

* ``queue_depth`` — requests waiting across all channel schedulers
  (instantaneous);
* ``row_hit_rate`` — hits / requests completed inside the window;
* ``bus_occupancy`` — fraction of the window the data bus was busy
  (completed requests × tBL / (channels × window));
* ``alerts_per_s`` — ABO alerts inside the window, per simulated
  second;
* ``events_per_wall_s`` — engine events per *wall-clock* second since
  the previous sample (the live throughput gauge; the only wall-clock
  read in the series, and explicitly advisory — it never enters result
  payloads compared for identity).

The sampler is attached only when ``SystemConfig(metrics=True)``: with
metrics off, no sampler exists and the event schedule is untouched.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.memory_system import MemorySystem
    from repro.core.engine import RepeatingTimer

#: metrics-series schema tag (file format identity for readers)
SERIES_SCHEMA = "repro-metrics-v1"

#: default sampling interval: ~2.5 tREFI, a few hundred samples on the
#: pinned perf workloads
DEFAULT_INTERVAL_NS = 10_000.0


class TimeSeriesSampler:
    """Windowed metric series over one :class:`MemorySystem` run."""

    def __init__(
        self, memory: "MemorySystem", interval_ns: float = DEFAULT_INTERVAL_NS
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        self.memory = memory
        self.engine = memory.engine
        self.interval_ns = interval_ns
        self.series: Dict[str, List[float]] = {
            "t": [],
            "queue_depth": [],
            "row_hit_rate": [],
            "bus_occupancy": [],
            "alerts_per_s": [],
            "events_per_wall_s": [],
        }
        self._timer: Optional["RepeatingTimer"] = None
        # Window baselines (previous sample's totals)
        self._last_requests = 0
        self._last_hits = 0
        self._last_alerts = 0
        self._last_events = 0
        self._last_wall = time.perf_counter()
        self._tBL = memory.config.timing.tBL

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic sample event; idempotent."""
        if self._timer is None:
            self._last_wall = time.perf_counter()
            self._timer = self.engine.every(
                self.interval_ns, self.sample, priority=3, label="obs-sample"
            )

    def stop(self) -> None:
        """Cancel the repeating sampling timer (idempotent)."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Take one sample now (normally driven by the timer)."""
        memory = self.memory
        controllers = memory.controllers
        requests = 0
        hits = 0
        alerts = 0
        depth = 0
        for controller in controllers:
            stats = controller.stats
            requests += stats.requests_served
            hits += stats.row_hits
            alerts += controller.abo.alert_count
            depth += controller.scheduler.pending()
        d_requests = requests - self._last_requests
        d_hits = hits - self._last_hits
        d_alerts = alerts - self._last_alerts
        events = self.engine.events_fired
        d_events = events - self._last_events
        wall = time.perf_counter()
        d_wall = wall - self._last_wall

        window_ns = self.interval_ns
        series = self.series
        series["t"].append(self.engine.now)
        series["queue_depth"].append(float(depth))
        series["row_hit_rate"].append(d_hits / d_requests if d_requests else 0.0)
        series["bus_occupancy"].append(
            d_requests * self._tBL / (len(controllers) * window_ns)
        )
        series["alerts_per_s"].append(d_alerts / (window_ns * 1e-9))
        series["events_per_wall_s"].append(d_events / d_wall if d_wall > 0 else 0.0)

        self._last_requests = requests
        self._last_hits = hits
        self._last_alerts = alerts
        self._last_events = events
        self._last_wall = wall

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-able document: schema + interval + column-major series."""
        return {
            "schema": SERIES_SCHEMA,
            "interval_ns": self.interval_ns,
            "samples": len(self.series["t"]),
            "series": {name: list(values) for name, values in self.series.items()},
        }

    def export(self, path: Any, extra: Optional[Dict[str, Any]] = None) -> Any:
        """Atomically persist the series (plus optional extra sections,
        e.g. a metrics-registry snapshot) next to the run's results."""
        from repro.analysis.storage import atomic_write_json

        payload = self.to_payload()
        if extra:
            payload.update(extra)
        return atomic_write_json(path, payload)
