"""The ``repro obs`` CLI back-end: campaign summaries + trace export.

``repro obs report <campaign-dir>`` renders one human-readable
summary of everything a campaign directory contains — the
``campaign.json`` index, the heartbeat stream's latest attempt
(events, faults, wall time), and any per-trial telemetry under
``obs/`` (trace event tallies, metric series lengths, latency
percentiles).  ``repro obs export-trace <trace.jsonl>`` converts a
JSONL trace into the Chrome ``trace_event`` JSON Perfetto loads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs import heartbeat as hb
from repro.obs.trace import chrome_trace, load_trace_jsonl

PathLike = Union[str, Path]

OBS_SUBDIR = "obs"


# ----------------------------------------------------------------------
# obs report
# ----------------------------------------------------------------------
def _load_index(campaign_dir: Path) -> List[Dict[str, Any]]:
    path = campaign_dir / "campaign.json"
    if not path.exists():
        return []
    try:
        rows = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return rows if isinstance(rows, list) else []


def _metric_means(campaign_dir: Path, row: Dict[str, Any]) -> Optional[str]:
    """``name=mean`` summary of one scenario's aggregated metrics."""
    file_name = row.get("file")
    if not file_name:
        return None
    try:
        doc = json.loads((campaign_dir / str(file_name)).read_text())
    except (OSError, ValueError):
        return None
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        return None
    parts = []
    for name in sorted(metrics):
        stats = metrics[name]
        if isinstance(stats, dict) and "mean" in stats:
            parts.append(f"{name}={stats['mean']:.4g}")
    return "  ".join(parts) if parts else None


def _scan_obs_dir(obs_dir: Path) -> List[str]:
    """Per-telemetry-file summary lines (traces + metrics series)."""
    lines: List[str] = []
    if not obs_dir.is_dir():
        return lines
    for path in sorted(obs_dir.glob("trace-*.jsonl")):
        header, events = load_trace_jsonl(path)
        counts: Dict[str, int] = {}
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        top = "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        lines.append(f"  {path.name}: {len(events)} events  {top}")
        chrome = path.with_name(path.name[: -len(".jsonl")] + ".chrome.json")
        if chrome.exists():
            lines.append(f"  {chrome.name}: Chrome trace (load in Perfetto)")
    for path in sorted(obs_dir.glob("metrics-*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        samples = doc.get("samples", 0)
        interval = doc.get("interval_ns", 0)
        detail = f"{samples} samples @ {interval:g} ns"
        pcts = doc.get("latency_percentiles_ns")
        if pcts:
            detail += "  " + "  ".join(
                f"{name}={value:.1f}ns" for name, value in sorted(pcts.items())
            )
        lines.append(f"  {path.name}: {detail}")
    return lines


def campaign_report(campaign_dir: PathLike) -> str:
    """One human-readable summary of a campaign directory."""
    root = Path(campaign_dir)
    if not root.is_dir():
        raise FileNotFoundError(f"not a campaign directory: {root}")
    lines: List[str] = [f"campaign: {root}"]

    rows = _load_index(root)
    if rows:
        by_status: Dict[str, int] = {}
        for row in rows:
            status = str(row.get("status", "?"))
            by_status[status] = by_status.get(status, 0) + 1
        tally = "  ".join(f"{k}={v}" for k, v in sorted(by_status.items()))
        lines.append(f"scenarios: {len(rows)}  ({tally})")
        width = max(len(str(row.get("label", ""))) for row in rows)
        for row in rows:
            line = f"  {row.get('label', ''):<{width}}  {row.get('status', '?')}"
            if row.get("trials_error"):
                error = row.get("error", {})
                line += (
                    f"  {row['trials_error']} failed"
                    f" ({error.get('type', '?')}: {error.get('message', '')})"
                )
            lines.append(line)
            means = _metric_means(root, row)
            if means:
                lines.append(f"      {means}")
    else:
        lines.append("scenarios: no campaign.json index found")

    records = hb.read_heartbeat(root)
    if records:
        latest = hb.last_run(records)
        summary = hb.summarize(latest)
        events = "  ".join(
            f"{name}={count}" for name, count in sorted(summary["events"].items())
        )
        lines.append(f"heartbeat: {len(latest)} records in latest attempt  ({events})")
        if summary["wall_seconds"] is not None:
            state = "finished" if summary["finished"] else "interrupted"
            lines.append(
                f"heartbeat: {state} after {summary['wall_seconds']:.1f}s wall"
            )
        health = summary.get("health", {})
        if any(health.values()):
            tally = "  ".join(
                f"{name}={count}"
                for name, count in sorted(health.items())
                if count
            )
            lines.append(f"health: {tally}")
        attempts = sum(
            1 for r in records if r.get("event") == "campaign.start"
        )
        if attempts > 1:
            lines.append(f"heartbeat: {attempts} attempts recorded (resumed)")
        for fault in summary["faults"]:
            lines.append(
                f"  fault: scenario={fault.get('scenario_id', '?')}"
                f" seed={fault.get('seed', '?')}"
                f" {fault.get('error_type', '?')}: {fault.get('error', '')}"
            )
    else:
        lines.append("heartbeat: none recorded")

    telemetry = _scan_obs_dir(root / OBS_SUBDIR)
    if telemetry:
        lines.append(f"telemetry ({OBS_SUBDIR}/):")
        lines.extend(telemetry)
    else:
        lines.append(
            "telemetry: none (run with --grid trace=true metrics=true to collect)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# obs export-trace
# ----------------------------------------------------------------------
def export_trace(trace_path: PathLike, out: Optional[PathLike] = None) -> Path:
    """Convert a JSONL trace to Chrome ``trace_event`` JSON.

    Default output: ``<trace>.chrome.json`` next to the input.
    """
    from repro.analysis.storage import atomic_write_json

    source = Path(trace_path)
    header, events = load_trace_jsonl(source)
    if not header and not events:
        raise ValueError(f"no trace records in {source}")
    if out is None:
        stem = source.name
        if stem.endswith(".jsonl"):
            stem = stem[: -len(".jsonl")]
        out = source.with_name(stem + ".chrome.json")
    label = str(header.get("label", source.stem))
    return atomic_write_json(out, chrome_trace(events, label=label))
