"""DDR5 DRAM substrate with PRAC timing adjustments.

This package models the memory device side of the reproduction:

* :mod:`repro.dram.config` — timing/organization parameters (Table 3 of
  the paper; DDR5-8000B 32 Gb with PRAC-adjusted tRP/tWR).
* :mod:`repro.dram.commands` — DRAM command vocabulary (ACT/PRE/RD/WR/
  REF/RFMab/RFMpb).
* :mod:`repro.dram.address` — physical-address ⇄ DRAM-coordinate
  mappings (Minimalist Open Page and a linear mapping).
* :mod:`repro.dram.bank` — per-bank state: row buffer, timing wheel,
  PRAC activation counters.
* :mod:`repro.dram.rank` — rank/channel aggregation.
* :mod:`repro.dram.refresh` — the tREFI/tREFW refresh machinery and
  Targeted-Refresh (TREF) slots.
"""

from repro.dram.address import (
    MAPPINGS,
    AddressMapping,
    DramAddress,
    LinearMapping,
    MopMapping,
    make_mapping,
)
from repro.dram.bank import Bank
from repro.dram.commands import Command, CommandKind
from repro.dram.config import DramConfig, DramOrganization, DramTiming
from repro.dram.rank import Channel
from repro.dram.refresh import (
    REFRESH_POLICIES,
    RefreshScheduler,
    StaggeredRefreshScheduler,
    make_refresh,
)

__all__ = [
    "AddressMapping",
    "Bank",
    "Channel",
    "Command",
    "CommandKind",
    "DramAddress",
    "DramConfig",
    "DramOrganization",
    "DramTiming",
    "LinearMapping",
    "MAPPINGS",
    "MopMapping",
    "REFRESH_POLICIES",
    "RefreshScheduler",
    "StaggeredRefreshScheduler",
    "make_mapping",
    "make_refresh",
]
