"""DRAM configuration: organization, timing and PRAC parameters.

The defaults follow Table 1 (JEDEC PRAC parameters) and Table 3 (system
configuration) of the paper: a 32 Gb DDR5-8000B chip with 4 banks x 8
bank groups x 4 ranks on one channel, 128K rows of 8 KB per bank, and
PRAC-adjusted tRP/tWR.  All times are in nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict


KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class DramTiming:
    """DDR5 timing parameters (ns), PRAC-adjusted per the JEDEC spec.

    The paper's Table 3 values: tRCD=tCL=tRAS=16, tRP=36 (PRAC
    read-modify-write of the activation counter happens during
    precharge), tRTP=5, tWR=10, tRC=52, tRFC=410, tREFI=3900,
    tABOACT=180, tRFMab=350.
    """

    tCK: float = 0.25           # DDR5-8000: 4 GHz IO clock
    tRCD: float = 16.0          # ACT -> RD/WR
    tCL: float = 16.0           # RD -> data
    tRAS: float = 16.0          # ACT -> PRE (minimum row-open time)
    tRP: float = 36.0           # PRE -> ACT (PRAC-adjusted)
    tRTP: float = 5.0           # RD -> PRE
    tWR: float = 10.0           # write recovery (PRAC-adjusted)
    tRC: float = 52.0           # ACT -> ACT, same bank (tRAS + tRP)
    tBL: float = 2.0            # burst of 16 at 8 Gbps: 16/8000MT * 1000
    tCCD: float = 2.0           # column-to-column, same bank group
    tRRD: float = 2.0           # ACT -> ACT, different banks
    tFAW: float = 10.0          # four-activate window
    tRFC: float = 410.0         # refresh cycle time (all-bank REFab)
    tREFI: float = 3900.0       # refresh interval
    tREFW: float = 32_000_000.0  # refresh window (32 ms)
    tWTR: float = 5.0           # write-to-read turnaround
    tABOACT: float = 180.0      # max time from Alert to RFM (<= 3 ACTs)
    tRFMab: float = 350.0       # all-bank RFM blocking time
    tRFMpb: float = 130.0       # per-bank RFM blocking time (7.2 extension)

    def validate(self) -> None:
        """Check internal consistency of the timing set."""
        if abs((self.tRAS + self.tRP) - self.tRC) > 1e-9:
            raise ValueError(
                f"tRC ({self.tRC}) must equal tRAS + tRP "
                f"({self.tRAS} + {self.tRP})"
            )
        for name in (
            "tCK", "tRCD", "tCL", "tRAS", "tRP", "tRTP", "tWR", "tRC",
            "tBL", "tCCD", "tRRD", "tFAW", "tRFC", "tREFI", "tREFW",
            "tWTR", "tABOACT", "tRFMab", "tRFMpb",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tREFI >= self.tREFW:
            raise ValueError("tREFI must be smaller than tREFW")


@dataclass(frozen=True)
class DramOrganization:
    """Physical organization of the memory system.

    ``channels`` counts independent DDR5 channels, each with its own
    memory controller, data bus, refresh machinery and PRAC/ABO state
    (see :class:`repro.controller.memory_system.MemorySystem`).  All
    remaining fields describe **one** channel; capacity scales with the
    channel count.
    """

    channels: int = 1
    ranks: int = 4
    bank_groups: int = 8
    banks_per_group: int = 4
    rows_per_bank: int = 128 * 1024
    row_size_bytes: int = 8 * KB
    cacheline_bytes: int = 64

    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups * self.banks_per_group

    @property
    def banks_per_channel(self) -> int:
        """Banks owned by one channel's controller (rank-major flat index)."""
        return self.ranks * self.banks_per_rank

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks * self.banks_per_rank

    @property
    def columns_per_row(self) -> int:
        """Number of cache lines in one DRAM row."""
        return self.row_size_bytes // self.cacheline_bytes

    @property
    def capacity_bytes(self) -> int:
        return (
            self.total_banks * self.rows_per_bank * self.row_size_bytes
        )

    def validate(self) -> None:
        """Raise ValueError on inconsistent parameters; returns self where chained."""
        for name in (
            "channels", "ranks", "bank_groups", "banks_per_group",
            "rows_per_bank", "row_size_bytes", "cacheline_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.row_size_bytes % self.cacheline_bytes != 0:
            raise ValueError("row size must be a multiple of the cache line")


@dataclass(frozen=True)
class PracConfig:
    """PRAC / ABO protocol parameters (Table 1 of the paper).

    ``nbo`` is the Back-Off threshold at which the DRAM asserts Alert.
    ``prac_level`` (N_mit) is the number of RFMab commands issued per
    ABO: 1, 2 or 4.  ``abo_act`` is the number of extra activations the
    controller may issue between Alert and the RFM.  ``abo_delay``
    equals the PRAC level per the JEDEC spec.  ``bat`` is the Bank
    Activation threshold used by proactive ACB-RFMs (Targeted RFM).
    """

    nbo: int = 1024
    prac_level: int = 1
    abo_act: int = 3
    bat: int = 75
    reset_on_refresh: bool = True  # reset per-row counters every tREFW

    @property
    def abo_delay(self) -> int:
        """Minimum ACTs after an RFM before the next Alert (== N_mit)."""
        return self.prac_level

    def validate(self) -> None:
        """Raise ValueError on inconsistent parameters; returns self where chained."""
        if self.prac_level not in (1, 2, 4):
            raise ValueError("PRAC level (N_mit) must be 1, 2 or 4")
        if self.nbo <= 0:
            raise ValueError("N_BO must be positive")
        if self.abo_act < 0:
            raise ValueError("ABO_ACT must be non-negative")
        if self.bat <= 0:
            raise ValueError("BAT must be positive")


@dataclass(frozen=True)
class DramConfig:
    """Complete device configuration: organization + timing + PRAC."""

    organization: DramOrganization = field(default_factory=DramOrganization)
    timing: DramTiming = field(default_factory=DramTiming)
    prac: PracConfig = field(default_factory=PracConfig)

    def validate(self) -> "DramConfig":
        """Raise ValueError on inconsistent parameters; returns self where chained."""
        self.organization.validate()
        self.timing.validate()
        self.prac.validate()
        return self

    def with_prac(self, **overrides: Any) -> "DramConfig":
        """Return a copy with PRAC parameters overridden."""
        return replace(self, prac=replace(self.prac, **overrides))

    def with_timing(self, **overrides: Any) -> "DramConfig":
        """Return a copy with timing parameters overridden."""
        return replace(self, timing=replace(self.timing, **overrides))

    def with_organization(self, **overrides: Any) -> "DramConfig":
        """Return a copy with organization parameters overridden."""
        return replace(self, organization=replace(self.organization, **overrides))

    # Convenience accessors used throughout the code base -------------
    @property
    def acts_per_trefi(self) -> float:
        """Maximum activations to one bank per tREFI (= tREFI / tRC)."""
        return self.timing.tREFI / self.timing.tRC

    @property
    def max_acts_per_trefw(self) -> int:
        """Maximum activations in a refresh window (~550K in the paper).

        A fraction of each tREFI is consumed by the refresh itself
        (tRFC), so the bound is (tREFW / tREFI) * (tREFI - tRFC) / tRC.
        """
        t = self.timing
        refreshes = t.tREFW / t.tREFI
        return int(refreshes * (t.tREFI - t.tRFC) / t.tRC)


def ddr5_8000b() -> DramConfig:
    """The paper's evaluated device: 32 Gb DDR5-8000B (Table 3)."""
    return DramConfig().validate()


def ddr5_4800() -> DramConfig:
    """A slower-bin DDR5 part for sensitivity studies.

    Same PRAC behaviour, longer core timings (tRCD/tCL 16 ns are
    JEDEC-floor absolute times, so they stay; the burst takes longer at
    4800 MT/s and the refresh interval is unchanged).
    """
    timing = DramTiming(
        tCK=1.0 / 2.4,
        tBL=16 / 4.8,
        tCCD=16 / 4.8,
        tRRD=16 / 4.8,
    )
    return DramConfig(timing=timing).validate()


def small_test_config(rows_per_bank: int = 256, nbo: int = 64) -> DramConfig:
    """A small configuration for fast unit tests."""
    org = DramOrganization(
        ranks=1, bank_groups=2, banks_per_group=2, rows_per_bank=rows_per_bank
    )
    cfg = DramConfig(organization=org, prac=PracConfig(nbo=nbo))
    return cfg.validate()


#: Named presets, so experiment configs can refer to devices by string.
PRESETS: Dict[str, DramConfig] = {
    "ddr5_8000b": ddr5_8000b(),
    "ddr5_4800": ddr5_4800(),
}
