"""Physical address to DRAM-coordinate mapping.

Two mappings are provided:

* :class:`LinearMapping` — row/rank/bankgroup/bank/column in descending
  bit order.  Simple and useful for unit tests and attack traces where
  we want direct control over which row an address lands in.
* :class:`MopMapping` — Minimalist Open Page (Kaseridis et al.,
  MICRO'11), the policy used by the paper's memory controller.  MOP
  stripes small blocks of consecutive cache lines across banks to mix
  row-buffer locality with bank-level parallelism.  This striping is
  exactly what lets two 4 KB pages from different processes share one
  8 KB DRAM row — the enabler of the activation-count-based channel.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Tuple

from repro.dram.config import DramOrganization
from repro.registry import Registry

#: Address-mapping registry: ``SystemConfig.mapping`` names resolve
#: here.  Factories are called as ``factory(org, **params)``.
MAPPINGS = Registry("address mapping", "mapping")


class DramAddress(NamedTuple):
    """A decoded DRAM coordinate.

    A ``NamedTuple`` rather than a frozen dataclass: addresses are
    created once per decoded request on the simulator's hot path, and
    tuple construction is several times cheaper than a frozen
    dataclass's ``object.__setattr__`` init while keeping the same
    immutability, equality, hashing and field ordering semantics.
    """

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int

    def flat_bank(self, org: DramOrganization) -> int:
        """Flat bank index across the whole channel (rank-major)."""
        per_rank = org.banks_per_rank
        within_rank = self.bank_group * org.banks_per_group + self.bank
        return self.rank * per_rank + within_rank


class AddressMapping:
    """Base class for physical-address decoders.

    Both concrete mappings interleave channels at cache-line
    granularity: the channel bits sit directly above the line offset
    (below the MOP block / column bits), so consecutive cache lines
    stripe across all channels.  With ``channels == 1`` the channel
    field contributes no bits and decode/encode are unchanged.
    """

    def __init__(self, org: DramOrganization) -> None:
        self.org = org

    def decode(self, phys_addr: int) -> DramAddress:
        """Map a byte physical address to a DRAM coordinate."""
        raise NotImplementedError

    def encode(self, addr: DramAddress) -> int:
        """Map a DRAM coordinate back to a byte physical address."""
        raise NotImplementedError

    def channel_of(self, phys_addr: int) -> int:
        """Channel index alone — the request-routing fast path.

        Channel bits sit directly above the line offset in both
        mappings, so routing needs one divmod rather than a full
        decode.
        """
        return (phys_addr // self.org.cacheline_bytes) % self.org.channels

    # Helpers shared by subclasses ------------------------------------
    def _split(self, value: int, *sizes: int) -> Tuple[int, ...]:
        """Split ``value`` into fields, least-significant first."""
        out = []
        for size in sizes:
            out.append(value % size)
            value //= size
        out.append(value)
        return tuple(out)


@MAPPINGS.register("linear")
class LinearMapping(AddressMapping):
    """row : rank : bank_group : bank : column : channel : offset (MSB -> LSB)."""

    def decode(self, phys_addr: int) -> DramAddress:
        org = self.org
        line = phys_addr // org.cacheline_bytes
        channel, column, bank, bank_group, rank, row = self._split(
            line, org.channels, org.columns_per_row, org.banks_per_group,
            org.bank_groups, org.ranks,
        )
        return DramAddress(
            channel=channel,
            rank=rank % org.ranks,
            bank_group=bank_group,
            bank=bank,
            row=row % org.rows_per_bank,
            column=column,
        )

    def encode(self, addr: DramAddress) -> int:
        org = self.org
        line = addr.row
        line = line * org.ranks + addr.rank
        line = line * org.bank_groups + addr.bank_group
        line = line * org.banks_per_group + addr.bank
        line = line * org.columns_per_row + addr.column
        line = line * org.channels + addr.channel
        return line * org.cacheline_bytes


@MAPPINGS.register("mop")
class MopMapping(AddressMapping):
    """Minimalist Open Page mapping.

    Consecutive cache lines first stripe across channels, then group
    into MOP blocks of ``mop_width`` lines that stay in the same
    row/bank; successive blocks rotate across banks, then ranks, then
    advance the row.  The channel bits sit **below** the MOP block so
    every channel receives an equal share of each block's lines.  Bit
    layout (LSB -> MSB)::

        offset : channel : mop_block(column low) : bank : bank_group :
        rank : column_high : row
    """

    def __init__(self, org: DramOrganization, mop_width: int = 4) -> None:
        super().__init__(org)
        if mop_width <= 0 or org.columns_per_row % mop_width != 0:
            raise ValueError(
                f"mop_width {mop_width} must divide columns/row "
                f"({org.columns_per_row})"
            )
        self.mop_width = mop_width

    def decode(self, phys_addr: int) -> DramAddress:
        # Direct div/mod chain (equivalent to _split, without the
        # temporary list/tuple): this runs once per DRAM request.
        org = self.org
        mop_width = self.mop_width
        line = phys_addr // org.cacheline_bytes
        channel = line % org.channels
        line //= org.channels
        col_low = line % mop_width
        line //= mop_width
        bank = line % org.banks_per_group
        line //= org.banks_per_group
        bank_group = line % org.bank_groups
        line //= org.bank_groups
        rank = line % org.ranks
        line //= org.ranks
        col_blocks = org.columns_per_row // mop_width
        col_high = line % col_blocks
        row = line // col_blocks
        return DramAddress(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row % org.rows_per_bank,
            column=col_high * mop_width + col_low,
        )

    def encode(self, addr: DramAddress) -> int:
        org = self.org
        col_high, col_low = divmod(addr.column, self.mop_width)
        line = addr.row
        line = line * (org.columns_per_row // self.mop_width) + col_high
        line = line * org.ranks + addr.rank
        line = line * org.bank_groups + addr.bank_group
        line = line * org.banks_per_group + addr.bank
        line = line * self.mop_width + col_low
        line = line * org.channels + addr.channel
        return line * org.cacheline_bytes


def make_mapping(name: str, org: DramOrganization, **params: Any) -> AddressMapping:
    """Instantiate the mapping registered under ``name``.

    Names: see ``MAPPINGS.available()`` (``linear``, ``mop``).
    ``params`` are mapping-specific knobs (``mop_width``).
    """
    return MAPPINGS.make(name, org, **params)
