"""Channel/rank aggregation of banks.

The :class:`Channel` owns one channel's flat bank array, its shared
data bus and the channel-wide blocking window that REF and RFMab
commands impose — that blocking window *is* the paper's timing
channel.  A multi-channel system instantiates one :class:`Channel`
(inside one :class:`~repro.controller.controller.MemoryController`)
per ``DramOrganization.channels``; blocking, refresh and PRAC state
never cross channels.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.dram.bank import Bank
from repro.dram.config import DramConfig


class Channel:
    """One DDR5 channel: banks plus channel-global timing state."""

    def __init__(self, config: DramConfig, channel_id: int = 0) -> None:
        self.config = config
        self.channel_id = channel_id
        self.banks: List[Bank] = [
            Bank(config, bank_id)
            for bank_id in range(config.organization.banks_per_channel)
        ]
        self.bus_free_at: float = 0.0      # shared data bus occupancy
        self.blocked_until: float = 0.0    # REF / RFMab channel-wide blocking
        self.rfm_count: int = 0            # total RFMs issued (any provenance)

    def bank(self, flat_bank_id: int) -> Bank:
        """The bank at a flat channel-wide index."""
        return self.banks[flat_bank_id]

    def __iter__(self) -> Iterator[Bank]:
        return iter(self.banks)

    def __len__(self) -> int:
        return len(self.banks)

    # ------------------------------------------------------------------
    # Channel-wide blocking (REF / RFMab)
    # ------------------------------------------------------------------
    def block(self, start: float, duration: float) -> float:
        """Block the whole channel for ``duration`` starting at ``start``.

        All banks' ``ready_at`` are pushed past the window and every
        open row is closed (RFMab/REFab require all banks precharged).
        Returns the time the window ends.
        """
        end = start + duration
        self.blocked_until = max(self.blocked_until, end)
        for bank in self.banks:
            if bank.open_row is not None:
                bank.precharge(start)
            bank.ready_at = max(bank.ready_at, end)
        self.bus_free_at = max(self.bus_free_at, end)
        return end

    def block_bank(self, flat_bank_id: int, start: float, duration: float) -> float:
        """Block a single bank (per-bank RFM extension, Section 7.2)."""
        end = start + duration
        bank = self.banks[flat_bank_id]
        if bank.open_row is not None:
            bank.precharge(start)
        bank.ready_at = max(bank.ready_at, end)
        return end

    def reset_all_counters(self) -> None:
        """tREFW-aligned PRAC counter reset across all banks."""
        for bank in self.banks:
            bank.reset_all_counters()
