"""DRAM command vocabulary.

Commands are what the memory controller issues on the command bus.  The
reproduction models them at command granularity (one record per ACT /
PRE / RD / WR / REF / RFM), which is the granularity at which the
paper's timing channel exists.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class CommandKind(enum.Enum):
    """The DDR5 commands relevant to PRAC timing channels."""

    ACT = "ACT"          # activate a row (increments its PRAC counter)
    PRE = "PRE"          # precharge (close) the open row
    RD = "RD"            # column read
    WR = "WR"            # column write
    REF = "REF"          # all-bank refresh (blocks tRFC)
    RFM_AB = "RFMab"     # all-bank Refresh Management (blocks tRFMab)
    RFM_PB = "RFMpb"     # per-bank RFM (Section 7.2 extension)


class RfmProvenance(enum.Enum):
    """Why an RFM was issued — the observable the attacks care about.

    * ``ABO`` — Alert-Back-Off-triggered (activity dependent, leaky).
    * ``ACB`` — Activation-Based (BAT threshold, activity dependent).
    * ``TB`` — Timing-Based (TPRAC; activity independent).
    * ``RANDOM`` — injected by the obfuscation defense (Section 7.1).
    """

    ABO = "abo"
    ACB = "acb"
    TB = "tb"
    RANDOM = "random"


@dataclass
class Command:
    """A single command instance with issue bookkeeping."""

    kind: CommandKind
    bank_id: int = -1            # flat bank index; -1 for all-bank commands
    row: int = -1
    issue_time: float = 0.0
    provenance: Optional[RfmProvenance] = None
    meta: dict = field(default_factory=dict)

    @property
    def is_rfm(self) -> bool:
        return self.kind in (CommandKind.RFM_AB, CommandKind.RFM_PB)

    @property
    def is_all_bank(self) -> bool:
        return self.kind in (CommandKind.REF, CommandKind.RFM_AB)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "all-banks" if self.is_all_bank else f"bank={self.bank_id}"
        tag = f" [{self.provenance.value}]" if self.provenance else ""
        return f"<{self.kind.value} {where} row={self.row} @ {self.issue_time:.1f}ns{tag}>"
