"""Per-bank DRAM state: row buffer, timing, and PRAC counters.

A :class:`Bank` owns the open-row state and the per-row activation
counters that PRAC adds to every row.  The counter is incremented on
each activation (the JEDEC spec performs the read-modify-write during
the precharge of the activated row; counting at ACT yields the same
per-row totals and is the convention used by the paper's Ramulator2
model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.dram.config import DramConfig


@dataclass
class BankStats:
    """Counters a bank accumulates over a simulation."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    mitigations: int = 0


class Bank:
    """One DRAM bank: open row, next-ready time, PRAC counters.

    The bank does not schedule anything itself; the memory controller
    asks it for state and tells it what happened.  ``ready_at`` is the
    earliest time the next ACT may be issued (enforcing tRC / tRP), and
    ``data_ready_at`` tracks column-command completion.
    """

    def __init__(self, config: DramConfig, bank_id: int) -> None:
        self.config = config
        self.bank_id = bank_id
        self.open_row: Optional[int] = None
        self.ready_at: float = 0.0           # earliest next ACT
        self.precharge_done_at: float = 0.0  # when an in-flight PRE finishes
        self.stats = BankStats()
        # Sparse counter storage: rows never activated hold no entry.
        self.counters: Dict[int, int] = {}
        self.activations_since_rfm: int = 0  # for BAT / ACB-RFM
        # Observers notified on each activation: f(bank, row, count).
        self._act_observers: List[Callable[["Bank", int, int], None]] = []
        # Hot-path caches (identical values; avoids two attribute hops
        # per ACT/PRE through config.timing/organization).
        self._tRC = config.timing.tRC
        self._tRP = config.timing.tRP
        self._rows_per_bank = config.organization.rows_per_bank

    # ------------------------------------------------------------------
    # Observation hooks (mitigation queues, alert logic subscribe here)
    # ------------------------------------------------------------------
    def on_activate(self, callback: Callable[["Bank", int, int], None]) -> None:
        """Register a callback fired after every ACT with the new count."""
        self._act_observers.append(callback)

    # ------------------------------------------------------------------
    # State transitions driven by the controller
    # ------------------------------------------------------------------
    def activate(self, row: int, time: float) -> int:
        """Open ``row`` at ``time``; returns the row's new PRAC count."""
        if not 0 <= row < self._rows_per_bank:
            raise ValueError(f"row {row} out of range for bank {self.bank_id}")
        self.open_row = row
        self.ready_at = time + self._tRC
        self.stats.activations += 1
        self.activations_since_rfm += 1
        count = self.counters.get(row, 0) + 1
        self.counters[row] = count
        for observer in self._act_observers:
            observer(self, row, count)
        return count

    def precharge(self, time: float) -> None:
        """Close the open row (if any)."""
        self.open_row = None
        self.stats.precharges += 1
        self.precharge_done_at = time + self._tRP

    def record_column(self, is_write: bool) -> None:
        """Account one column command in the bank statistics."""
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

    # ------------------------------------------------------------------
    # PRAC counter management
    # ------------------------------------------------------------------
    def counter(self, row: int) -> int:
        """Current PRAC counter value for ``row``."""
        return self.counters.get(row, 0)

    def reset_counter(self, row: int) -> None:
        """Reset one row's counter (done when the row is mitigated)."""
        self.counters.pop(row, None)

    def reset_all_counters(self) -> None:
        """Reset every row counter (tREFW-aligned reset policy)."""
        self.counters.clear()

    def max_counter_row(self) -> Optional[int]:
        """Row with the highest activation count, or None if all zero."""
        if not self.counters:
            return None
        return max(self.counters, key=lambda r: (self.counters[r], -r))

    def mitigate(self, row: int) -> None:
        """Apply RowHammer mitigation to ``row``.

        Models the refresh of the (up to) four neighbouring victim rows
        and the reset of the aggressor's counter.  Victim refreshes have
        no observable timing effect beyond the RFM blocking window that
        the controller already accounts for.
        """
        self.reset_counter(row)
        self.stats.mitigations += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Bank {self.bank_id} open_row={self.open_row} "
            f"acts={self.stats.activations}>"
        )
