"""Refresh machinery: periodic REFab, tREFW counter resets, TREF slots.

DDR5 refreshes every ``tREFI`` (3.9 us), blocking the channel for
``tRFC`` (410 ns).  The paper additionally uses two refresh-adjacent
mechanisms:

* **Counter reset** — PRAC per-row activation counters may be reset at
  every refresh window (tREFW, 32 ms), as proposed by MOAT; TPRAC
  evaluates both with and without this policy (Figure 14).
* **Targeted Refresh (TREF)** — the DRAM may perform extra RowHammer
  mitigations in the slack of refresh operations.  TPRAC co-designs
  with TREF: if a TREF lands inside a TB-Window, the scheduled TB-RFM
  can be skipped (Section 4.3, Figures 12/13).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List

from repro.core.engine import Engine
from repro.dram.config import DramConfig
from repro.dram.rank import Channel
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

#: Refresh-policy registry: ``SystemConfig.refresh`` names resolve
#: here.  Factories are called as
#: ``factory(engine, channel, config, tref_per_trefi=..., **params)``.
REFRESH_POLICIES = Registry("refresh policy", "refresh")


@REFRESH_POLICIES.register("periodic")
class RefreshScheduler:
    """Issues REFab every tREFI and manages TREF/counter-reset hooks."""

    def __init__(
        self,
        engine: Engine,
        channel: Channel,
        config: DramConfig,
        tref_per_trefi: float = 0.0,
    ) -> None:
        """``tref_per_trefi`` — Targeted Refreshes per tREFI.

        The paper sweeps 0 (off), 1/4, 1/3, 1/2 and 1.  A value of 0.25
        means one TREF every four refreshes.
        """
        if tref_per_trefi < 0 or tref_per_trefi > 1:
            raise ValueError("tref_per_trefi must be within [0, 1]")
        self.engine = engine
        self.channel = channel
        self.config = config
        self.tref_per_trefi = tref_per_trefi
        self.refresh_count = 0
        self.tref_count = 0
        self.counter_resets = 0
        # Hooks --------------------------------------------------------
        #: called with the refresh start time whenever a TREF slot fires
        self.on_tref: List[Callable[[float], None]] = []
        #: called at every tREFW boundary (counter reset policy decides)
        self.on_refw: List[Callable[[float], None]] = []
        #: called with the refresh start time at every REFab issue
        self.on_refresh: List[Callable[[float], None]] = []
        self._tref_accumulator = 0.0
        self._started = False

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Count refresh activity in a registry (``metrics=True``).

        Appends counting hooks; a disabled registry installs nothing,
        so the metrics-off path fires no extra callbacks.
        """
        if not metrics.enabled:
            return
        refab = metrics.counter("dram.refab")
        self.on_refresh.append(lambda start: refab.inc())
        tref = metrics.counter("dram.tref")
        self.on_tref.append(lambda start: tref.inc())
        resets = metrics.counter("prac.counter_resets")
        self.on_refw.append(lambda time: resets.inc())

    def start(self) -> None:
        """Arm the periodic refresh; idempotent."""
        if self._started:
            return
        self._started = True
        self.engine.schedule_after(
            self.config.timing.tREFI, self._do_refresh, priority=-2, label="REF"
        )
        self.engine.schedule_after(
            self.config.timing.tREFW, self._do_refw, priority=-3, label="tREFW"
        )

    # ------------------------------------------------------------------
    def _do_refresh(self) -> None:
        timing = self.config.timing
        now = self.engine.now
        # Refresh waits for in-flight transfers (banks must be idle);
        # this mirrors real controllers' refresh scheduling flexibility.
        start = max(now, self.channel.blocked_until, self.channel.bus_free_at)
        self.channel.block(start, timing.tRFC)
        self.refresh_count += 1
        for hook in self.on_refresh:
            hook(start)
        # TREF slots: accumulate fractional rate, fire when it reaches 1.
        self._tref_accumulator += self.tref_per_trefi
        if self._tref_accumulator >= 1.0 - 1e-12:
            self._tref_accumulator -= 1.0
            self.tref_count += 1
            for hook in self.on_tref:
                hook(start)
        self.engine.schedule_after(
            timing.tREFI, self._do_refresh, priority=-2, label="REF"
        )

    def _do_refw(self) -> None:
        now = self.engine.now
        self.counter_resets += 1
        for hook in self.on_refw:
            hook(now)
        self.engine.schedule_after(
            self.config.timing.tREFW, self._do_refw, priority=-3, label="tREFW"
        )


@REFRESH_POLICIES.register("staggered")
class StaggeredRefreshScheduler(RefreshScheduler):
    """Channel-staggered periodic refresh.

    Same tREFI cadence as ``periodic``, but channel ``n`` of an
    ``N``-channel system phase-shifts its first REFab by
    ``n/N x tREFI``, so at no instant is more than one channel blocked
    by tRFC — the multi-channel worst case under ``periodic``, where
    every channel refreshes simultaneously and the whole memory system
    stalls together.  On channel 0 (and therefore on every
    single-channel system) the schedule is identical to ``periodic``.
    """

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        channels = self.config.organization.channels
        phase = self.channel.channel_id / channels * self.config.timing.tREFI
        self.engine.schedule_after(
            self.config.timing.tREFI + phase,
            self._do_refresh,
            priority=-2,
            label="REF",
        )
        self.engine.schedule_after(
            self.config.timing.tREFW + phase,
            self._do_refw,
            priority=-3,
            label="tREFW",
        )


def make_refresh(
    name: str,
    engine: Engine,
    channel: Channel,
    config: DramConfig,
    tref_per_trefi: float = 0.0,
    **params: Any,
) -> RefreshScheduler:
    """Instantiate the refresh policy registered under ``name``.

    Names: see ``REFRESH_POLICIES.available()`` (``periodic``,
    ``staggered``).
    """
    return REFRESH_POLICIES.make(
        name, engine, channel, config, tref_per_trefi=tref_per_trefi, **params
    )
