"""Online DRAM timing-protocol sanitizer.

Where :mod:`repro.dram.timing` re-checks a *recorded* command stream
after the fact, this module validates commands **as the controller
issues them**.  An opt-in :class:`ProtocolChecker` (enabled with
``SystemConfig(sanitize=True)``) observes every traced command from
:meth:`repro.controller.controller.MemoryController._serve` and raises
a structured :class:`ProtocolViolation` — with the offending command
and its recent history — the instant a JEDEC-style constraint breaks,
so the failing stack trace points at the code that issued the bad
command rather than at a post-mortem diff.

Checked invariants:

* per-bank command-time monotonicity (``ORDER``);
* ACT: tRC / tRP / no double-open (``OPEN``) / channel- and bank-level
  blocking windows (``BLOCKED``) / the per-rank four-activate window
  (``tFAW``, ``strict=True`` only: the timing model intentionally does
  not arbitrate per-rank ACT bandwidth, see :class:`ProtocolChecker`);
* PRE: tRAS / tRTP / tWR write recovery;
* RD/WR: row must be open and match (``CLOSED`` / ``ROW``), tRCD, tCCD;
* REF / RFMab: must wait for the channel-blocking window (``BLOCKED``)
  and for in-flight data to drain (``BUS``);
* ABO ordering: at most ``abo_act`` grace activations between Alert and
  the RFM burst (``ABO-ACT``), and the burst's first RFM must start by
  ``alert + tABOACT`` unless blocking/bus drain legitimately delays it
  (``ABO-WINDOW``).

The checker is deliberately *independent* state: it rebuilds bus
occupancy and blocking windows from the command stream alone (fed in
issue order per bank, which the controller guarantees), so a controller
bug cannot corrupt the reference the checker compares against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.dram.commands import Command, CommandKind, RfmProvenance
from repro.dram.config import DramConfig

_EPS = 1e-9
_NEG_INF = float("-inf")

#: JEDEC four-activate window: at most this many ACTs per rank per tFAW.
FAW_ACTS = 4


class ProtocolViolation(Exception):
    """A DRAM protocol rule was broken by an issued command.

    Attributes
    ----------
    constraint:
        Short tag naming the broken rule (``"tRC"``, ``"tFAW"``,
        ``"ABO-WINDOW"``, ...).
    command:
        The offending :class:`~repro.dram.commands.Command`.
    detail:
        Human-readable account of the violated inequality.
    history:
        The most recent commands observed before (and including) the
        offending one, oldest first — enough context to replay the
        failure by hand.
    """

    def __init__(
        self,
        constraint: str,
        command: Command,
        detail: str,
        history: Tuple[Command, ...] = (),
    ) -> None:
        super().__init__(f"[{constraint}] {command!r}: {detail}")
        self.constraint = constraint
        self.command = command
        self.detail = detail
        self.history = history


class _BankState:
    """Per-bank reference state rebuilt from the observed stream."""

    __slots__ = (
        "last_time",
        "last_act",
        "last_pre_done",
        "last_cas",
        "wr_recovery_until",
        "open_row",
        "blocked_until",
    )

    def __init__(self) -> None:
        self.last_time = _NEG_INF      # most recent command on this bank
        self.last_act = _NEG_INF       # ACT issue time
        self.last_pre_done = _NEG_INF  # when the last precharge completed
        self.last_cas = _NEG_INF       # RD/WR issue time
        self.wr_recovery_until = _NEG_INF
        self.open_row: Optional[int] = None
        self.blocked_until = _NEG_INF  # per-bank RFMpb window


class ProtocolChecker:
    """Online validator for the controller's issued command stream.

    Feed commands via :meth:`observe` in the controller's issue order
    (per bank the stream is time-monotonic; channel-wide commands are
    fed when issued, after every already-stamped command).  The default
    ``raise_on_violation=True`` raises :class:`ProtocolViolation` at
    the first broken rule; tests that want to scan a whole stream pass
    ``False`` and read :attr:`violations`.
    """

    def __init__(
        self,
        config: DramConfig,
        raise_on_violation: bool = True,
        history: int = 32,
        strict: bool = False,
    ) -> None:
        self.config = config.validate()
        self.raise_on_violation = raise_on_violation
        #: ``strict=True`` additionally enforces JEDEC rules the timing
        #: model deliberately relaxes — today the per-rank four-activate
        #: window (tFAW).  The controller serves independent banks
        #: without arbitrating a shared command bus, so concurrent
        #: requests can legally (in-model) activate more than four banks
        #: of one rank inside tFAW; the in-controller hook therefore
        #: runs non-strict, and strict mode is for synthetic streams.
        self.strict = strict
        self.violations: List[ProtocolViolation] = []
        org = config.organization
        timing = config.timing
        self._tRC = timing.tRC
        self._tRP = timing.tRP
        self._tRAS = timing.tRAS
        self._tRCD = timing.tRCD
        self._tRTP = timing.tRTP
        self._tCL = timing.tCL
        self._tBL = timing.tBL
        self._tCCD = timing.tCCD
        self._tWR = timing.tWR
        self._tFAW = timing.tFAW
        self._tRFC = timing.tRFC
        self._tRFMab = timing.tRFMab
        self._tRFMpb = timing.tRFMpb
        self._tABOACT = timing.tABOACT
        self._abo_act = config.prac.abo_act
        self._banks_per_rank = org.banks_per_rank
        self._banks = [_BankState() for _ in range(org.banks_per_channel)]
        # Per-rank ACT issue times inside the rolling four-activate
        # window; a fifth ACT within tFAW of the oldest is a violation.
        self._rank_acts: List[Deque[float]] = [
            deque(maxlen=FAW_ACTS) for _ in range(org.ranks)
        ]
        self._blocked_until = _NEG_INF  # channel-wide REF / RFMab window
        self._blocked_by = ""           # which command opened the window
        self._bus_free = _NEG_INF       # reference data-bus occupancy
        self._history: Deque[Command] = deque(maxlen=history)
        # ABO bookkeeping (armed by :meth:`on_alert`).
        self._alert_time: Optional[float] = None
        self._alert_deadline = 0.0
        self._acts_since_alert = 0
        self._skip_next_act = False

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_alert(self, time: float, bank_id: int, row: int) -> None:
        """Device asserted Alert; the triggering ACT is fed right after.

        Wired to ``AboProtocol.on_alert`` by the controller.  The hook
        fires from inside ``Bank.activate`` — i.e. *before* the
        triggering ACT reaches :meth:`observe` — so that ACT must not
        count against the post-Alert grace budget.
        """
        self._alert_time = time
        self._alert_deadline = time + self._tABOACT
        self._acts_since_alert = 0
        self._skip_next_act = True

    # ------------------------------------------------------------------
    # Command stream
    # ------------------------------------------------------------------
    def observe(
        self,
        kind: CommandKind,
        bank_id: int,
        row: int,
        time: float,
        provenance: Optional[RfmProvenance] = None,
    ) -> None:
        """Validate one issued command and fold it into the state."""
        self.observe_command(
            Command(
                kind=kind,
                bank_id=bank_id,
                row=row,
                issue_time=time,
                provenance=provenance,
            )
        )

    def observe_command(self, command: Command) -> None:
        """Validate an already-built :class:`Command` record."""
        self._history.append(command)
        kind = command.kind
        if kind is CommandKind.ACT:
            self._on_act(command)
        elif kind is CommandKind.PRE:
            self._on_pre(command)
        elif kind is CommandKind.RD or kind is CommandKind.WR:
            self._on_cas(command)
        elif kind is CommandKind.REF:
            self._on_channel_block(command, self._tRFC)
        elif kind is CommandKind.RFM_AB:
            self._on_channel_block(command, self._tRFMab)
        elif kind is CommandKind.RFM_PB:
            self._on_rfm_pb(command)
        else:  # pragma: no cover - CommandKind is closed
            raise ValueError(f"unknown command kind {kind!r}")

    @property
    def ok(self) -> bool:
        """True while no violation has been recorded."""
        return not self.violations

    def history(self) -> Tuple[Command, ...]:
        """The retained command window, oldest first."""
        return tuple(self._history)

    # ------------------------------------------------------------------
    def _fail(self, constraint: str, command: Command, detail: str) -> None:
        violation = ProtocolViolation(
            constraint, command, detail, history=self.history()
        )
        self.violations.append(violation)
        if self.raise_on_violation:
            raise violation

    def _check_order(self, state: _BankState, command: Command) -> None:
        if command.issue_time < state.last_time - _EPS:
            self._fail(
                "ORDER",
                command,
                f"bank stream went backwards: previous command at "
                f"{state.last_time:.1f}ns",
            )

    def _check_not_blocked(self, command: Command) -> None:
        if command.issue_time < self._blocked_until - _EPS:
            self._fail(
                "BLOCKED",
                command,
                f"issued inside a {self._blocked_by} window ending at "
                f"{self._blocked_until:.1f}ns",
            )

    # ------------------------------------------------------------------
    def _on_act(self, command: Command) -> None:
        t = command.issue_time
        state = self._banks[command.bank_id]
        self._check_order(state, command)
        self._check_not_blocked(command)
        if t < state.blocked_until - _EPS:
            self._fail(
                "BLOCKED",
                command,
                f"issued inside a per-bank RFMpb window ending at "
                f"{state.blocked_until:.1f}ns",
            )
        if state.open_row is not None:
            self._fail("OPEN", command, f"row {state.open_row} still open")
        if t < state.last_act + self._tRC - _EPS:
            self._fail(
                "tRC",
                command,
                f"only {t - state.last_act:.1f}ns after the previous ACT "
                f"(tRC = {self._tRC})",
            )
        if t < state.last_pre_done - _EPS:
            self._fail(
                "tRP",
                command,
                f"precharge completes at {state.last_pre_done:.1f}ns "
                f"(tRP = {self._tRP})",
            )
        acts = self._rank_acts[command.bank_id // self._banks_per_rank]
        if self.strict and len(acts) == FAW_ACTS and t < acts[0] + self._tFAW - _EPS:
            self._fail(
                "tFAW",
                command,
                f"{FAW_ACTS + 1} ACTs within {t - acts[0]:.1f}ns "
                f"(tFAW = {self._tFAW})",
            )
        acts.append(t)
        if self._alert_time is not None:
            if self._skip_next_act:
                self._skip_next_act = False  # the Alert-triggering ACT
            else:
                self._acts_since_alert += 1
                if self._acts_since_alert > self._abo_act:
                    self._fail(
                        "ABO-ACT",
                        command,
                        f"{self._acts_since_alert} ACTs since the Alert at "
                        f"{self._alert_time:.1f}ns (ABO_ACT = {self._abo_act})",
                    )
        state.last_time = t
        state.last_act = t
        state.open_row = command.row

    def _on_pre(self, command: Command) -> None:
        t = command.issue_time
        state = self._banks[command.bank_id]
        self._check_order(state, command)
        if t < state.last_act + self._tRAS - _EPS:
            self._fail(
                "tRAS",
                command,
                f"only {t - state.last_act:.1f}ns after ACT "
                f"(tRAS = {self._tRAS})",
            )
        if t < state.last_cas + self._tRTP - _EPS:
            self._fail(
                "tRTP",
                command,
                f"only {t - state.last_cas:.1f}ns after CAS "
                f"(tRTP = {self._tRTP})",
            )
        if t < state.wr_recovery_until - _EPS:
            self._fail(
                "tWR",
                command,
                f"write recovery runs until {state.wr_recovery_until:.1f}ns "
                f"(tWR = {self._tWR})",
            )
        state.last_time = t
        state.last_pre_done = t + self._tRP
        state.open_row = None

    def _on_cas(self, command: Command) -> None:
        t = command.issue_time
        state = self._banks[command.bank_id]
        self._check_order(state, command)
        self._check_not_blocked(command)
        if state.open_row is None:
            self._fail("CLOSED", command, "no open row")
        elif command.row >= 0 and command.row != state.open_row:
            self._fail(
                "ROW", command, f"row {command.row} vs open {state.open_row}"
            )
        if t < state.last_act + self._tRCD - _EPS:
            self._fail(
                "tRCD",
                command,
                f"only {t - state.last_act:.1f}ns after ACT "
                f"(tRCD = {self._tRCD})",
            )
        if t < state.last_cas + self._tCCD - _EPS:
            self._fail(
                "tCCD",
                command,
                f"only {t - state.last_cas:.1f}ns after the previous CAS "
                f"(tCCD = {self._tCCD})",
            )
        state.last_time = t
        state.last_cas = t
        # Replicate the shared-bus serialization: the burst starts once
        # both the CAS latency and the bus allow, and occupies tBL.
        data_start = t + self._tCL
        if self._bus_free > data_start:
            data_start = self._bus_free
        data_end = data_start + self._tBL
        self._bus_free = data_end
        if command.kind is CommandKind.WR:
            state.wr_recovery_until = data_end + self._tWR

    def _on_channel_block(self, command: Command, duration: float) -> None:
        t = command.issue_time
        self._check_not_blocked(command)
        if t < self._bus_free - _EPS:
            self._fail(
                "BUS",
                command,
                f"in-flight data occupies the bus until "
                f"{self._bus_free:.1f}ns",
            )
        if (
            command.kind is CommandKind.RFM_AB
            and command.provenance is RfmProvenance.ABO
            and self._alert_time is not None
        ):
            # The burst's first RFM must start by alert + tABOACT unless
            # an already-open blocking window or bus drain delays it.
            allowed = self._alert_deadline
            if self._blocked_until > allowed:
                allowed = self._blocked_until
            if self._bus_free > allowed:
                allowed = self._bus_free
            if t > allowed + _EPS:
                self._fail(
                    "ABO-WINDOW",
                    command,
                    f"RFM at {t:.1f}ns for the Alert at "
                    f"{self._alert_time:.1f}ns missed the deadline "
                    f"{allowed:.1f}ns (tABOACT = {self._tABOACT})",
                )
            self._alert_time = None
            self._acts_since_alert = 0
            self._skip_next_act = False
        # REF / RFMab require all banks precharged: the device closes
        # every open row at the window start.
        for state in self._banks:
            state.last_time = max(state.last_time, t)
            if state.open_row is not None:
                state.open_row = None
                state.last_pre_done = max(state.last_pre_done, t + self._tRP)
        end = t + duration
        if end > self._blocked_until:
            self._blocked_until = end
            self._blocked_by = command.kind.value
        self._bus_free = max(self._bus_free, end)

    def _on_rfm_pb(self, command: Command) -> None:
        t = command.issue_time
        state = self._banks[command.bank_id]
        # No ORDER check: the RFMpb timer may legitimately fire while a
        # just-served CAS/PRE is stamped later than "now" on this bank.
        self._check_not_blocked(command)
        if t < state.blocked_until - _EPS:
            self._fail(
                "BLOCKED",
                command,
                f"issued inside a per-bank RFMpb window ending at "
                f"{state.blocked_until:.1f}ns",
            )
        state.last_time = max(state.last_time, t)
        if state.open_row is not None:
            state.open_row = None
            state.last_pre_done = max(state.last_pre_done, t + self._tRP)
        state.blocked_until = t + self._tRFMpb
