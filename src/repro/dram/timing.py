"""Post-hoc DRAM timing-constraint verification.

The controller computes command times procedurally; this module
re-checks a recorded command stream against the JEDEC-style constraint
set, independently of how the times were produced.  Tests feed real
controller traces through the checker so any scheduling bug that
violates device timing is caught structurally rather than by spot
assertions.

Checked constraints (per bank unless noted):

* ACT -> ACT      >= tRC
* ACT -> PRE      >= tRAS
* PRE -> ACT      >= tRP
* ACT -> RD/WR    >= tRCD
* RD  -> PRE      >= tRTP
* channel blocking: no command may issue inside a REF (tRFC) or
  RFMab (tRFMab) window, and those windows require all banks closed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dram.commands import Command, CommandKind
from repro.dram.config import DramConfig


@dataclass
class TimingViolation:
    """One detected constraint violation."""

    constraint: str
    bank_id: int
    time: float
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.constraint}] bank {self.bank_id} @ {self.time:.1f}ns: {self.detail}"


@dataclass
class _BankTrace:
    last_act: float = float("-inf")
    last_pre: float = float("-inf")
    last_cas: float = float("-inf")
    open_row: Optional[int] = None


class TimingChecker:
    """Validates an ordered command stream against the timing config."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.violations: List[TimingViolation] = []
        self._banks: Dict[int, _BankTrace] = {}
        self._blocked_until = float("-inf")
        self._last_time = float("-inf")

    # ------------------------------------------------------------------
    def check(
        self, commands: List[Command], sort: bool = True
    ) -> List[TimingViolation]:
        """Run all commands through the checker; returns violations.

        Controller logs append commands in *computation* order; banks
        are computed independently, so the stream is sorted by issue
        time first (``sort=False`` checks the raw order).
        """
        if sort:
            commands = sorted(commands, key=lambda c: c.issue_time)
        for command in commands:
            self.feed(command)
        return self.violations

    def feed(self, command: Command) -> None:
        """Check a single command against the accumulated state."""
        if command.issue_time < self._last_time - 1e-9:
            self._fail("ORDER", command, "commands out of time order")
        self._last_time = max(self._last_time, command.issue_time)
        handler = {
            CommandKind.ACT: self._on_act,
            CommandKind.PRE: self._on_pre,
            CommandKind.RD: self._on_cas,
            CommandKind.WR: self._on_cas,
            CommandKind.REF: self._on_block,
            CommandKind.RFM_AB: self._on_block,
            CommandKind.RFM_PB: self._on_rfm_pb,
        }[command.kind]
        handler(command)

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    def _bank(self, bank_id: int) -> _BankTrace:
        return self._banks.setdefault(bank_id, _BankTrace())

    def _fail(self, constraint: str, command: Command, detail: str) -> None:
        self.violations.append(
            TimingViolation(
                constraint=constraint,
                bank_id=command.bank_id,
                time=command.issue_time,
                detail=detail,
            )
        )

    def _check_not_blocked(self, command: Command) -> None:
        if command.issue_time < self._blocked_until - 1e-9:
            self._fail(
                "BLOCKED",
                command,
                f"issued during a channel-blocking window ending at "
                f"{self._blocked_until:.1f}",
            )

    def _on_act(self, command: Command) -> None:
        timing = self.config.timing
        self._check_not_blocked(command)
        bank = self._bank(command.bank_id)
        t = command.issue_time
        if t - bank.last_act < timing.tRC - 1e-9:
            self._fail("tRC", command, f"ACT only {t - bank.last_act:.1f}ns after ACT")
        if bank.open_row is not None:
            self._fail("OPEN", command, "ACT with a row already open")
        if t - bank.last_pre < timing.tRP - 1e-9:
            self._fail("tRP", command, f"ACT only {t - bank.last_pre:.1f}ns after PRE")
        bank.last_act = t
        bank.open_row = command.row

    def _on_pre(self, command: Command) -> None:
        timing = self.config.timing
        bank = self._bank(command.bank_id)
        t = command.issue_time
        if t - bank.last_act < timing.tRAS - 1e-9:
            self._fail("tRAS", command, f"PRE only {t - bank.last_act:.1f}ns after ACT")
        if bank.last_cas > bank.last_act and t - bank.last_cas < timing.tRTP - 1e-9:
            self._fail("tRTP", command, f"PRE only {t - bank.last_cas:.1f}ns after CAS")
        bank.last_pre = t
        bank.open_row = None

    def _on_cas(self, command: Command) -> None:
        timing = self.config.timing
        self._check_not_blocked(command)
        bank = self._bank(command.bank_id)
        t = command.issue_time
        if bank.open_row is None:
            self._fail("CLOSED", command, "CAS with no open row")
        elif command.row >= 0 and command.row != bank.open_row:
            self._fail("ROW", command, f"CAS to row {command.row}, open {bank.open_row}")
        if t - bank.last_act < timing.tRCD - 1e-9:
            self._fail("tRCD", command, f"CAS only {t - bank.last_act:.1f}ns after ACT")
        bank.last_cas = t

    def _on_block(self, command: Command) -> None:
        timing = self.config.timing
        self._check_not_blocked(command)
        duration = (
            timing.tRFC if command.kind is CommandKind.REF else timing.tRFMab
        )
        for bank in self._banks.values():
            bank.open_row = None
            bank.last_pre = max(bank.last_pre, command.issue_time)
        self._blocked_until = command.issue_time + duration

    def _on_rfm_pb(self, command: Command) -> None:
        timing = self.config.timing
        bank = self._bank(command.bank_id)
        bank.open_row = None
        bank.last_pre = max(bank.last_pre, command.issue_time + timing.tRFMpb)
