"""Figure 5: key-byte sweep of the AES side channel (no defense).

(a) victim activations per DRAM row after 200 encryptions, as the
secret key byte k0 varies — the hot row tracks k0's top nibble;
(b) the attacker activations on the row that triggers the first ABO —
victim + attacker activations sum to exactly N_BO, and the row index
leaks the key nibble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.attacks.side_channel import AesSideChannelAttack, SideChannelResult
from repro.experiments.registry import ArtifactSpec


@dataclass
class Fig5Result:
    results: List[SideChannelResult]

    @property
    def recovery_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.success) / len(self.results)

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = ["k0    true  hot-row(victim)  trigger-row  atk-acts  ok"]
        for r in self.results:
            hot = (
                min(r.victim_histogram, key=lambda k: (-r.victim_histogram[k], k))
                if r.victim_histogram
                else -1
            )
            lines.append(
                f"{r.fixed_plaintext ^ (r.true_nibble << 4):<5d} "
                f"{r.true_nibble:4d}  {hot:15d}  "
                f"{r.trigger_row if r.trigger_row is not None else -1:11d}  "
                f"{r.attacker_acts_on_trigger:8d}  {'Y' if r.success else 'n'}"
            )
        lines.append(f"recovery rate: {self.recovery_rate:.2f}")
        return "\n".join(lines)


def run(
    key_values: Optional[Sequence[int]] = None,
    nbo: int = 256,
    encryptions: int = 200,
    defense: Optional[str] = None,
) -> Fig5Result:
    """Sweep k0 (default: one value per nibble bucket, 0..240)."""
    key_values = list(key_values if key_values is not None else range(0, 256, 16))
    attack = AesSideChannelAttack(
        bytes(16),
        nbo=nbo,
        prac_level=1,
        encryptions=encryptions,
        defense=defense,
    )
    return Fig5Result(
        results=attack.run_key_sweep(target_byte=0, key_values=key_values)
    )


ARTIFACT = ArtifactSpec(
    name="fig5",
    artifact="Figure 5",
    title="Key-byte sweep: victim histograms + trigger rows",
    module="repro.experiments.fig5_key_sweep",
    quick=dict(key_values=(0, 96, 224), encryptions=120),
)
