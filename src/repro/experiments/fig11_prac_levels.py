"""Figure 11: sensitivity to the PRAC level (RFMs per ABO).

Since both TPRAC (via TB-RFMs) and ABO+ACB-RFM (via BAT) eliminate all
ABO-RFMs, the PRAC level never materializes as extra blocking time —
performance is flat across PRAC-1/2/4 for every design (ABO-Only is
flat too, because benign workloads rarely alert at N_RH=1024).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.experiments.common import (
    DesignPoint,
    PerfRow,
    default_workloads,
    geomean_normalized,
    run_perf_matrix,
)
from repro.experiments.registry import ArtifactSpec


@dataclass
class Fig11Result:
    #: prac_level -> design label -> rows
    by_level: Dict[int, Dict[str, List[PerfRow]]]

    def geomean(self, prac_level: int, design: str) -> float:
        """Geometric-mean normalized performance for the given design point."""
        matrix = self.by_level[prac_level]
        label = next(key for key in matrix if key.startswith(design))
        return geomean_normalized(matrix[label])

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        designs = ["abo_only", "abo_acb", "tprac"]
        lines = ["PRAC-level" + "".join(d.rjust(12) for d in designs)]
        for level, matrix in sorted(self.by_level.items()):
            cells = [self.geomean(level, d) for d in designs]
            lines.append(
                f"PRAC-{level}    " + "".join(f"{c:12.4f}" for c in cells)
            )
        return "\n".join(lines)


def run(
    nrh: int = 1024,
    prac_levels: Sequence[int] = (1, 2, 4),
    workloads: Optional[Sequence[str]] = None,
    requests_per_core: Optional[int] = None,
    system: Optional[SystemConfig] = None,
) -> Fig11Result:
    """Run the experiment at the configured scale; returns the result object."""
    workloads = workloads or default_workloads(limit=6)
    by_level = {}
    for level in prac_levels:
        designs = [
            DesignPoint(design="abo_only", nrh=nrh, prac_level=level),
            DesignPoint(design="abo_acb", nrh=nrh, prac_level=level),
            DesignPoint(design="tprac", nrh=nrh, prac_level=level),
        ]
        by_level[level] = run_perf_matrix(
            designs,
            workloads=workloads,
            requests_per_core=requests_per_core,
            system=system,
        )
    return Fig11Result(by_level=by_level)


ARTIFACT = ArtifactSpec(
    name="fig11",
    artifact="Figure 11",
    title="PRAC-level sensitivity (1/2/4 RFMs per ABO)",
    module="repro.experiments.fig11_prac_levels",
    quick=dict(workloads=("433.milc", "453.povray"), requests_per_core=600),
)
