"""Experiment harnesses: one module per paper table/figure.

Every harness exposes a ``run(...)`` function returning a plain-data
result object with a ``format_table()`` method that prints the same
rows/series the paper reports, so the benchmark suite and the examples
can share them.  Scale knobs (encryptions, requests per core, workload
subsets) default to laptop-friendly values; pass ``full=True`` (or the
REPRO_FULL=1 environment variable) for the paper-scale versions.

Index (see DESIGN.md for the experiment table):

===========  =======================================================
fig3         ABO-induced latency timelines (1/2/4 RFMs per ABO)
table2       Covert-channel period and bitrate vs N_BO
fig4         AES side-channel attack timeline (p0=0, k0=0)
fig5         Key-byte sweep: victim histograms + trigger rows
fig7         Feinting TMAX vs TB-Window (with/without counter reset)
fig8         Executable walkthrough of the single-entry queue defense
fig9         Fig 5 with and without the TPRAC defense
fig10        Normalized performance at N_RH=1024, three designs
fig11        PRAC-level sensitivity (1/2/4 RFMs per ABO)
fig12        Targeted-Refresh rate sensitivity
fig13        N_RH sweep 128..4096
fig14        Counter-reset policy sensitivity
table5       Energy overhead split per N_RH
obfuscation  Section 7.1 random-RFM defense trade-off
scorecard    all headline claims graded paper-vs-measured
registry     declarative artifact registry (each module's ARTIFACT)
runner       parallel/cached suite runner, persists JSON results
===========  =======================================================

Every harness module exports an ``ARTIFACT``
:class:`~repro.experiments.registry.ArtifactSpec` so the suite runner
and CLI discover it automatically — new modules with a ``run()`` but
no spec fail discovery loudly instead of silently dropping out.
"""

from repro.experiments import common

__all__ = ["common"]
