"""Figure 3: memory-access latency seen by an attacker during an ABO.

A victim hammers a row pair to the Back-Off threshold while an attacker
probes a different bank.  With 1/2/4 RFMs per ABO the attacker's
latency spikes to roughly tRFMab / 2*tRFMab / 4*tRFMab above baseline
(the paper reports 545/976/1669 ns mean spike latencies); without a
concurrent ABO the latency trace stays flat apart from refresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.attacks.probes import LatencyProbe, RowHammerSender, is_rfm_spike
from repro.controller.controller import MemoryController
from repro.core.engine import Engine
from repro.dram.config import DramConfig, ddr5_8000b
from repro.mitigations import make_policy
from repro.experiments.registry import ArtifactSpec


@dataclass
class LatencyTimeline:
    """One trace of (time, latency) pairs plus derived spike stats."""

    label: str
    times: List[float]
    latencies: List[float]
    abo_count: int

    def spike_latencies(self, threshold_ns: float = 250.0) -> List[float]:
        """Latencies above the threshold (raw, unclassified)."""
        return [lat for lat in self.latencies if lat > threshold_ns]

    def mean_spike_latency(self, config: Optional[DramConfig] = None) -> float:
        """Mean latency of RFM-attributable spikes (paper's 545/976/1669)."""
        config = config or ddr5_8000b()
        normal = sorted(lat for lat in self.latencies if lat <= 250.0)
        baseline = normal[len(normal) // 2] if normal else 0.0
        spikes = [
            lat
            for t, lat in zip(self.times, self.latencies)
            if is_rfm_spike(lat, t, config.timing, baseline_ns=baseline)
        ]
        if not spikes:
            return 0.0
        return sum(spikes) / len(spikes)

    @property
    def baseline_latency(self) -> float:
        normal = [lat for lat in self.latencies if lat <= 250.0]
        return sum(normal) / len(normal) if normal else 0.0


@dataclass
class Fig3Result:
    timelines: Dict[str, LatencyTimeline]

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = ["config          ABOs  baseline(ns)  spike-mean(ns)"]
        for label, timeline in self.timelines.items():
            lines.append(
                f"{label:15s} {timeline.abo_count:4d}  "
                f"{timeline.baseline_latency:12.0f}  "
                f"{timeline.mean_spike_latency():14.0f}"
            )
        return "\n".join(lines)


def run(
    nbo: int = 256,
    hammer_rounds: int = 4,
    prac_levels: tuple = (1, 2, 4),
    duration_ns: float = 400_000.0,
) -> Fig3Result:
    """Reproduce Figure 3's four panels (no-ABO plus 1/2/4 RFMs/ABO)."""
    timelines: Dict[str, LatencyTimeline] = {}
    for level in prac_levels:
        timelines[f"{level} RFM/ABO"] = _one_timeline(
            nbo=nbo,
            prac_level=level,
            hammer_rounds=hammer_rounds,
            duration_ns=duration_ns,
            victim_active=True,
        )
    timelines["No ABO"] = _one_timeline(
        nbo=nbo,
        prac_level=1,
        hammer_rounds=0,
        duration_ns=duration_ns,
        victim_active=False,
    )
    return Fig3Result(timelines=timelines)


def _one_timeline(
    nbo: int,
    prac_level: int,
    hammer_rounds: int,
    duration_ns: float,
    victim_active: bool,
) -> LatencyTimeline:
    config = ddr5_8000b().with_prac(nbo=nbo, prac_level=prac_level, abo_act=0)
    engine = Engine()
    controller = MemoryController(
        engine, config, policy=make_policy("abo_only"), record_samples=False
    )
    probe = LatencyProbe(controller, bank=4, mode="same_row", core_id=1)
    probe.start()
    if victim_active:
        sender = RowHammerSender(controller, bank=0, core_id=0)
        spacing = duration_ns / max(1, hammer_rounds)
        for round_index in range(hammer_rounds):
            row = 2 * round_index
            engine.schedule(
                round_index * spacing + 1000.0,
                lambda r=row: sender.hammer(r, target_acts=nbo, decoy_row=r + 1),
            )
    engine.run(until=duration_ns)
    probe.stop()
    return LatencyTimeline(
        label=f"{prac_level} RFM/ABO" if victim_active else "No ABO",
        times=probe.result.times,
        latencies=probe.result.latencies,
        abo_count=controller.abo.alert_count,
    )


ARTIFACT = ArtifactSpec(
    name="fig3",
    artifact="Figure 3",
    title="ABO-induced latency timelines (1/2/4 RFMs per ABO)",
    module="repro.experiments.fig3_latency",
    quick=dict(nbo=256, hammer_rounds=2, duration_ns=200_000.0),
)
