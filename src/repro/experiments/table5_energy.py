"""Table 5: TPRAC energy overhead vs N_RH.

Two overhead components, both relative to the no-mitigation baseline:
the mitigation energy (five extra activations per bank per RFM: four
victim refreshes + one counter-reset write) and the non-mitigation
energy (longer execution burns more background power).  Paper totals:
44.3/26.1/10.4/7.4/2.6/1.0 % at N_RH 128..4096.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.energy import EnergyModel, EnergyOverhead
from repro.config import SystemConfig
from repro.experiments.common import (
    DesignPoint,
    build_system,
    default_workloads,
)
from repro.workloads.synthetic import homogeneous_traces
from repro.experiments.registry import ArtifactSpec


@dataclass
class Table5Result:
    #: nrh -> averaged overhead
    by_nrh: Dict[int, EnergyOverhead]

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = ["N_RH    mitigation%   non-mitigation%   total%"]
        for nrh in sorted(self.by_nrh):
            o = self.by_nrh[nrh]
            lines.append(
                f"{nrh:<8d}{o.mitigation_pct:10.2f}   {o.non_mitigation_pct:15.2f}"
                f"   {o.total_pct:6.2f}"
            )
        return "\n".join(lines)


def run(
    nrh_values: Sequence[int] = (128, 256, 512, 1024, 2048, 4096),
    workloads: Optional[Sequence[str]] = None,
    requests_per_core: Optional[int] = None,
    system: Optional[SystemConfig] = None,
) -> Table5Result:
    """Run the experiment at the configured scale; returns the result object."""
    workloads = list(workloads or default_workloads(limit=4))
    requests = requests_per_core or 2_000
    model = EnergyModel()
    by_nrh: Dict[int, EnergyOverhead] = {}
    for nrh in nrh_values:
        mitigation_pcts: List[float] = []
        non_mitigation_pcts: List[float] = []
        for name in workloads:
            traces = homogeneous_traces(name, cores=4, num_accesses=requests)
            base_sys = build_system(
                DesignPoint(design="none", nrh=nrh), traces, system=system
            )
            base_sys.run()
            base_energy = model.from_memory_system(base_sys.memory)
            tprac_sys = build_system(
                DesignPoint(design="tprac", nrh=nrh), traces, system=system
            )
            tprac_sys.run()
            tprac_energy = model.from_memory_system(tprac_sys.memory)
            overhead = tprac_energy.overhead_vs(base_energy)
            mitigation_pcts.append(overhead.mitigation_pct)
            non_mitigation_pcts.append(overhead.non_mitigation_pct)
        by_nrh[nrh] = EnergyOverhead(
            mitigation_pct=sum(mitigation_pcts) / len(mitigation_pcts),
            non_mitigation_pct=sum(non_mitigation_pcts) / len(non_mitigation_pcts),
        )
    return Table5Result(by_nrh=by_nrh)


ARTIFACT = ArtifactSpec(
    name="table5",
    artifact="Table 5",
    title="Energy overhead split per N_RH",
    module="repro.experiments.table5_energy",
    quick=dict(
        nrh_values=(256, 1024, 4096),
        workloads=("433.milc", "453.povray"),
        requests_per_core=600,
    ),
)
