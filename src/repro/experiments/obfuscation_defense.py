"""Section 7.1: the obfuscation (random-RFM) defense, empirically.

Runs the activity-based covert channel against three configurations —
undefended, random injection, and TPRAC — and reports the channel's
error rate alongside the analytical distinguishability bound.  The
paper's point: injection degrades the naive channel but leaves a
statistical residue, while TPRAC removes the activity dependence
entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.analysis.obfuscation_analysis import ObfuscationLeakage, analyze
from repro.attacks.covert import ActivityChannel
from repro.attacks.probes import LatencyProbe, RowHammerSender, is_rfm_spike
from repro.controller.controller import MemoryController
from repro.core.engine import Engine
from repro.dram.config import ddr5_8000b
from repro.mitigations import make_policy
from repro.analysis.tb_window import required_tb_window
from repro.experiments.registry import ArtifactSpec


@dataclass
class DefenseOutcome:
    defense: str
    error_rate: float
    rfms_observed: int


@dataclass
class ObfuscationResult:
    outcomes: List[DefenseOutcome]
    analytical: ObfuscationLeakage

    def outcome(self, defense: str) -> DefenseOutcome:
        """Look up the outcome for one defense name."""
        for candidate in self.outcomes:
            if candidate.defense == defense:
                return candidate
        raise KeyError(defense)

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = ["defense       channel-error   RFMs-observed"]
        for o in self.outcomes:
            lines.append(
                f"{o.defense:12s}  {o.error_rate:13.3f}   {o.rfms_observed:13d}"
            )
        lines.append(
            f"analytical residual distinguishability at p=0.5: "
            f"TV={self.analytical.total_variation:.3f}, "
            f"optimal accuracy={self.analytical.classifier_accuracy:.3f}"
        )
        return "\n".join(lines)


def run(
    nbo: int = 256,
    bits: int = 12,
    inject_prob: float = 0.5,
    seed: int = 21,
) -> ObfuscationResult:
    """Run the experiment at the configured scale; returns the result object."""
    rng = random.Random(seed)
    message = [rng.randrange(2) for _ in range(bits)]
    outcomes = [
        _channel_against(message, nbo, "none", inject_prob),
        _channel_against(message, nbo, "obfuscation", inject_prob),
        _channel_against(message, nbo, "tprac", inject_prob),
    ]
    windows_per_decision = max(
        1, int(ActivityChannel(nbo=nbo, message=[0]).window_ns
               // ddr5_8000b().timing.tREFI)
    )
    return ObfuscationResult(
        outcomes=outcomes,
        analytical=analyze(
            windows=windows_per_decision, inject_prob=inject_prob, signal_rfms=1
        ),
    )


def _channel_against(
    message: List[int], nbo: int, defense: str, inject_prob: float
) -> DefenseOutcome:
    """Run the activity channel against one defense configuration."""
    channel = ActivityChannel(nbo=nbo, message=message)
    config = channel.config
    engine = Engine()
    if defense == "none":
        policy = make_policy("abo_only")
    elif defense == "obfuscation":
        policy = make_policy("obfuscation", inject_prob=inject_prob, seed=5)
    elif defense == "tprac":
        tb_window = required_tb_window(config, nbo, with_reset=True)
        policy = make_policy("tprac", tb_window=tb_window)
    else:
        raise ValueError(defense)
    controller = MemoryController(engine, config, policy=policy, record_samples=False)
    sender = RowHammerSender(controller, bank=0, core_id=0)
    probe = LatencyProbe(controller, bank=4, mode="same_row", core_id=1)
    probe.start()
    for index, bit in enumerate(message):
        if bit:
            engine.schedule(
                index * channel.window_ns,
                lambda r=2 * index: sender.hammer(
                    r, target_acts=nbo, decoy_row=r + 1
                ),
            )
    engine.run(until=(len(message) + 1) * channel.window_ns)
    probe.stop()

    timing = config.timing
    rfm_times = [
        t
        for t, lat in zip(probe.result.times, probe.result.latencies)
        if is_rfm_spike(lat, t, timing, channel.spike_threshold_ns)
    ]
    decoded = []
    for index in range(len(message)):
        lo = index * channel.window_ns
        hi = lo + channel.window_ns
        decoded.append(1 if any(lo <= t < hi for t in rfm_times) else 0)
    errors = sum(1 for s, r in zip(message, decoded) if s != r)
    return DefenseOutcome(
        defense=defense,
        error_rate=errors / len(message),
        rfms_observed=len(rfm_times),
    )


ARTIFACT = ArtifactSpec(
    name="obfuscation",
    artifact="Section 7.1",
    title="Random-RFM obfuscation defense trade-off",
    module="repro.experiments.obfuscation_defense",
    quick=dict(bits=10),
)
