"""Figure 13: performance vs RowHammer threshold (N_RH = 128..4096).

The TB-Window scales with N_BO (lower thresholds need more frequent
TB-RFMs), so TPRAC's slowdown rises as N_RH drops: the paper reports
0.6/1.6/3.4/6.5/14.1/22.6% at 4096/2048/1024/512/256/128.  ABO+ACB-RFM
tracks the same trend with lower overhead but remains leaky; ABO-Only
stays near zero everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.experiments.common import (
    DesignPoint,
    PerfRow,
    default_workloads,
    geomean_normalized,
    run_perf_matrix,
)
from repro.experiments.registry import ArtifactSpec


@dataclass
class Fig13Result:
    #: nrh -> design label -> rows
    by_nrh: Dict[int, Dict[str, List[PerfRow]]]

    def geomean(self, nrh: int, design: str) -> float:
        """Geometric-mean normalized performance for the given design point."""
        matrix = self.by_nrh[nrh]
        label = next(key for key in matrix if key.startswith(design))
        return geomean_normalized(matrix[label])

    def slowdown_pct(self, nrh: int, design: str) -> float:
        """Geomean slowdown in percent: 100 * (1 - normalized)."""
        return (1.0 - self.geomean(nrh, design)) * 100.0

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        designs = ["abo_only", "abo_acb", "tprac"]
        lines = ["N_RH    " + "".join(d.rjust(12) for d in designs)]
        for nrh in sorted(self.by_nrh):
            cells = [self.geomean(nrh, d) for d in designs]
            lines.append(f"{nrh:<8d}" + "".join(f"{c:12.4f}" for c in cells))
        return "\n".join(lines)


def run(
    nrh_values: Sequence[int] = (128, 256, 512, 1024, 2048, 4096),
    workloads: Optional[Sequence[str]] = None,
    requests_per_core: Optional[int] = None,
    tref_per_trefi: float = 0.0,
    system: Optional[SystemConfig] = None,
) -> Fig13Result:
    """Run the experiment at the configured scale; returns the result object."""
    workloads = workloads or default_workloads(limit=6)
    by_nrh: Dict[int, Dict[str, List[PerfRow]]] = {}
    for nrh in nrh_values:
        designs = [
            DesignPoint(design="abo_only", nrh=nrh),
            DesignPoint(design="abo_acb", nrh=nrh),
            DesignPoint(design="tprac", nrh=nrh, tref_per_trefi=tref_per_trefi),
        ]
        by_nrh[nrh] = run_perf_matrix(
            designs,
            workloads=workloads,
            requests_per_core=requests_per_core,
            system=system,
        )
    return Fig13Result(by_nrh=by_nrh)


ARTIFACT = ArtifactSpec(
    name="fig13",
    artifact="Figure 13",
    title="N_RH sweep 128..4096, all designs",
    module="repro.experiments.fig13_nrh",
    quick=dict(
        nrh_values=(256, 1024, 4096),
        workloads=("433.milc", "453.povray"),
        requests_per_core=600,
    ),
)
