"""Reproduction scorecard: every paper claim, checked programmatically.

Runs quick-scale versions of all experiments and grades each of the
paper's headline claims as reproduced / not. The grading criteria are
*shape* criteria (orderings, factors, exact analytical values where the
artifact is analytical), matching EXPERIMENTS.md.

Usage::

    from repro.experiments.scorecard import run
    card = run()
    print(card.format_table())
    assert card.all_passed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List
from repro.experiments.registry import ArtifactSpec


@dataclass
class Check:
    """One graded claim."""

    claim: str
    paper: str
    measured: str
    passed: bool


@dataclass
class Scorecard:
    checks: List[Check] = field(default_factory=list)

    def add(self, claim: str, paper: str, measured: str, passed: bool) -> None:
        """Append one graded claim to the scorecard."""
        self.checks.append(
            Check(claim=claim, paper=paper, measured=measured, passed=passed)
        )

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def pass_count(self) -> int:
        return sum(1 for check in self.checks if check.passed)

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        width = max(len(check.claim) for check in self.checks) if self.checks else 10
        lines = [
            f"{'claim':<{width}}  {'paper':>22}  {'measured':>22}  ok",
            "-" * (width + 52),
        ]
        for check in self.checks:
            lines.append(
                f"{check.claim:<{width}}  {check.paper:>22}  "
                f"{check.measured:>22}  {'PASS' if check.passed else 'FAIL'}"
            )
        lines.append(
            f"{self.pass_count}/{len(self.checks)} claims reproduced"
        )
        return "\n".join(lines)


def run(include_perf: bool = True) -> Scorecard:
    """Run all quick checks; ``include_perf=False`` skips the slow ones."""
    card = Scorecard()
    _check_fig7(card)
    _check_storage(card)
    _check_covert(card)
    _check_side_channel(card)
    _check_defense(card)
    if include_perf:
        _check_performance(card)
    return card


# ----------------------------------------------------------------------
def _check_fig7(card: Scorecard) -> None:
    from repro.experiments import fig7_security

    result = fig7_security.run()
    measured = (
        result.tmax(1.0, True),
        result.tmax(1.0, False),
    )
    card.add(
        "Fig7: TMAX @1 tREFI (reset/no-reset)",
        "572 / 736",
        f"{measured[0]} / {measured[1]}",
        measured == (572, 736),
    )
    from repro.analysis.tb_window import tb_window_for_nrh

    choice = tb_window_for_nrh(1024)
    card.add(
        "TB-Window @N_RH=1024",
        "~1.6 tREFI",
        f"{choice.tb_window_trefi:.2f} tREFI",
        1.3 < choice.tb_window_trefi < 2.1,
    )


def _check_storage(card: Scorecard) -> None:
    from repro.analysis.storage import storage_overhead_bits

    overhead = storage_overhead_bits()
    card.add(
        "Interval register size",
        "24 bits (3 B)",
        f"{overhead.interval_register_bits} bits",
        overhead.interval_register_bits <= 28,
    )


def _check_covert(card: Scorecard) -> None:
    from repro.attacks.covert import ActivationCountChannel, ActivityChannel

    activity = ActivityChannel(nbo=256, message=[1, 0, 1, 0, 1, 1]).run()
    count = ActivationCountChannel(nbo=256, values=[3, 200, 77]).run()
    card.add(
        "Covert channels error-free",
        "< 0.1%",
        f"{max(activity.error_rate, count.error_rate):.3f}",
        activity.error_rate == 0.0 and count.error_rate == 0.0,
    )
    card.add(
        "Count channel beats activity channel",
        "123.6 vs 41.4 Kbps (3x)",
        f"{count.bitrate_kbps:.0f} vs {activity.bitrate_kbps:.0f} Kbps",
        count.bitrate_kbps > 2 * activity.bitrate_kbps,
    )


def _check_side_channel(card: Scorecard) -> None:
    from repro.attacks.side_channel import AesSideChannelAttack

    attack = AesSideChannelAttack(
        bytes.fromhex("9c2a000000000000000000000000000f"),
        nbo=256,
        encryptions=180,
    )
    results = [attack.run_single(i, 0) for i in (0, 1)]
    card.add(
        "AES key nibbles leak in <200 encryptions",
        "4 bits/byte",
        f"{sum(r.success for r in results)}/2 bytes",
        all(r.success for r in results),
    )


def _check_defense(card: Scorecard) -> None:
    from repro.attacks.feinting_sim import FeintingAttack

    feinting = FeintingAttack(pool_size=16, nbo=200).run()
    card.add(
        "TPRAC holds under executed Feinting",
        "0 ABO-RFMs",
        f"{feinting.alerts} alerts, peak {feinting.target_peak}",
        feinting.defense_held and feinting.within_bound,
    )

    from repro.experiments import fig9_defense

    fig9 = fig9_defense.run(key_values=[0, 128], encryptions=120)
    card.add(
        "TPRAC blocks the AES side channel",
        "random trigger row",
        f"leak rate {fig9.leak_rate_defended:.2f} (undefended "
        f"{fig9.leak_rate_undefended:.2f})",
        fig9.leak_rate_undefended == 1.0 and fig9.leak_rate_defended < 1.0,
    )


def _check_performance(card: Scorecard) -> None:
    from repro.experiments import fig10_performance

    result = fig10_performance.run(
        workloads=["433.milc", "470.lbm", "401.bzip2", "453.povray"],
        requests_per_core=1500,
    )
    tprac_slowdown = result.slowdown_pct("tprac@1024")
    abo_slowdown = result.slowdown_pct("abo_only@1024")
    card.add(
        "TPRAC slowdown @N_RH=1024",
        "3.4% (up to 8.3%)",
        f"{tprac_slowdown:.1f}%",
        0.5 <= tprac_slowdown <= 9.0,
    )
    card.add(
        "ABO-Only near-zero overhead",
        "~0%",
        f"{abo_slowdown:.2f}%",
        abo_slowdown < 1.0,
    )


ARTIFACT = ArtifactSpec(
    name="scorecard",
    artifact="Scorecard",
    title="All headline claims graded paper-vs-measured",
    module="repro.experiments.scorecard",
    quick=dict(include_perf=False),
)
