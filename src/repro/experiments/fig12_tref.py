"""Figure 12: sensitivity to the Targeted-Refresh (TREF) rate.

TPRAC can skip a TB-RFM whenever a TREF lands in the same window
(Section 4.3): more frequent TREFs -> fewer channel-blocking RFMs ->
less slowdown.  The paper reports 3.4% (no TREF), 2.4%/2.0%/1.4% with
one TREF per 4/3/2 tREFI, and ~0% at one TREF per tREFI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.experiments.common import (
    DesignPoint,
    PerfRow,
    default_workloads,
    geomean_normalized,
    run_perf_matrix,
)
from repro.experiments.registry import ArtifactSpec


@dataclass
class Fig12Result:
    #: tref_per_trefi -> rows
    by_rate: Dict[float, List[PerfRow]]

    def geomean(self, rate: float) -> float:
        """Geometric-mean normalized performance for the given design point."""
        return geomean_normalized(self.by_rate[rate])

    def slowdown_pct(self, rate: float) -> float:
        """Geomean slowdown in percent: 100 * (1 - normalized)."""
        return (1.0 - self.geomean(rate)) * 100.0

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = ["TREF rate (per tREFI)   normalized   slowdown%"]
        for rate in sorted(self.by_rate):
            lines.append(
                f"{rate:21.3f}   {self.geomean(rate):10.4f}   "
                f"{self.slowdown_pct(rate):8.2f}"
            )
        return "\n".join(lines)


def run(
    nrh: int = 1024,
    tref_rates: Sequence[float] = (0.0, 0.25, 1 / 3, 0.5, 1.0),
    workloads: Optional[Sequence[str]] = None,
    requests_per_core: Optional[int] = None,
    system: Optional[SystemConfig] = None,
) -> Fig12Result:
    """Run the experiment at the configured scale; returns the result object."""
    workloads = workloads or default_workloads(limit=6)
    by_rate: Dict[float, List[PerfRow]] = {}
    for rate in tref_rates:
        point = DesignPoint(design="tprac", nrh=nrh, tref_per_trefi=rate)
        matrix = run_perf_matrix(
            [point],
            workloads=workloads,
            requests_per_core=requests_per_core,
            system=system,
        )
        by_rate[rate] = matrix[point.label()]
    return Fig12Result(by_rate=by_rate)


ARTIFACT = ArtifactSpec(
    name="fig12",
    artifact="Figure 12",
    title="Targeted-Refresh rate sensitivity",
    module="repro.experiments.fig12_tref",
    quick=dict(
        tref_rates=(0.0, 0.5, 1.0),
        workloads=("433.milc", "453.povray"),
        requests_per_core=600,
    ),
)
