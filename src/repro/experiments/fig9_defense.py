"""Figure 9: the AES side channel with and without the TPRAC defense.

Without TPRAC, the row triggering the attacker's first observed RFM
correlates perfectly with the secret key nibble.  With TPRAC, every
observed RFM is a Timing-Based RFM whose position in the probe loop is
a function of wall-clock time only, so the "trigger row" carries no key
information and no ABO ever fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.fig5_key_sweep import Fig5Result
from repro.experiments import fig5_key_sweep
from repro.experiments.registry import ArtifactSpec


@dataclass
class Fig9Result:
    without_defense: Fig5Result
    with_defense: Fig5Result

    @property
    def leak_rate_undefended(self) -> float:
        return self.without_defense.recovery_rate

    @property
    def leak_rate_defended(self) -> float:
        return self.with_defense.recovery_rate

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = [
            "                      recovery-rate",
            f"without defense    :  {self.leak_rate_undefended:.2f}",
            f"with TPRAC         :  {self.leak_rate_defended:.2f}",
        ]
        return "\n".join(lines)


def run(
    key_values: Optional[Sequence[int]] = None,
    nbo: int = 256,
    encryptions: int = 200,
) -> Fig9Result:
    """Run the experiment at the configured scale; returns the result object."""
    key_values = list(key_values if key_values is not None else range(0, 256, 32))
    return Fig9Result(
        without_defense=fig5_key_sweep.run(
            key_values=key_values, nbo=nbo, encryptions=encryptions, defense=None
        ),
        with_defense=fig5_key_sweep.run(
            key_values=key_values, nbo=nbo, encryptions=encryptions, defense="tprac"
        ),
    )


ARTIFACT = ArtifactSpec(
    name="fig9",
    artifact="Figure 9",
    title="Side-channel key sweep with and without the TPRAC defense",
    module="repro.experiments.fig9_defense",
    quick=dict(key_values=(0, 224), encryptions=80),
)
