"""Table 2: covert-channel transmission period and bitrate vs N_BO.

Paper values (cross-process, 4 RFMs/ABO):

=====================  =====  ============  =========
channel                N_BO   period (us)   Kbps
=====================  =====  ============  =========
Activity-Based          256      24.1          41.4
Activity-Based          512      46.7          21.4
Activity-Based         1024      91.8          10.9
Activation-Count        256      64.7         123.6
Activation-Count        512     128.0          70.3
Activation-Count       1024     257.6          38.8
=====================  =====  ============  =========

Our dependent-chain attacker activates at the data-return+tRP cadence
(70 ns) rather than tRC, so absolute periods run ~1.5x longer; the
scaling with N_BO and the count-channel's bitrate advantage match.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.attacks.covert import (
    ActivationCountChannel,
    ActivityChannel,
    CovertChannelResult,
)
from repro.experiments.registry import ArtifactSpec


@dataclass
class Table2Row:
    channel: str
    nbo: int
    period_us: float
    bitrate_kbps: float
    error_rate: float


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = ["channel                 N_BO   period(us)   Kbps    err"]
        for row in self.rows:
            lines.append(
                f"{row.channel:22s} {row.nbo:5d}   {row.period_us:9.1f}  "
                f"{row.bitrate_kbps:6.1f}  {row.error_rate:5.3f}"
            )
        return "\n".join(lines)

    def row(self, channel: str, nbo: int) -> Table2Row:
        """Look up one (channel, N_BO) row; raises KeyError if absent."""
        for candidate in self.rows:
            if candidate.channel == channel and candidate.nbo == nbo:
                return candidate
        raise KeyError((channel, nbo))


def run(
    nbo_values: Sequence[int] = (256, 512, 1024),
    activity_bits: int = 16,
    count_symbols: int = 8,
    seed: int = 5,
) -> Table2Result:
    """Run both channels at each N_BO; return measured period/bitrate."""
    rng = random.Random(seed)
    rows: List[Table2Row] = []
    for nbo in nbo_values:
        message = [rng.randrange(2) for _ in range(activity_bits)]
        result = ActivityChannel(nbo=nbo, message=message).run()
        rows.append(_row("Activity-Based", nbo, result))
    for nbo in nbo_values:
        values = [rng.randrange(nbo) for _ in range(count_symbols)]
        result = ActivationCountChannel(nbo=nbo, values=values).run()
        rows.append(_row("Activation-Count-Based", nbo, result))
    return Table2Result(rows=rows)


def _row(channel: str, nbo: int, result: CovertChannelResult) -> Table2Row:
    return Table2Row(
        channel=channel,
        nbo=nbo,
        period_us=result.period_us,
        bitrate_kbps=result.bitrate_kbps,
        error_rate=result.error_rate,
    )


ARTIFACT = ArtifactSpec(
    name="table2",
    artifact="Table 2",
    title="Covert-channel period and bitrate vs N_BO",
    module="repro.experiments.table2_covert",
    quick=dict(nbo_values=(256,), activity_bits=6, count_symbols=4),
)
