"""Figure 14: activation-counter reset policy vs N_RH.

With counters reset every tREFW, the Feinting attacker's optimal pool
is smaller, so TMAX is lower and the TB-Window can be longer — fewer
TB-RFMs and better performance, noticeably so at ultra-low N_RH where
TB-RFMs dominate.  (Direction check: reset lowers TMAX, hence for the
same N_BO it allows a *longer* window than no-reset.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tb_window import tb_window_for_nrh
from repro.config import SystemConfig
from repro.experiments.common import (
    DesignPoint,
    PerfRow,
    default_workloads,
    geomean_normalized,
    run_perf_matrix,
)
from repro.experiments.registry import ArtifactSpec


@dataclass
class Fig14Result:
    #: (nrh, with_reset) -> rows
    by_point: Dict[Tuple[int, bool], List[PerfRow]]
    #: (nrh, with_reset) -> TB-Window (tREFI multiples)
    windows: Dict[Tuple[int, bool], float]

    def geomean(self, nrh: int, with_reset: bool) -> float:
        """Geometric-mean normalized performance for the given design point."""
        return geomean_normalized(self.by_point[(nrh, with_reset)])

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = ["N_RH    reset  TB-Window(tREFI)  normalized"]
        for (nrh, with_reset) in sorted(self.by_point):
            lines.append(
                f"{nrh:<8d}{'yes' if with_reset else ' no':>5s}  "
                f"{self.windows[(nrh, with_reset)]:16.3f}  "
                f"{self.geomean(nrh, with_reset):10.4f}"
            )
        return "\n".join(lines)


def run(
    nrh_values: Sequence[int] = (256, 512, 1024),
    workloads: Optional[Sequence[str]] = None,
    requests_per_core: Optional[int] = None,
    system: Optional[SystemConfig] = None,
) -> Fig14Result:
    """Run the experiment at the configured scale; returns the result object."""
    workloads = workloads or default_workloads(limit=4)
    by_point: Dict[Tuple[int, bool], List[PerfRow]] = {}
    windows: Dict[Tuple[int, bool], float] = {}
    for nrh in nrh_values:
        for with_reset in (True, False):
            design = "tprac" if with_reset else "tprac_noreset"
            point = DesignPoint(design=design, nrh=nrh)
            matrix = run_perf_matrix(
                [point],
                workloads=workloads,
                requests_per_core=requests_per_core,
                system=system,
            )
            by_point[(nrh, with_reset)] = matrix[point.label()]
            windows[(nrh, with_reset)] = tb_window_for_nrh(
                nrh, with_reset=with_reset
            ).tb_window_trefi
    return Fig14Result(by_point=by_point, windows=windows)


ARTIFACT = ArtifactSpec(
    name="fig14",
    artifact="Figure 14",
    title="Counter-reset policy sensitivity",
    module="repro.experiments.fig14_reset",
    quick=dict(
        nrh_values=(256, 1024),
        workloads=("433.milc", "453.povray"),
        requests_per_core=600,
    ),
)
