"""Figure 10: normalized performance at N_RH = 1024.

Three designs against the PRAC-without-ABO baseline over the workload
catalog (4-core homogeneous):

* ABO-Only — near-zero slowdown (ABO-RFMs are rare for benign apps);
* ABO+ACB-RFM — ~0.7% (BAT-triggered RFMs only under heavy activity);
* TPRAC — ~3.4% average (one TB-RFM per solved TB-Window blocks the
  channel 350 ns, a ~5% peak-bandwidth loss felt by memory-intensive
  workloads; the paper's worst case, 433.milc, loses ~8.3%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.experiments.common import (
    DesignPoint,
    PerfRow,
    default_workloads,
    format_perf_table,
    geomean_normalized,
    run_perf_matrix,
)
from repro.experiments.registry import ArtifactSpec


@dataclass
class Fig10Result:
    matrix: Dict[str, List[PerfRow]]
    nrh: int

    def geomean(self, design_label: str) -> float:
        """Geometric-mean normalized performance for the given design point."""
        return geomean_normalized(self.matrix[design_label])

    def slowdown_pct(self, design_label: str) -> float:
        """Geomean slowdown in percent: 100 * (1 - normalized)."""
        return (1.0 - self.geomean(design_label)) * 100.0

    def worst_workload(self, design_label: str) -> PerfRow:
        """The workload with the lowest normalized performance."""
        return min(self.matrix[design_label], key=lambda row: row.normalized)

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        return format_perf_table(self.matrix)


def run(
    nrh: int = 1024,
    workloads: Optional[Sequence[str]] = None,
    requests_per_core: Optional[int] = None,
    system: Optional[SystemConfig] = None,
) -> Fig10Result:
    """Run the experiment at the configured scale; returns the result object."""
    designs = [
        DesignPoint(design="abo_only", nrh=nrh),
        DesignPoint(design="abo_acb", nrh=nrh),
        DesignPoint(design="tprac", nrh=nrh),
    ]
    matrix = run_perf_matrix(
        designs,
        workloads=workloads or default_workloads(),
        requests_per_core=requests_per_core,
        system=system,
    )
    return Fig10Result(matrix=matrix, nrh=nrh)


ARTIFACT = ArtifactSpec(
    name="fig10",
    artifact="Figure 10",
    title="Normalized performance at N_RH=1024, three designs",
    module="repro.experiments.fig10_performance",
    quick=dict(workloads=("433.milc", "453.povray"), requests_per_core=800),
)
