"""Figure 4: one AES side-channel attack instance, with timelines.

For p0 = 0 and k0 = 0: the victim's 200 encryptions put roughly double
activations on Row-0 of T-table 0; the attacker's probe loop then
triggers the ABO on Row-0 after N_BO minus the victim's count further
activations, observed as a latency spike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.side_channel import AesSideChannelAttack, SideChannelResult
from repro.experiments.registry import ArtifactSpec


@dataclass
class Fig4Result:
    attack: SideChannelResult

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        r = self.attack
        hot = max(r.victim_histogram.values()) if r.victim_histogram else 0
        others = [
            v
            for row, v in r.victim_histogram.items()
            if v != hot or row != min(
                r.victim_histogram, key=lambda k: (-r.victim_histogram[k], k)
            )
        ]
        mean_other = sum(others) / len(others) if others else 0.0
        lines = [
            f"victim encryptions          : {r.encryptions}",
            f"hot-row victim accesses     : {hot}",
            f"other-rows mean accesses    : {mean_other:.1f}",
            f"attacker acts to trigger    : {r.attacker_acts_on_trigger}",
            f"row triggering first ABO    : {r.trigger_row}",
            f"recovered key nibble        : {r.recovered_nibble}"
            f" (truth {r.true_nibble})",
            f"RFMs observed               : {len(r.rfm_times)}",
        ]
        return "\n".join(lines)


def run(
    key_byte: int = 0x00,
    nbo: int = 256,
    encryptions: int = 200,
    record_timeline: bool = True,
) -> Fig4Result:
    """Reproduce the Figure 4 instance (p0=0, k0 configurable)."""
    key = bytes([key_byte]) + bytes(15)
    attack = AesSideChannelAttack(
        key,
        nbo=nbo,
        prac_level=1,
        encryptions=encryptions,
        record_timeline=record_timeline,
    )
    return Fig4Result(attack=attack.run_single(target_byte=0, fixed_value=0))


ARTIFACT = ArtifactSpec(
    name="fig4",
    artifact="Figure 4",
    title="AES side-channel attack timeline (p0=0, k0=0)",
    module="repro.experiments.fig4_side_channel",
    quick=dict(encryptions=150, record_timeline=False),
)
