"""Figure 8: executable walkthrough of the single-entry queue defense.

Drives the paper's worked example on the real simulator: four rows
(three decoys A/B/C plus target T), a TB-Window sized for 40
activations, N_BO = 100.  Epoch by epoch the most-activated row is
tracked in the single-entry queue and mitigated at the TB-RFM; in the
final epoch all activations go to the target, which is mitigated before
it can reach N_BO — no Alert ever fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.config import small_test_config
from repro.mitigations import make_policy
from repro.experiments.registry import ArtifactSpec


@dataclass
class EpochSnapshot:
    """Row counters at the end of one TB-Window epoch."""

    epoch: int
    counters: Dict[str, int]
    mitigated: List[str] = field(default_factory=list)  # since last snapshot


@dataclass
class Fig8Result:
    snapshots: List[EpochSnapshot]
    alerts: int
    target_peak: int
    nbo: int

    @property
    def secure(self) -> bool:
        return self.alerts == 0 and self.target_peak < self.nbo

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = ["epoch   A     B     C     T    mitigated-since-last"]
        for snap in self.snapshots:
            c = snap.counters
            lines.append(
                f"{snap.epoch:5d} {c.get('A', 0):5d} {c.get('B', 0):5d} "
                f"{c.get('C', 0):5d} {c.get('T', 0):5d}    "
                f"{','.join(snap.mitigated) or '-'}"
            )
        lines.append(
            f"alerts={self.alerts}  target peak={self.target_peak} "
            f"(N_BO={self.nbo})  secure={self.secure}"
        )
        return "\n".join(lines)


def run(nbo: int = 100, acts_per_window: int = 40, epochs: int = 4) -> Fig8Result:
    """Replay the Figure 8 scenario on the event-driven model."""
    config = small_test_config(rows_per_bank=64, nbo=nbo).with_prac(
        nbo=nbo, abo_act=0
    )
    # The dependent-chain attacker activates every ~70 ns; pick the
    # window so about `acts_per_window` activations fit.
    chain_ns = (
        config.timing.tRCD + config.timing.tCL + config.timing.tBL
        + config.timing.tRP
    )
    window = acts_per_window * chain_ns
    engine = Engine()
    policy = make_policy("tprac", tb_window=window)
    controller = MemoryController(
        engine, config, policy=policy, enable_refresh=False, record_samples=False
    )
    names = {10: "A", 11: "B", 12: "C", 13: "T"}
    rows_by_epoch = [
        [10, 11, 12, 13],   # epoch 1: uniform over the full pool
        [11, 12, 13],       # epoch 2: A was mitigated
        [12, 13],           # epoch 3: B was mitigated
        [13],               # final epoch: all on the target
    ][:epochs]

    snapshots: List[EpochSnapshot] = []
    seen_rfms = {"count": 0}

    def mitigations_since_last() -> List[str]:
        new_records = controller.stats.rfm_records[seen_rfms["count"]:]
        seen_rfms["count"] = len(controller.stats.rfm_records)
        out = []
        for record in new_records:
            victim = record.mitigated_rows.get(0)
            if victim is not None and victim in names:
                out.append(names[victim])
        return out

    state = {"epoch": 0, "sent": 0}
    bank = controller.channel.bank(0)

    def issue(req=None) -> None:
        epoch = state["epoch"]
        if epoch >= len(rows_by_epoch):
            return
        rows = rows_by_epoch[epoch]
        if state["sent"] >= acts_per_window:
            snapshots.append(
                EpochSnapshot(
                    epoch=epoch + 1,
                    counters={n: bank.counter(r) for r, n in names.items()},
                    mitigated=mitigations_since_last(),
                )
            )
            state["epoch"] += 1
            state["sent"] = 0
            # Wait out the rest of the window before the next epoch.
            engine.schedule_after(window / 4, issue)
            return
        row = rows[state["sent"] % len(rows)]
        state["sent"] += 1
        controller.enqueue(
            MemRequest(phys_addr=bank_address(controller, 0, row), on_complete=issue)
        )

    issue()
    engine.run(until=(epochs + 2) * window)
    target_peak = max(
        [snap.counters.get("T", 0) for snap in snapshots] or [0]
    )
    return Fig8Result(
        snapshots=snapshots,
        alerts=controller.abo.alert_count,
        target_peak=target_peak,
        nbo=nbo,
    )


ARTIFACT = ArtifactSpec(
    name="fig8",
    artifact="Figure 8",
    title="Executable walkthrough of the single-entry queue defense",
    module="repro.experiments.fig8_walkthrough",
)
