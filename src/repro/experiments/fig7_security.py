"""Figure 7: worst-case (Feinting) TMAX vs TB-Window.

Pure analysis — Equations (2)-(5) of the paper evaluated exactly.
Expected values for the DDR5 32Gb device (and matched by this model):

================  ==========  =============
TB-Window         with reset  without reset
================  ==========  =============
0.25 tREFI            105          118
1    tREFI            572          736
4    tREFI           2138         3220
================  ==========  =============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.feinting import FeintingResult, tmax_sweep
from repro.dram.config import DramConfig
from repro.experiments.registry import ArtifactSpec


@dataclass
class Fig7Result:
    sweep: Dict[str, List[FeintingResult]]

    def format_table(self) -> str:
        """Render the regenerated rows as an aligned text table."""
        lines = ["TB-Window(tREFI)   TMAX w/reset   TMAX w/o reset   OPT_R1(reset)"]
        for with_r, without_r in zip(
            self.sweep["with_reset"], self.sweep["without_reset"]
        ):
            lines.append(
                f"{with_r.tb_window_trefi:16.2f}   {with_r.tmax:12d}   "
                f"{without_r.tmax:14d}   {with_r.optimal_r1:13d}"
            )
        return "\n".join(lines)

    def tmax(self, trefi_multiple: float, with_reset: bool) -> int:
        """Look up TMAX for one TB-Window multiple and reset regime."""
        key = "with_reset" if with_reset else "without_reset"
        for result in self.sweep[key]:
            if abs(result.tb_window_trefi - trefi_multiple) < 1e-9:
                return result.tmax
        raise KeyError(trefi_multiple)


def run(
    config: Optional[DramConfig] = None,
    tb_windows_trefi: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 2.0, 4.0),
) -> Fig7Result:
    """Run the experiment at the configured scale; returns the result object."""
    return Fig7Result(sweep=tmax_sweep(config, tb_windows_trefi))


ARTIFACT = ArtifactSpec(
    name="fig7",
    artifact="Figure 7",
    title="Feinting TMAX vs TB-Window (with/without counter reset)",
    module="repro.experiments.fig7_security",
)
