"""Experiment orchestration: parallel, fault-tolerant, cached suite runs.

``run_suite`` executes any subset of the registered artifact harnesses
(see :mod:`repro.experiments.registry` — all fourteen paper artifacts
plus extensions) and writes one JSON document per artifact into a
results directory, plus a ``summary.json`` index, so downstream
tooling — plotting notebooks, regression dashboards — can consume
reproduction results without re-running simulations.

Execution model:

* **Parallel** — registered experiments are independent simulations,
  so they fan out over the shared supervising executor
  (:func:`repro.core.executor.supervise_tasks`; ``jobs=N``, default
  ``os.cpu_count()``), the same machinery the scenario campaign engine
  uses.  Custom in-process runners (arbitrary callables) execute inline
  in the parent, since closures do not survive pickling.
* **Fault-isolated** — a crashing harness records a structured error
  entry (type, message, traceback) in ``summary.json``; every other
  experiment still completes and the suite does not raise.  Transient
  failures (including hung or hard-crashed workers) are retried per
  :class:`~repro.core.executor.RetryPolicy`; repeat offenders are
  quarantined rather than aborting the run.
* **Cached** — each result embeds a content hash of experiment name +
  run kwargs + package version.  Re-runs over the same results
  directory skip artifacts whose hash matches (``use_cache=False`` or
  ``force=True`` to override).
* **Resumable** — ``summary.json`` is flushed atomically after every
  completion, so an interrupted run leaves a consistent index and the
  next invocation picks up where it stopped via the cache.

CLI front-end: ``python -m repro.cli suite --jobs 8 --only fig10 table2``.
"""

from __future__ import annotations

import importlib
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro import __version__
from repro.analysis.storage import (
    CorruptResultError,
    PathLike,
    SummaryIndex,
    atomic_write_json,
    content_key,
    load_checked_json,
    quarantine_corrupt,
)
from repro.core.executor import (
    RetryPolicy,
    error_entry,
    supervise_tasks,
    to_jsonable,
)
from repro.experiments import registry
from repro.obs.log import get_logger

#: Backward-compatible alias; the implementation moved to
#: :mod:`repro.core.executor` when the campaign engine began sharing it.
_to_jsonable = to_jsonable


def _cache_key(name: str, module: str, kwargs: Dict[str, Any]) -> str:
    """Content hash identifying one experiment run (for cache hits)."""
    return content_key(
        {
            "experiment": name,
            "module": module,
            "kwargs": _to_jsonable(kwargs),
            "version": __version__,
        }
    )


def _payload_from_result(name: str, result: Any, elapsed: float) -> Dict[str, Any]:
    payload = {
        "experiment": name,
        "status": "ok",
        # advisory wall-clock, never part of result identity
        "elapsed_seconds": round(elapsed, 3),  # repro-lint: allow(float-format-drift)
        "result": _to_jsonable(result),
    }
    if hasattr(result, "format_table"):
        payload["table"] = result.format_table()
    return payload


def _error_payload(name: str, exc: BaseException) -> Dict[str, Any]:
    return {"experiment": name, "status": "error", "error": error_entry(exc)}


def _execute_spec(name: str, module: str, kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process entry point: import the harness and run it.

    Takes only picklable arguments and returns only JSON-able payloads,
    so it crosses the process-pool boundary in both directions; any
    exception is folded into a structured error payload rather than
    raised, which is what gives the suite per-experiment fault
    isolation.
    """
    try:
        run = getattr(importlib.import_module(module), "run")
        started = time.perf_counter()
        result = run(**kwargs)
        return _payload_from_result(name, result, time.perf_counter() - started)
    except Exception as exc:  # isolation boundary; Ctrl-C still propagates
        return _error_payload(name, exc)


def _execute_callable(name: str, runner: Callable[[], Any]) -> Dict[str, Any]:
    """Inline (parent-process) execution path for custom runners."""
    try:
        started = time.perf_counter()
        result = runner()
        return _payload_from_result(name, result, time.perf_counter() - started)
    except Exception as exc:  # isolation boundary; Ctrl-C still propagates
        return _error_payload(name, exc)


def _cached_payload(path: Path, key: str) -> Optional[Dict[str, Any]]:
    """Return the previously persisted payload iff it matches ``key``.

    An unparseable or checksum-mismatched file is moved to a
    ``*.corrupt`` sidecar (and the experiment re-run) instead of being
    silently ignored in place.
    """
    if not path.exists():
        return None
    try:
        payload = load_checked_json(path)
    except OSError:
        return None
    except CorruptResultError as exc:
        sidecar = quarantine_corrupt(path)
        get_logger().warning(
            "suite.corrupt_result",
            file=path.name,
            reason=exc.reason,
            sidecar=sidecar.name,
        )
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("cache_key") != key or payload.get("status") != "ok":
        return None
    return payload


def _invalidate_stale_result(path: Path) -> None:
    """Strip the cache key from a result file after a failed re-run.

    The old data stays readable, but a later cached run can no longer
    mistake it for a fresh success and silently mask the failure.
    """
    if not path.exists():
        return
    try:
        stale = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return
    if stale.pop("cache_key", None) is not None:
        atomic_write_json(path, stale)


def _summary_entry(payload: Dict[str, Any], path: Path) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "experiment": payload["experiment"],
        "status": payload["status"],
    }
    if payload["status"] == "error":
        entry["error"] = dict(payload["error"])
    elif payload["status"] == "quarantined":
        entry["error"] = dict(payload.get("error", {}))
        entry["attempts"] = len(payload.get("attempts", []))
    else:
        entry["file"] = path.name
        entry["elapsed_seconds"] = payload.get("elapsed_seconds", 0.0)
    return entry


def run_suite(
    output_dir: PathLike,
    experiments: Optional[Iterable[str]] = None,
    runners: Optional[Dict[str, Callable[[], Any]]] = None,
    *,
    jobs: Optional[int] = None,
    scale: str = "quick",
    use_cache: bool = True,
    force: bool = False,
    retries: int = 2,
    timeout: Optional[float] = None,
) -> Dict[str, Path]:
    """Run each named experiment and persist its result.

    Parameters
    ----------
    output_dir:
        Results directory; one ``<name>.json`` per artifact plus the
        incrementally-flushed ``summary.json`` index.
    experiments:
        Artifact names to run (default: every registered artifact plus
        any custom ``runners``).  Unknown names raise ``KeyError``.
    runners:
        Custom ``name -> callable`` runners that override or extend the
        registry; they execute inline in the parent process.
    jobs:
        Worker-process count for registered experiments (default
        ``os.cpu_count()``); ``jobs=1`` runs everything inline.
    scale:
        ``"quick"`` (laptop-scale kwargs) or ``"full"`` (paper-scale).
    use_cache / force:
        With caching on (the default), artifacts whose content hash
        already matches a result file in ``output_dir`` are skipped and
        reported as ``"cached"``.  ``force=True`` re-runs them and
        refreshes their cache entries; ``use_cache=False`` bypasses the
        cache entirely — results are neither read from nor written to
        it, so later cached runs re-execute them.  Cache files that
        fail validation are quarantined to ``*.corrupt`` sidecars and
        their experiments re-run.
    retries / timeout:
        Resilience knobs forwarded to the supervising executor
        (:class:`~repro.core.executor.RetryPolicy`): transient-failure
        retry budget per experiment, and the per-attempt wall-clock
        deadline in seconds (pool mode only).  Experiments that exhaust
        the budget appear as ``"quarantined"`` entries in
        ``summary.json``.

    Returns a mapping of experiment name -> written JSON path for every
    artifact that succeeded (fresh or cached).  Failures never abort
    the suite; they appear as ``"error"`` entries in ``summary.json``.
    """
    specs = registry.discover()
    custom = dict(runners or {})
    available = sorted(set(specs) | set(custom))
    names = list(experiments) if experiments is not None else available
    unknown = [n for n in names if n not in specs and n not in custom]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; have {available}")

    out_root = Path(output_dir)
    out_root.mkdir(parents=True, exist_ok=True)
    log = get_logger()
    log.info(
        "suite.start", experiments=len(names), scale=scale, out=str(out_root)
    )
    # Merge with any existing index so a subset run (--only fig3) never
    # erases the record of previously completed artifacts.
    index = SummaryIndex.load(out_root)
    for name in names:
        if name not in index.order:
            index.order.append(name)
    index.flush()
    written: Dict[str, Path] = {}

    def finish(name: str, payload: Dict[str, Any], key: Optional[str]) -> None:
        payload.setdefault("experiment", name)
        path = out_root / f"{name}.json"
        if payload["status"] == "ok":
            if key is not None:
                payload["cache_key"] = key
            atomic_write_json(path, payload)
            written[name] = path
        else:
            _invalidate_stale_result(path)
        index.record(_summary_entry(payload, path))
        log.info(
            "suite.experiment",
            experiment=name,
            status=payload["status"],
            elapsed=payload.get("elapsed_seconds", 0.0),
        )

    # Partition: cache hits, pool-eligible registry specs, inline customs.
    pooled: List[tuple] = []
    inline: List[tuple] = []
    for name in names:
        if name in custom:
            inline.append((name, custom[name]))
            continue
        spec = specs[name]
        kwargs = spec.kwargs(scale)
        key = _cache_key(name, spec.module, kwargs)
        path = out_root / f"{name}.json"
        cached = _cached_payload(path, key) if use_cache and not force else None
        if cached is not None:
            written[name] = path
            entry = _summary_entry(cached, path)
            entry["status"] = "cached"
            index.record(entry)
            log.debug("suite.experiment", experiment=name, status="cached")
            continue
        pooled.append((name, spec.module, kwargs, key if use_cache else None))

    tasks = [
        # Key on the name alone: it is unique within a suite and gives
        # fault plans a stable, human-addressable task id ("fig10").
        (name, (name, module, kwargs))
        for name, module, kwargs, _key in pooled
    ]
    keys = {name: key for name, _module, _kwargs, key in pooled}
    policy = RetryPolicy(retries=retries, timeout=timeout)

    def on_supervise_event(event: str, fields: Dict[str, Any]) -> None:
        log.info(f"suite.{event.split('.', 1)[-1]}", **fields)

    try:
        for name, payload in supervise_tasks(
            _execute_spec,
            tasks,
            jobs=jobs,
            policy=policy,
            on_event=on_supervise_event,
        ):
            finish(name, payload, keys[name])

        for name, runner in inline:
            finish(name, _execute_callable(name, runner), None)
    except KeyboardInterrupt:
        # The supervisor tore the pool down on the way out; the index
        # already records everything that completed.
        log.warning(
            "suite.interrupted", completed=len(written), total=len(names)
        )
        index.flush()
        raise

    return written


def load_result(path: PathLike) -> Dict[str, Any]:
    """Read one persisted experiment result back."""
    return json.loads(Path(path).read_text())


def load_summary(output_dir: PathLike) -> List[Dict[str, Any]]:
    """Read a results directory's ``summary.json`` index."""
    return json.loads((Path(output_dir) / SummaryIndex.FILENAME).read_text())
