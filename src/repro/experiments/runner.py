"""Experiment orchestration: run harnesses, persist results as JSON.

``run_suite`` executes a named set of experiment harnesses and writes
one JSON document per artifact into a results directory (plus a
``summary.json`` index), so downstream tooling — plotting notebooks,
regression dashboards — can consume reproduction results without
re-running simulations.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

PathLike = Union[str, Path]


def _to_jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples/dict-keys to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _to_jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _quick_experiments() -> Dict[str, Callable[[], Any]]:
    """Laptop-scale runners for every artifact (lazy imports)."""

    def fig3():
        from repro.experiments import fig3_latency

        return fig3_latency.run(nbo=256, hammer_rounds=2, duration_ns=200_000)

    def table2():
        from repro.experiments import table2_covert

        return table2_covert.run(nbo_values=(256,), activity_bits=6, count_symbols=4)

    def fig4():
        from repro.experiments import fig4_side_channel

        return fig4_side_channel.run(encryptions=150, record_timeline=False)

    def fig7():
        from repro.experiments import fig7_security

        return fig7_security.run()

    def fig8():
        from repro.experiments import fig8_walkthrough

        return fig8_walkthrough.run()

    def fig10():
        from repro.experiments import fig10_performance

        return fig10_performance.run(
            workloads=["433.milc", "453.povray"], requests_per_core=800
        )

    return {
        "fig3": fig3,
        "table2": table2,
        "fig4": fig4,
        "fig7": fig7,
        "fig8": fig8,
        "fig10": fig10,
    }


def run_suite(
    output_dir: PathLike,
    experiments: Optional[Iterable[str]] = None,
    runners: Optional[Dict[str, Callable[[], Any]]] = None,
) -> Dict[str, Path]:
    """Run each named experiment and persist its result.

    Returns a mapping of experiment name -> written JSON path.  Custom
    ``runners`` may override or extend the quick defaults.
    """
    available = _quick_experiments()
    if runners:
        available.update(runners)
    names = list(experiments) if experiments is not None else sorted(available)
    unknown = [n for n in names if n not in available]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; have {sorted(available)}")

    out_root = Path(output_dir)
    out_root.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    summary: List[Dict[str, Any]] = []
    for name in names:
        started = time.time()
        result = available[name]()
        elapsed = time.time() - started
        payload = {
            "experiment": name,
            "elapsed_seconds": round(elapsed, 3),
            "result": _to_jsonable(result),
        }
        if hasattr(result, "format_table"):
            payload["table"] = result.format_table()
        path = out_root / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2))
        written[name] = path
        summary.append(
            {"experiment": name, "file": path.name, "elapsed_seconds": payload["elapsed_seconds"]}
        )
    (out_root / "summary.json").write_text(json.dumps(summary, indent=2))
    return written


def load_result(path: PathLike) -> Dict[str, Any]:
    """Read one persisted experiment result back."""
    return json.loads(Path(path).read_text())
