"""Shared experiment plumbing: design builders and run-scale control."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.analysis.tb_window import tb_window_for_nrh
from repro.config import SystemConfig
from repro.cpu.system import System
from repro.dram.config import DramConfig, ddr5_8000b
from repro.mitigations import make_policy as make_mitigation
from repro.mitigations.acb_rfm import AcbRfmPolicy as _Acb
from repro.workloads.catalog import CATALOG, workload_names
from repro.workloads.synthetic import homogeneous_traces


def full_scale() -> bool:
    """Whether to run paper-scale experiments (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def default_requests_per_core() -> int:
    """Per-core DRAM request budget for the current scale."""
    return 20_000 if full_scale() else 2_500


def default_workloads(limit: Optional[int] = None) -> List[str]:
    """A category-balanced workload subset for quick runs; all 50+ when
    REPRO_FULL=1."""
    if full_scale() and limit is None:
        return sorted(CATALOG)
    names = (
        workload_names("H")[:6] + workload_names("M")[:3] + workload_names("L")[:3]
    )
    if limit is not None:
        names = names[:limit]
    return names


@dataclass
class DesignPoint:
    """One (design, N_RH) operating point for the performance studies."""

    design: str               # none / abo_only / abo_acb / tprac / tprac_noreset
    nrh: int
    tref_per_trefi: float = 0.0
    prac_level: int = 1

    def label(self) -> str:
        """Short unique identifier used as the results-matrix key."""
        suffix = f"+tref{self.tref_per_trefi:g}" if self.tref_per_trefi else ""
        return f"{self.design}{suffix}@{self.nrh}"


def build_system(
    point: DesignPoint,
    traces,
    config: Optional[DramConfig] = None,
    max_requests_per_core: Optional[int] = None,
    system: Optional[SystemConfig] = None,
) -> System:
    """Instantiate the simulated system for a design point.

    ``system`` declares the structural knobs — channel count, request
    scheduler, address mapping, refresh policy
    (:class:`repro.config.SystemConfig`); the default builds the
    historical single-channel FR-FCFS/MOP system with one controller —
    and one fresh policy instance — per channel, keeping outputs
    exactly.
    """
    # REPRO_ENGINE forces an execution backend onto every built system
    # without touching any scenario spec or CLI invocation — the hook
    # scripts/abcompare.sh uses to prove backends byte-identical on the
    # unchanged artifact pipeline.  Explicit engine= axes win over it.
    forced_engine = os.environ.get("REPRO_ENGINE")
    if forced_engine:
        from repro.config import DEFAULT_ENGINE

        base = system if system is not None else SystemConfig()
        if base.engine == DEFAULT_ENGINE:
            from dataclasses import replace as _replace

            system = _replace(base, engine=forced_engine).validate()
    config = config or ddr5_8000b()
    with_reset = point.design != "tprac_noreset"
    config = config.with_prac(
        nbo=point.nrh, prac_level=point.prac_level, reset_on_refresh=with_reset
    )
    if system is not None:
        config = system.apply_to(config)
    enable_abo = True

    # The TB-Window search is channel-independent: solve it once and
    # close over the value instead of re-searching per channel.
    tb_window = (
        tb_window_for_nrh(point.nrh, config=config, with_reset=with_reset).tb_window
        if point.design in ("tprac", "tprac_noreset")
        else None
    )

    def make_policy():
        if point.design == "abo_only":
            return make_mitigation("abo_only")
        if point.design == "abo_acb":
            return make_mitigation("abo_acb", bat=_Acb.bat_for_threshold(point.nrh))
        if point.design in ("tprac", "tprac_noreset"):
            return make_mitigation("tprac", tb_window=tb_window)
        return make_mitigation("none")

    if point.design == "none":
        enable_abo = False
    elif point.design not in ("abo_only", "abo_acb", "tprac", "tprac_noreset"):
        raise ValueError(f"unknown design {point.design!r}")
    # The factory path covers every channel count: at channels=1 the
    # memory system calls it exactly once, and the policies above are
    # deterministic, so single-channel outputs are unchanged.
    return System(
        traces,
        config=config,
        policy_factory=make_policy,
        enable_abo=enable_abo,
        tref_per_trefi=point.tref_per_trefi,
        max_requests_per_core=max_requests_per_core,
        system=system,
    )


@dataclass
class PerfRow:
    """Normalized performance of one workload under one design."""

    workload: str
    design: str
    normalized: float
    baseline_ipc: float
    design_ipc: float
    rfms: int


def run_perf_matrix(
    designs: Sequence[DesignPoint],
    workloads: Optional[Sequence[str]] = None,
    cores: int = 4,
    requests_per_core: Optional[int] = None,
    seed: int = 0,
    system: Optional[SystemConfig] = None,
) -> Dict[str, List[PerfRow]]:
    """Run each workload under the baseline and every design.

    Returns design-label -> rows.  Normalization baseline is the
    PRAC-without-ABO system (the paper's Figure 10 baseline).
    ``system`` selects the structural controller configuration
    (scheduler / mapping / refresh / channels) for baseline and
    designs alike, so the normalization stays apples-to-apples.
    """
    workloads = list(workloads or default_workloads())
    requests = requests_per_core or default_requests_per_core()
    out: Dict[str, List[PerfRow]] = {p.label(): [] for p in designs}
    for name in workloads:
        traces = homogeneous_traces(name, cores=cores, num_accesses=requests, seed=seed)
        baseline_point = DesignPoint(design="none", nrh=designs[0].nrh)
        base = build_system(baseline_point, traces, system=system).run()
        for point in designs:
            result = build_system(point, traces, system=system).run()
            out[point.label()].append(
                PerfRow(
                    workload=name,
                    design=point.label(),
                    normalized=result.total_ipc / base.total_ipc,
                    baseline_ipc=base.total_ipc,
                    design_ipc=result.total_ipc,
                    rfms=result.rfm_total,
                )
            )
    return out


def geomean_normalized(rows: List[PerfRow]) -> float:
    """Geometric mean of the rows' normalized performance."""
    return geometric_mean([row.normalized for row in rows])


def format_perf_table(matrix: Dict[str, List[PerfRow]]) -> str:
    """Per-workload normalized performance plus geomean, per design."""
    designs = list(matrix)
    workloads = [row.workload for row in matrix[designs[0]]]
    lines = ["workload".ljust(18) + "".join(d.rjust(22) for d in designs)]
    for index, workload in enumerate(workloads):
        cells = [matrix[d][index].normalized for d in designs]
        lines.append(
            workload.ljust(18) + "".join(f"{c:22.4f}" for c in cells)
        )
    lines.append(
        "GEOMEAN".ljust(18)
        + "".join(f"{geomean_normalized(matrix[d]):22.4f}" for d in designs)
    )
    return "\n".join(lines)
