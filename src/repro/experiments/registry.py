"""Declarative artifact registry for the experiment subsystem.

Every experiment module under :mod:`repro.experiments` self-describes
by exporting an ``ARTIFACT`` :class:`ArtifactSpec` naming the paper
artifact it reproduces plus the keyword arguments for its quick-scale
(laptop) and full-scale (paper) runs.  :func:`discover` walks the
package once and returns the complete registry, so orchestration code
(`runner.run_suite`, the CLI) never hand-maintains an experiment list
— the 6-of-14 drift the old ``_quick_experiments()`` dict suffered
from cannot recur.

Specs are plain data (module path + kwargs, no callables), so suite
execution can ship them to worker processes without pickling closures.
"""

from __future__ import annotations

import dataclasses
import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

#: Registry keys of the paper's fourteen reproduced artifacts (fig6 is
#: a diagram, not an experiment).  Extensions (e.g. ``obfuscation``)
#: register on top of these.
PAPER_ARTIFACTS = (
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table2",
    "table5",
    "scorecard",
)

SCALES = ("quick", "full")


@dataclass(frozen=True)
class ArtifactSpec:
    """Self-description one experiment module exports as ``ARTIFACT``."""

    name: str
    artifact: str
    title: str
    module: str = ""
    quick: Mapping[str, Any] = field(default_factory=dict)
    full: Mapping[str, Any] = field(default_factory=dict)

    def kwargs(self, scale: str = "quick") -> Dict[str, Any]:
        """Keyword arguments for ``run()`` at the given scale."""
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
        return dict(self.quick if scale == "quick" else self.full)

    def load_runner(self):
        """Import the module and return its ``run`` callable."""
        return getattr(importlib.import_module(self.module), "run")


#: Submodules that are infrastructure, not artifact harnesses.
_NON_ARTIFACT_MODULES = frozenset({"common", "registry", "runner"})

_cache: Dict[str, ArtifactSpec] = {}


def iter_experiment_modules() -> List[str]:
    """Dotted paths of every harness submodule (infrastructure excluded)."""
    package = importlib.import_module("repro.experiments")
    return [
        f"{package.__name__}.{info.name}"
        for info in pkgutil.iter_modules(package.__path__)
        if info.name not in _NON_ARTIFACT_MODULES
    ]


def discover(refresh: bool = False) -> Dict[str, ArtifactSpec]:
    """Import every experiment module and collect its ``ARTIFACT`` spec.

    A module that exposes a top-level ``run()`` but no ``ARTIFACT`` is a
    registration bug and raises, so new harnesses cannot silently drop
    out of the suite.
    """
    if _cache and not refresh:
        return dict(_cache)
    specs: Dict[str, ArtifactSpec] = {}
    for dotted in iter_experiment_modules():
        module = importlib.import_module(dotted)
        spec = getattr(module, "ARTIFACT", None)
        if spec is None:
            if callable(getattr(module, "run", None)):
                raise RuntimeError(
                    f"{dotted} defines run() but exports no ARTIFACT spec; "
                    "add one so the suite covers it"
                )
            continue
        if not spec.module:
            spec = dataclasses.replace(spec, module=dotted)
        if spec.name in specs:
            raise RuntimeError(
                f"duplicate artifact name {spec.name!r}: "
                f"{specs[spec.name].module} and {spec.module}"
            )
        specs[spec.name] = spec
    _cache.clear()
    _cache.update(specs)
    return dict(specs)


def get(name: str) -> ArtifactSpec:
    """Look up one registered artifact by name."""
    specs = discover()
    if name not in specs:
        raise KeyError(f"unknown artifact {name!r}; have {sorted(specs)}")
    return specs[name]


def names() -> List[str]:
    """Sorted registry keys."""
    return sorted(discover())
