"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro.cli list
    python -m repro.cli fig7
    python -m repro.cli table2 --nbo 256 512
    python -m repro.cli fig10 --requests 3000 --workloads 433.milc 470.lbm
    python -m repro.cli all
    python -m repro.cli suite --jobs 8 --only fig10 table2
    python -m repro.cli suite --out results/ --full --no-cache

Each artifact subcommand runs the matching harness from
:mod:`repro.experiments` and prints the regenerated rows/series,
plus an ASCII rendering where the paper's artifact is a plot.

``suite`` runs the registered artifact harnesses through the parallel,
fault-tolerant, cached orchestrator (:mod:`repro.experiments.runner`)
and persists JSON results + a ``summary.json`` index.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.analysis import plotting


def _run_fig3(args) -> str:
    from repro.experiments import fig3_latency

    result = fig3_latency.run(nbo=args.nbo[0] if args.nbo else 256)
    blocks = [result.format_table()]
    for label, timeline in result.timelines.items():
        blocks.append(
            plotting.latency_strip(
                timeline.times, timeline.latencies, title=label
            )
        )
    return "\n\n".join(blocks)


def _run_table2(args) -> str:
    from repro.experiments import table2_covert

    result = table2_covert.run(nbo_values=tuple(args.nbo or (256, 512, 1024)))
    return result.format_table()


def _run_fig4(args) -> str:
    from repro.experiments import fig4_side_channel

    result = fig4_side_channel.run(encryptions=args.requests or 200)
    attack = result.attack
    strip = plotting.latency_strip(
        [t for t, _ in attack.probe_timeline],
        [lat for _, lat in attack.probe_timeline],
        title="attacker probe latency (probe phase)",
    )
    return result.format_table() + "\n\n" + strip


def _run_fig5(args) -> str:
    from repro.experiments import fig5_key_sweep

    result = fig5_key_sweep.run(encryptions=args.requests or 200)
    matrix = []
    labels = []
    for attack in result.results:
        row = [attack.victim_histogram.get(r, 0) for r in range(16)]
        matrix.append(row)
        labels.append(f"k0={attack.true_nibble << 4:3d}")
    heat = plotting.heatmap(
        matrix, row_labels=labels, title="victim activations per row (x=row 0..15)"
    )
    return result.format_table() + "\n\n" + heat


def _run_fig7(args) -> str:
    from repro.experiments import fig7_security

    result = fig7_security.run()
    series = {
        "with reset": [
            (r.tb_window_trefi, r.tmax) for r in result.sweep["with_reset"]
        ],
        "without reset": [
            (r.tb_window_trefi, r.tmax) for r in result.sweep["without_reset"]
        ],
    }
    plot = plotting.line_plot(
        series, title="TMAX vs TB-Window (tREFI)", logy=True
    )
    return result.format_table() + "\n\n" + plot


def _run_fig9(args) -> str:
    from repro.experiments import fig9_defense

    result = fig9_defense.run(encryptions=args.requests or 150)
    return result.format_table()


def _perf_args(args) -> dict:
    return dict(
        workloads=args.workloads or None,
        requests_per_core=args.requests or None,
    )


def _run_fig10(args) -> str:
    from repro.experiments import fig10_performance

    result = fig10_performance.run(**_perf_args(args))
    labels = list(result.matrix)
    chart = plotting.bar_chart(
        labels,
        [result.slowdown_pct(label) for label in labels],
        unit="%",
        title="geomean slowdown",
    )
    return result.format_table() + "\n\n" + chart


def _run_fig11(args) -> str:
    from repro.experiments import fig11_prac_levels

    return fig11_prac_levels.run(**_perf_args(args)).format_table()


def _run_fig12(args) -> str:
    from repro.experiments import fig12_tref

    return fig12_tref.run(**_perf_args(args)).format_table()


def _run_fig13(args) -> str:
    from repro.experiments import fig13_nrh

    result = fig13_nrh.run(**_perf_args(args))
    series = {
        design: [
            (nrh, result.slowdown_pct(nrh, design)) for nrh in sorted(result.by_nrh)
        ]
        for design in ("abo_only", "abo_acb", "tprac")
    }
    plot = plotting.line_plot(series, title="slowdown% vs N_RH")
    return result.format_table() + "\n\n" + plot


def _run_fig14(args) -> str:
    from repro.experiments import fig14_reset

    return fig14_reset.run(**_perf_args(args)).format_table()


def _run_table5(args) -> str:
    from repro.experiments import table5_energy

    return table5_energy.run(**_perf_args(args)).format_table()


def _run_fig8(args) -> str:
    from repro.experiments import fig8_walkthrough

    return fig8_walkthrough.run(nbo=args.nbo[0] if args.nbo else 100).format_table()


def _run_scorecard(args) -> str:
    from repro.experiments import scorecard

    return scorecard.run().format_table()


def _run_obfuscation(args) -> str:
    from repro.experiments import obfuscation_defense

    return obfuscation_defense.run().format_table()


COMMANDS: Dict[str, Callable] = {
    "fig3": _run_fig3,
    "table2": _run_table2,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "table5": _run_table5,
    "scorecard": _run_scorecard,
    "obfuscation": _run_obfuscation,
}


def _run_suite(args) -> int:
    """``suite`` subcommand: parallel cached run over registered artifacts."""
    from repro.experiments import registry, runner

    if args.only is not None and not args.only:
        print("error: --only given but no artifact names followed", file=sys.stderr)
        return 2
    artifact_flags = [
        flag
        for flag, on in (
            ("--nbo", args.nbo is not None),
            ("--requests", args.requests is not None),
            ("--workloads", args.workloads is not None),
        )
        if on
    ]
    if artifact_flags:
        print(
            f"error: not applicable to 'suite': {', '.join(artifact_flags)} "
            "(scale is controlled by --full and the registry's ARTIFACT kwargs)",
            file=sys.stderr,
        )
        return 2
    started = time.time()
    try:
        runner.run_suite(
            args.out,
            experiments=args.only or None,
            jobs=args.jobs,
            scale="full" if args.full else "quick",
            use_cache=not args.no_cache,
            force=args.force,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    # summary.json keeps history across runs; report/exit only on the
    # artifacts this invocation actually covered.
    requested = set(args.only) if args.only else set(registry.discover())
    statuses = {
        entry["experiment"]: entry
        for entry in runner.load_summary(args.out)
        if entry["experiment"] in requested
    }
    width = max(len(name) for name in statuses) if statuses else 0
    for name, entry in statuses.items():
        status = entry["status"]
        if status == "error":
            detail = f"{entry['error']['type']}: {entry['error']['message']}"
        else:
            detail = f"{entry.get('elapsed_seconds', 0.0):8.3f}s  {entry.get('file', '')}"
        print(f"{name:<{width}}  {status:<7}  {detail}")
    errors = sum(1 for entry in statuses.values() if entry["status"] == "error")
    print(
        f"suite: {len(statuses) - errors}/{len(statuses)} artifacts ok "
        f"in {time.time() - started:.1f}s -> {args.out}"
    )
    return 1 if errors else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from the PRACLeak/TPRAC paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all", "list", "suite"],
        help="which artifact to regenerate ('suite' for the parallel runner)",
    )
    parser.add_argument(
        "--nbo", type=int, nargs="*", help="Back-Off threshold(s) where applicable"
    )
    parser.add_argument(
        "--requests", type=int, help="per-core request / encryption budget"
    )
    parser.add_argument(
        "--workloads", nargs="*", help="workload names (default: balanced subset)"
    )
    suite = parser.add_argument_group("suite options")
    suite.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for 'suite' (default: cpu count)",
    )
    suite.add_argument(
        "--only", nargs="*", metavar="NAME",
        help="restrict 'suite' to these artifacts (default: all registered)",
    )
    suite.add_argument(
        "--out", default="results", help="results directory for 'suite'"
    )
    suite.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely (neither read nor write it)",
    )
    suite.add_argument(
        "--force", action="store_true",
        help="re-run even on a cache hit and refresh the cache entry",
    )
    suite.add_argument(
        "--full", action="store_true",
        help="paper-scale runs instead of quick laptop-scale",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment != "suite":
        suite_only = {
            "--jobs": args.jobs is not None,
            "--only": bool(args.only),
            "--out": args.out != "results",
            "--no-cache": args.no_cache,
            "--force": args.force,
            "--full": args.full,
        }
        used = [flag for flag, on in suite_only.items() if on]
        if used:
            print(
                f"error: {', '.join(used)} only applies to the 'suite' command",
                file=sys.stderr,
            )
            return 2
    if args.experiment == "list":
        for name in sorted(COMMANDS):
            print(name)
        return 0
    if args.experiment == "suite":
        return _run_suite(args)
    names = sorted(COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(COMMANDS[name](args))
        print(f"---- {name} done in {time.time() - started:.1f}s\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
