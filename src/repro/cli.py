"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro.cli list
    python -m repro.cli fig7
    python -m repro.cli table2 --nbo 256 512
    python -m repro.cli fig10 --requests 3000 --workloads 433.milc 470.lbm
    python -m repro.cli fig10 --scheduler fcfs --mapping linear
    python -m repro.cli all
    python -m repro.cli suite --jobs 8 --only fig10 table2
    python -m repro.cli suite --out results/ --full --no-cache
    python -m repro.cli suite --list
    python -m repro.cli campaign --campaign security --trials 5 --jobs 8
    python -m repro.cli campaign --grid attack=selftest mitigation=tprac,qprac \\
        nbo=64,128 --trials 3 --out results/
    python -m repro.cli campaign --grid attack=aes_side_channel \\
        mitigation=abo_only,tprac nbo=128,256 --resume
    python -m repro.cli campaign --grid channels=1,2,4 --trials 3
    python -m repro.cli campaign --grid scheduler=fr_fcfs,fcfs mapping=linear,mop
    python -m repro.cli fig10 --cache l1l2 --interconnect crossbar
    python -m repro.cli campaign --grid cache=l1l2 interconnect=crossbar \\
        scheduler=fr_fcfs,fcfs
    python -m repro.cli campaign --grid attack=eviction_set cache=l1l2 \\
        mitigation=abo_only,tprac --trials 5
    python -m repro.cli campaign --grid trace=true metrics=true --progress
    python -m repro.cli campaign --campaign security --timeout 120 --retries 3
    python -m repro.cli obs report results/
    python -m repro.cli obs export-trace results/obs/trace-abc123-s0.jsonl

Each artifact subcommand runs the matching harness from
:mod:`repro.experiments` and prints the regenerated rows/series,
plus an ASCII rendering where the paper's artifact is a plot.

``suite`` runs the registered artifact harnesses through the parallel,
fault-tolerant, cached orchestrator (:mod:`repro.experiments.runner`)
and persists JSON results + a ``summary.json`` index; ``suite --list``
prints the registry without running anything.

``campaign`` expands a declarative attack×defense grid into scenarios
(:mod:`repro.campaigns`) and runs batched seeded Monte Carlo trials
per scenario on a process pool; ``--resume`` skips scenarios already
persisted under their content-hash IDs, ``--list`` prints the expanded
grid without running it.

``bench`` measures kernel throughput (events/sec, simulated-ns/sec) on
the pinned workloads of :mod:`repro.bench` and writes a
``BENCH_<rev>.json`` into the committed trajectory directory
(``benchmarks/trajectory`` by default), with a soft regression warning
against the most recent baseline::

    python -m repro.cli bench                 # full: 5 reps + warmup
    python -m repro.cli bench --smoke         # 1 rep, CI-friendly
    python -m repro.cli bench --only perf_multi_core --reps 9
    python -m repro.cli bench --strict        # fail on acceptance regression

``obs`` reads back the telemetry a campaign collected (see
:mod:`repro.obs`): ``obs report <campaign-dir>`` summarizes the index,
heartbeat stream and per-trial traces/metrics; ``obs export-trace``
converts a JSONL trace into Chrome ``trace_event`` JSON for Perfetto.

``--verbose``/``--quiet`` adjust the structured logger level for any
command (key=value lines on stderr; results stay on stdout).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.analysis import plotting


def _run_fig3(args) -> str:
    from repro.experiments import fig3_latency

    result = fig3_latency.run(nbo=args.nbo[0] if args.nbo else 256)
    blocks = [result.format_table()]
    for label, timeline in result.timelines.items():
        blocks.append(
            plotting.latency_strip(
                timeline.times, timeline.latencies, title=label
            )
        )
    return "\n\n".join(blocks)


def _run_table2(args) -> str:
    from repro.experiments import table2_covert

    result = table2_covert.run(nbo_values=tuple(args.nbo or (256, 512, 1024)))
    return result.format_table()


def _run_fig4(args) -> str:
    from repro.experiments import fig4_side_channel

    result = fig4_side_channel.run(encryptions=args.requests or 200)
    attack = result.attack
    strip = plotting.latency_strip(
        [t for t, _ in attack.probe_timeline],
        [lat for _, lat in attack.probe_timeline],
        title="attacker probe latency (probe phase)",
    )
    return result.format_table() + "\n\n" + strip


def _run_fig5(args) -> str:
    from repro.experiments import fig5_key_sweep

    result = fig5_key_sweep.run(encryptions=args.requests or 200)
    matrix = []
    labels = []
    for attack in result.results:
        row = [attack.victim_histogram.get(r, 0) for r in range(16)]
        matrix.append(row)
        labels.append(f"k0={attack.true_nibble << 4:3d}")
    heat = plotting.heatmap(
        matrix, row_labels=labels, title="victim activations per row (x=row 0..15)"
    )
    return result.format_table() + "\n\n" + heat


def _run_fig7(args) -> str:
    from repro.experiments import fig7_security

    result = fig7_security.run()
    series = {
        "with reset": [
            (r.tb_window_trefi, r.tmax) for r in result.sweep["with_reset"]
        ],
        "without reset": [
            (r.tb_window_trefi, r.tmax) for r in result.sweep["without_reset"]
        ],
    }
    plot = plotting.line_plot(
        series, title="TMAX vs TB-Window (tREFI)", logy=True
    )
    return result.format_table() + "\n\n" + plot


def _run_fig9(args) -> str:
    from repro.experiments import fig9_defense

    result = fig9_defense.run(encryptions=args.requests or 150)
    return result.format_table()


def _perf_args(args) -> dict:
    return dict(
        workloads=args.workloads or None,
        requests_per_core=args.requests or None,
        system=_system_config(args),
    )


def _system_config(args):
    """``--scheduler/--mapping/--refresh`` -> SystemConfig (or None).

    None (no flag given) keeps the experiments on the default system —
    the historically hard-wired FR-FCFS / MOP / periodic assembly.
    """
    overrides = {
        name: value
        for name, value in (
            ("scheduler", args.scheduler),
            ("mapping", args.mapping),
            ("refresh", args.refresh),
            ("cache", args.cache),
            ("interconnect", args.interconnect),
            ("engine", args.engine),
        )
        if value is not None
    }
    if not overrides:
        return None
    from repro.config import SystemConfig

    return SystemConfig(**overrides).validate()


def _run_fig10(args) -> str:
    from repro.experiments import fig10_performance

    result = fig10_performance.run(**_perf_args(args))
    labels = list(result.matrix)
    chart = plotting.bar_chart(
        labels,
        [result.slowdown_pct(label) for label in labels],
        unit="%",
        title="geomean slowdown",
    )
    return result.format_table() + "\n\n" + chart


def _run_fig11(args) -> str:
    from repro.experiments import fig11_prac_levels

    return fig11_prac_levels.run(**_perf_args(args)).format_table()


def _run_fig12(args) -> str:
    from repro.experiments import fig12_tref

    return fig12_tref.run(**_perf_args(args)).format_table()


def _run_fig13(args) -> str:
    from repro.experiments import fig13_nrh

    result = fig13_nrh.run(**_perf_args(args))
    series = {
        design: [
            (nrh, result.slowdown_pct(nrh, design)) for nrh in sorted(result.by_nrh)
        ]
        for design in ("abo_only", "abo_acb", "tprac")
    }
    plot = plotting.line_plot(series, title="slowdown% vs N_RH")
    return result.format_table() + "\n\n" + plot


def _run_fig14(args) -> str:
    from repro.experiments import fig14_reset

    return fig14_reset.run(**_perf_args(args)).format_table()


def _run_table5(args) -> str:
    from repro.experiments import table5_energy

    return table5_energy.run(**_perf_args(args)).format_table()


def _run_fig8(args) -> str:
    from repro.experiments import fig8_walkthrough

    return fig8_walkthrough.run(nbo=args.nbo[0] if args.nbo else 100).format_table()


def _run_scorecard(args) -> str:
    from repro.experiments import scorecard

    return scorecard.run().format_table()


def _run_obfuscation(args) -> str:
    from repro.experiments import obfuscation_defense

    return obfuscation_defense.run().format_table()


COMMANDS: Dict[str, Callable] = {
    "fig3": _run_fig3,
    "table2": _run_table2,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "table5": _run_table5,
    "scorecard": _run_scorecard,
    "obfuscation": _run_obfuscation,
}


def _list_artifacts() -> int:
    """``suite --list``: print the registry without running anything."""
    from repro.experiments import registry

    specs = registry.discover()
    width = max(len(name) for name in specs)
    art_width = max(len(spec.artifact) for spec in specs.values())
    for name in sorted(specs):
        spec = specs[name]
        kwargs = []
        if spec.quick:
            kwargs.append("quick: " + _format_kwargs(spec.quick))
        if spec.full:
            kwargs.append("full: " + _format_kwargs(spec.full))
        detail = f"  [{'; '.join(kwargs)}]" if kwargs else ""
        print(
            f"{name:<{width}}  {spec.artifact:<{art_width}}  {spec.title}{detail}"
        )
    return 0


def _format_kwargs(kwargs) -> str:
    return ", ".join(f"{k}={v!r}" for k, v in sorted(kwargs.items()))


def _run_suite(args) -> int:
    """``suite`` subcommand: parallel cached run over registered artifacts."""
    from repro.experiments import registry, runner

    if args.out is None:
        args.out = "results"
    if args.list:
        return _list_artifacts()
    if args.only is not None and not args.only:
        print("error: --only given but no artifact names followed", file=sys.stderr)
        return 2
    artifact_flags = [
        flag
        for flag, on in (
            ("--nbo", args.nbo is not None),
            ("--requests", args.requests is not None),
            ("--workloads", args.workloads is not None),
        )
        if on
    ]
    if artifact_flags:
        print(
            f"error: not applicable to 'suite': {', '.join(artifact_flags)} "
            "(scale is controlled by --full and the registry's ARTIFACT kwargs)",
            file=sys.stderr,
        )
        return 2
    started = time.time()
    try:
        runner.run_suite(
            args.out,
            experiments=args.only or None,
            jobs=args.jobs,
            scale="full" if args.full else "quick",
            use_cache=not args.no_cache,
            force=args.force,
            retries=args.retries if args.retries is not None else 2,
            timeout=args.timeout,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            f"suite: interrupted after {time.time() - started:.1f}s; "
            f"completed artifacts are cached in {args.out} and a re-run "
            "picks up where this one stopped",
            file=sys.stderr,
        )
        return 130
    # summary.json keeps history across runs; report/exit only on the
    # artifacts this invocation actually covered.
    requested = set(args.only) if args.only else set(registry.discover())
    statuses = {
        entry["experiment"]: entry
        for entry in runner.load_summary(args.out)
        if entry["experiment"] in requested
    }
    width = max(len(name) for name in statuses) if statuses else 0
    for name, entry in statuses.items():
        status = entry["status"]
        if status == "error":
            detail = f"{entry['error']['type']}: {entry['error']['message']}"
        else:
            detail = f"{entry.get('elapsed_seconds', 0.0):8.3f}s  {entry.get('file', '')}"
        print(f"{name:<{width}}  {status:<7}  {detail}")
    errors = sum(1 for entry in statuses.values() if entry["status"] == "error")
    print(
        f"suite: {len(statuses) - errors}/{len(statuses)} artifacts ok "
        f"in {time.time() - started:.1f}s -> {args.out}"
    )
    return 1 if errors else 0


#: artifact commands whose harnesses accept ``system=`` (the perf
#: matrix family); the only commands the structural flags apply to.
PERF_SYSTEM_COMMANDS = {"fig10", "fig11", "fig12", "fig13", "fig14", "table5"}

#: default committed trajectory directory for ``bench`` results
BENCH_TRAJECTORY_DIR = "benchmarks/trajectory"


def _run_bench(args) -> int:
    """``bench`` subcommand: pinned-workload kernel throughput."""
    from repro import bench

    if args.list:
        width = max(len(n) for n in bench.workload_names())
        for name in bench.workload_names():
            workload = bench.get_workload(name)
            mark = "*" if workload.acceptance else " "
            print(f"{mark} {name:<{width}}  {workload.title}")
        print("(* = acceptance workload)")
        return 0
    if args.only is not None and not args.only:
        print("error: --only given but no workload names followed",
              file=sys.stderr)
        return 2
    names = None
    if args.only:
        try:
            for name in args.only:
                bench.get_workload(name)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        names = args.only
    reps = args.reps if args.reps is not None else (1 if args.smoke else bench.DEFAULT_REPS)
    warmup = (
        args.warmup
        if args.warmup is not None
        else (0 if args.smoke else bench.DEFAULT_WARMUP)
    )
    if reps <= 0 or warmup < 0:
        print("error: --reps must be positive and --warmup non-negative",
              file=sys.stderr)
        return 2
    rev = args.rev or bench.detect_revision()
    out_dir = args.out if args.out is not None else BENCH_TRAJECTORY_DIR
    report = bench.run_bench(names, reps=reps, warmup=warmup, rev=rev)
    # Baseline: explicit file/dir beats the output dir beats the
    # committed trajectory.  Comparison is soft — warnings, exit 0.
    import os

    baseline = None
    baseline_file = None
    if args.baseline:
        baseline_path = args.baseline
        if os.path.isdir(baseline_path):
            baseline, baseline_file = bench.find_baseline_with_path(
                baseline_path, exclude_rev=rev
            )
        else:
            try:
                baseline = bench.load_report(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"error: cannot read baseline: {exc}", file=sys.stderr)
                return 2
            baseline_file = baseline_path
    else:
        for search_dir in (out_dir, BENCH_TRAJECTORY_DIR):
            baseline, baseline_file = bench.find_baseline_with_path(
                search_dir, exclude_rev=rev
            )
            if baseline is not None:
                break
    if baseline is not None:
        report["comparison"] = bench.compare(report, baseline)
    path = bench.write_report(report, out_dir)
    print(bench.format_report(report))
    if baseline_file is not None:
        print(f"baseline: {baseline_file}")
    else:
        print("baseline: none found (first trajectory point?)")
    print(f"-> {path}")
    # --strict turns the soft acceptance-workload warning into a hard
    # failure; other workloads stay advisory (they are noise-prone
    # microbenches) and a missing baseline still passes (first point).
    if args.strict and baseline is not None:
        comparison = report["comparison"]
        regressed = [
            name
            for name, ratio in comparison["ratios"].items()
            if report["workloads"].get(name, {}).get("acceptance")
            and ratio < 1.0 - bench.REGRESSION_THRESHOLD
        ]
        if regressed:
            print(
                f"error: acceptance workload regression beyond "
                f"{bench.REGRESSION_THRESHOLD:.0%} vs baseline rev "
                f"{comparison.get('baseline_rev')}: {', '.join(regressed)}",
                file=sys.stderr,
            )
            return 1
    return 0


def _run_campaign(args) -> int:
    """``campaign`` subcommand: declarative grid + Monte Carlo trials."""
    from repro import campaigns

    if args.out is None:
        args.out = "results"
    if args.grid is not None and not args.grid:
        print("error: --grid given but no axis=values tokens followed",
              file=sys.stderr)
        return 2
    try:
        if args.grid is not None:
            axes = campaigns.parse_grid_tokens(args.grid)
            # Device-only sweeps (e.g. --grid channels=1,2,4) default to
            # a perf scenario on a pinned workload so the grid runs
            # without requiring the attack/workload axes to be spelled.
            defaults = []
            if "attack" not in axes:
                axes = {"attack": ["perf"], **axes}
                defaults.append("attack=perf")
            if axes["attack"] == ["perf"] and "workload" not in axes:
                axes["workload"] = ["433.milc"]
                defaults.append("workload=433.milc")
            if defaults:
                print(f"note: defaulting {' '.join(defaults)}")
            scenarios = campaigns.expand_grid(axes)
        else:
            scenarios = campaigns.builtin_scenarios(args.campaign or "security")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.only:
        tokens = list(args.only)
        scenarios = [
            s
            for s in scenarios
            if any(t in s.label or s.scenario_id.startswith(t) for t in tokens)
        ]
        if not scenarios:
            print("error: --only matched no scenarios", file=sys.stderr)
            return 2
    if args.list:
        width = max(len(s.label) for s in scenarios)
        for scenario in scenarios:
            print(f"{scenario.scenario_id}  {scenario.label:<{width}}")
        print(f"{len(scenarios)} scenarios")
        return 0

    started = time.time()
    trials = args.trials if args.trials is not None else 3
    on_event = None
    if args.progress:
        from repro.obs.progress import CampaignProgressRenderer

        on_event = CampaignProgressRenderer().on_event
    try:
        result = campaigns.run_campaign(
            scenarios,
            args.out,
            trials=trials,
            jobs=args.jobs,
            seed=args.seed or 0,
            resume=args.resume,
            retries=args.retries if args.retries is not None else 2,
            timeout=args.timeout,
            on_event=on_event,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            f"campaign: interrupted after {time.time() - started:.1f}s; "
            f"partial results flushed to {args.out} (re-run with --resume "
            "to continue)",
            file=sys.stderr,
        )
        return 130
    width = max(len(label) for label in result.labels.values())
    for scenario in scenarios:
        sid = scenario.scenario_id
        status = result.statuses[sid]
        detail = ""
        doc = campaigns.load_scenario_result(result.paths[sid])
        if status != "cached":
            detail = f"{doc.get('trials_ok', 0)}/{trials} trials ok"
        means = "  ".join(
            f"{name}={stats['mean']:.4g}"
            for name, stats in doc.get("metrics", {}).items()
        )
        print(
            f"{result.labels[sid]:<{width}}  {status:<7}  {detail:<14}  {means}"
        )
    print(
        f"campaign: {result.scenarios_ok}/{len(result.statuses)} scenarios ok "
        f"({trials} trials each) in {time.time() - started:.1f}s "
        f"-> {result.output_dir}"
    )
    return 1 if result.had_errors else 0


def _run_obs(args) -> int:
    """``obs`` subcommand: campaign telemetry reports + trace export."""
    from repro.obs import report as obs_report

    tokens = list(args.obs_args)
    if not tokens:
        print(
            "error: obs needs a subcommand: report [campaign-dir] | "
            "export-trace TRACE.jsonl [--out FILE]",
            file=sys.stderr,
        )
        return 2
    sub, rest = tokens[0], tokens[1:]
    if sub == "report":
        if len(rest) > 1:
            print("error: obs report takes at most one campaign directory",
                  file=sys.stderr)
            return 2
        directory = rest[0] if rest else (args.out or "results")
        try:
            print(obs_report.campaign_report(directory))
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    if sub == "export-trace":
        if len(rest) != 1:
            print("error: obs export-trace takes exactly one trace JSONL path",
                  file=sys.stderr)
            return 2
        try:
            out = obs_report.export_trace(rest[0], out=args.out)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"-> {out}")
        return 0
    print(
        f"error: unknown obs subcommand {sub!r}; expected "
        "'report' or 'export-trace'",
        file=sys.stderr,
    )
    return 2


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from the PRACLeak/TPRAC paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS)
        + ["all", "bench", "campaign", "list", "obs", "suite"],
        help=(
            "which artifact to regenerate ('suite' for the parallel runner, "
            "'campaign' for declarative scenario sweeps, 'bench' for the "
            "kernel performance harness, 'obs' for telemetry reports)"
        ),
    )
    parser.add_argument(
        "obs_args", nargs="*", metavar="OBS_ARG",
        help=(
            "'obs' subcommand and operands: report [campaign-dir] | "
            "export-trace TRACE.jsonl"
        ),
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose", action="store_true",
        help="debug-level structured logs on stderr (any command)",
    )
    verbosity.add_argument(
        "--quiet", action="store_true",
        help="suppress structured logs below warning (any command)",
    )
    parser.add_argument(
        "--nbo", type=int, nargs="*", help="Back-Off threshold(s) where applicable"
    )
    parser.add_argument(
        "--requests", type=int, help="per-core request / encryption budget"
    )
    parser.add_argument(
        "--workloads", nargs="*", help="workload names (default: balanced subset)"
    )
    parser.add_argument(
        "--scheduler", default=None, metavar="NAME",
        help="request scheduler for the perf artifacts "
             "(fr_fcfs/fcfs/fr_fcfs_cap; default fr_fcfs)",
    )
    parser.add_argument(
        "--mapping", default=None, metavar="NAME",
        help="address mapping for the perf artifacts (linear/mop; default mop)",
    )
    parser.add_argument(
        "--refresh", default=None, metavar="NAME",
        help="refresh policy for the perf artifacts "
             "(periodic/staggered; default periodic)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="NAME",
        help="cache hierarchy for the perf artifacts "
             "(none/l1l2; default none, the direct core->DRAM wiring)",
    )
    parser.add_argument(
        "--interconnect", default=None, metavar="NAME",
        help="cache<->memory interconnect for the perf artifacts "
             "(none/fixed/crossbar; default none)",
    )
    parser.add_argument(
        "--engine", default=None, metavar="NAME",
        help="execution backend for the perf artifacts "
             "(event/batched/sharded; default event, the exact "
             "reference kernel)",
    )
    shared = parser.add_argument_group("suite/campaign shared options")
    shared.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: cpu count)",
    )
    shared.add_argument(
        "--only", nargs="*", metavar="NAME",
        help=(
            "restrict 'suite' to these artifacts / 'campaign' to scenarios "
            "whose label contains or id starts with any NAME"
        ),
    )
    shared.add_argument(
        "--out", default=None,
        help="results directory (default: 'results'; for 'bench' the "
             "committed trajectory, benchmarks/trajectory)",
    )
    shared.add_argument(
        "--list", action="store_true",
        help=(
            "print what would run — registered artifacts for 'suite', the "
            "expanded grid for 'campaign' — without running anything"
        ),
    )
    shared.add_argument(
        "--retries", type=int, default=None,
        help="transient-failure retry budget per task before quarantine "
             "(default 2; deterministic failures are never retried)",
    )
    shared.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock deadline; a hung worker is killed, "
             "the pool rebuilt, and the task charged a transient attempt "
             "(default: no deadline; needs --jobs > 1)",
    )
    suite = parser.add_argument_group("suite options")
    suite.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely (neither read nor write it)",
    )
    suite.add_argument(
        "--force", action="store_true",
        help="re-run even on a cache hit and refresh the cache entry",
    )
    suite.add_argument(
        "--full", action="store_true",
        help="paper-scale runs instead of quick laptop-scale",
    )
    campaign = parser.add_argument_group("campaign options")
    campaign.add_argument(
        "--grid", nargs="*", metavar="AXIS=V1,V2",
        help=(
            "grid axes, e.g. attack=aes_side_channel mitigation=abo_only,tprac "
            "nbo=128,256 channels=1,2,4 scheduler=fr_fcfs,fcfs "
            "mapping=linear,mop refresh=periodic,staggered; unknown axes "
            "become per-scenario params; a grid without an attack axis "
            "defaults to a perf sweep on the 433.milc workload"
        ),
    )
    campaign.add_argument(
        "--campaign", default=None, metavar="NAME",
        help="built-in campaign to run when no --grid is given "
             "(security/perf/smoke; default security)",
    )
    campaign.add_argument(
        "--trials", type=int, default=None,
        help="Monte Carlo trials per scenario (default 3; trial t uses seed+t)",
    )
    campaign.add_argument(
        "--seed", type=int, default=None,
        help="base seed for the trial sequence (default 0)",
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="skip scenarios whose persisted results match their "
             "content-hash cache key and trial count",
    )
    campaign.add_argument(
        "--progress", action="store_true",
        help="live progress line on stderr driven by campaign heartbeat "
             "events (scenarios/trials done, faults)",
    )
    bench_group = parser.add_argument_group("bench options")
    bench_group.add_argument(
        "--smoke", action="store_true",
        help="single repetition, no warmup (CI-friendly; soft compare only)",
    )
    bench_group.add_argument(
        "--reps", type=int, default=None,
        help="timed repetitions per workload (default 5; best rep reported)",
    )
    bench_group.add_argument(
        "--warmup", type=int, default=None,
        help="untimed warmup repetitions per workload (default 2)",
    )
    bench_group.add_argument(
        "--rev", default=None, metavar="LABEL",
        help="revision label for BENCH_<rev>.json (default: git short rev)",
    )
    bench_group.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="BENCH json file or trajectory directory to compare against "
             "(default: newest report in the output/trajectory directory)",
    )
    bench_group.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when the acceptance workload regresses beyond "
             "the threshold vs baseline (other workloads stay advisory)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.verbose or args.quiet:
        from repro.obs.log import set_verbosity

        set_verbosity("debug" if args.verbose else "quiet")
    if args.obs_args and args.experiment != "obs":
        print(
            f"error: trailing arguments {args.obs_args} only apply to 'obs'",
            file=sys.stderr,
        )
        return 2
    flags_used = {
        "--jobs": args.jobs is not None,
        "--only": bool(args.only),
        "--out": args.out is not None,
        "--list": args.list,
        "--no-cache": args.no_cache,
        "--force": args.force,
        "--full": args.full,
        "--grid": args.grid is not None,
        "--campaign": args.campaign is not None,
        "--trials": args.trials is not None,
        "--seed": args.seed is not None,
        "--resume": args.resume,
        "--retries": args.retries is not None,
        "--timeout": args.timeout is not None,
        "--smoke": args.smoke,
        "--reps": args.reps is not None,
        "--warmup": args.warmup is not None,
        "--rev": args.rev is not None,
        "--baseline": args.baseline is not None,
        "--progress": args.progress,
        "--strict": args.strict,
    }
    allowed = {
        "suite": {"--jobs", "--only", "--out", "--list", "--no-cache",
                  "--force", "--full", "--retries", "--timeout"},
        "campaign": {"--jobs", "--only", "--out", "--list", "--grid",
                     "--campaign", "--trials", "--seed", "--resume",
                     "--progress", "--retries", "--timeout"},
        "bench": {"--only", "--out", "--list", "--smoke", "--reps",
                  "--warmup", "--rev", "--baseline", "--strict"},
        "obs": {"--out"},
    }.get(args.experiment, set())
    rejected = [
        flag for flag, on in flags_used.items() if on and flag not in allowed
    ]
    if rejected:
        applies = "'suite'/'campaign'/'bench'/'obs'" if not allowed else (
            f"'{args.experiment}'"
        )
        scope = (
            f"not applicable to {applies}"
            if allowed
            else "only applies to the 'suite', 'campaign', 'bench' "
                 "and 'obs' commands"
        )
        print(f"error: {', '.join(rejected)} {scope}", file=sys.stderr)
        return 2
    if args.retries is not None and args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    # The structural flags only reach the perf harnesses (which thread
    # system= through run_perf_matrix/build_system); reject them
    # anywhere else so they can never be accepted-and-ignored —
    # campaign sweeps these axes via --grid scheduler=... instead.
    system_flags = [
        flag
        for flag, on in (
            ("--scheduler", args.scheduler is not None),
            ("--mapping", args.mapping is not None),
            ("--refresh", args.refresh is not None),
            ("--cache", args.cache is not None),
            ("--interconnect", args.interconnect is not None),
            ("--engine", args.engine is not None),
        )
        if on
    ]
    if system_flags and args.experiment not in PERF_SYSTEM_COMMANDS | {"all"}:
        hint = (
            " (campaign sweeps these via --grid scheduler=... mapping=...)"
            if args.experiment == "campaign"
            else ""
        )
        print(
            f"error: {', '.join(system_flags)} only applies to the perf "
            f"artifacts ({', '.join(sorted(PERF_SYSTEM_COMMANDS))}) and "
            f"'all'{hint}",
            file=sys.stderr,
        )
        return 2
    # Validate registry-backed flags up front so a typo yields the
    # uniform registry error, not a traceback from inside a harness.
    try:
        _system_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.experiment == "list":
        for name in sorted(COMMANDS):
            print(name)
        return 0
    if args.experiment == "suite":
        return _run_suite(args)
    if args.experiment == "campaign":
        return _run_campaign(args)
    if args.experiment == "bench":
        return _run_bench(args)
    if args.experiment == "obs":
        return _run_obs(args)
    names = sorted(COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(COMMANDS[name](args))
        print(f"---- {name} done in {time.time() - started:.1f}s\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
