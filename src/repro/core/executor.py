"""Shared process-pool execution with per-task fault isolation.

Both orchestration layers — the artifact suite
(:mod:`repro.experiments.runner`) and the scenario campaign engine
(:mod:`repro.campaigns.trials`) — fan independent simulations out over
a :class:`~concurrent.futures.ProcessPoolExecutor`.  This module holds
the machinery they share so the two subsystems cannot drift:

* **JSON-able payloads** — :func:`to_jsonable` converts arbitrary
  result objects (dataclasses, tuples, non-string dict keys) into
  plain JSON types, because everything crossing the pool boundary is
  persisted to disk afterwards.
* **Structured errors** — :func:`error_entry` folds an exception into a
  ``{"type", "message", "traceback"}`` dict; a crashing task becomes a
  recordable result instead of aborting the run.
* **The pool loop** — :func:`map_tasks` runs module-level worker
  functions over picklable argument tuples, yielding ``(key, payload)``
  pairs in completion order.
* **The supervisor** — :func:`supervise_tasks` is the fault-tolerant
  pool loop both front-ends actually run on: every task gets a
  wall-clock **deadline**, failures are classified **transient vs
  deterministic** (:class:`TransientError`, broken pools and deadline
  expiries are transient; ordinary harness exceptions are not),
  transient failures are **retried** with seeded exponential backoff +
  jitter (:class:`RetryPolicy`), a worker killed hard enough to break
  the shared pool triggers a **pool rebuild** that requeues only the
  in-flight tasks instead of poisoning the batch, and tasks that keep
  failing are **quarantined** as structured ``{"status":
  "quarantined", "attempts": [...]}`` payloads.

Workers must be module-level functions and their arguments/payloads
picklable; closures do not survive the pool boundary.  The supervisor
additionally exposes the deterministic fault-injection hook of
:mod:`repro.faults` at the worker boundary (env-gated via
``REPRO_FAULT_PLAN``; zero-cost when unset), so the retry/recovery
machinery above is itself exercised by chaos runs, not just mocks.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import heapq
import itertools
import os
import random
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "RetryPolicy",
    "ShardProcess",
    "TransientError",
    "error_entry",
    "map_tasks",
    "supervise_tasks",
    "task_id_of",
    "to_jsonable",
]

#: Environment variable naming (or inlining) the active fault plan; see
#: :mod:`repro.faults`.  Checked by name here so the fault-free path
#: never imports the faults package.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Synthesized error type recorded when a task blows its deadline.
DEADLINE_ERROR_TYPE = "TaskDeadlineExceeded"

#: ``on_event`` subscriber signature for :func:`supervise_tasks`.
SuperviseEventFn = Callable[[str, Dict[str, Any]], None]


class TransientError(RuntimeError):
    """Failures worth retrying: infrastructure trouble, not task logic.

    Raise (or subclass) this from a worker to mark the failure as
    retryable; the supervisor also treats broken pools, connection/EOF
    errors and deadline expiries as transient.  Everything else is
    deterministic — retrying would only reproduce it.
    """


#: Exception types classified transient wherever :func:`error_entry`
#: records them.  ``concurrent.futures.TimeoutError`` is a distinct
#: class from the builtin on older interpreters, so both are listed.
TRANSIENT_EXCEPTIONS: Tuple[Type[BaseException], ...] = (
    TransientError,
    BrokenProcessPool,
    ConnectionError,
    EOFError,
    TimeoutError,
    concurrent.futures.TimeoutError,
)


def to_jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples/dict-keys to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): to_jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def error_entry(exc: BaseException, with_traceback: bool = True) -> Dict[str, Any]:
    """Fold an exception into the structured error dict persisted on disk.

    The traceback is rendered from the exception object itself
    (``traceback.format_exception``), not the ambient ``sys.exc_info``
    state, so the entry is correct even when built outside an active
    ``except`` block — e.g. folding a future's exception after
    ``as_completed``.  Transient failures (see
    :data:`TRANSIENT_EXCEPTIONS`) carry ``"transient": true`` so the
    classification crosses the process-pool boundary with the payload.
    """
    entry: Dict[str, Any] = {"type": type(exc).__name__, "message": str(exc)}
    if with_traceback:
        entry["traceback"] = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    if isinstance(exc, TRANSIENT_EXCEPTIONS):
        entry["transient"] = True
    return entry


def task_id_of(key: Any) -> str:
    """Canonical string identity of a task key (fault-plan matching).

    Tuple keys join with ``:`` — a campaign trial keyed ``(sid, t)``
    becomes ``"<sid>:<t>"`` — so seeded fault plans can address
    individual tasks with stable ``fnmatch`` patterns.
    """
    if isinstance(key, tuple):
        return ":".join(str(part) for part in key)
    return str(key)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Deadline/retry/backoff knobs for :func:`supervise_tasks`.

    ``retries`` is the transient-failure retry budget *per task* (total
    attempts = retries + 1); deterministic failures are never retried.
    ``timeout`` is the per-attempt wall-clock deadline in seconds
    (pool mode only — an in-process worker cannot be preempted), after
    which the hung worker is killed, the pool rebuilt, and the task
    charged a transient attempt.  Backoff before retry ``n`` (1-based)
    is ``min(backoff_max, backoff_base * backoff_factor**(n-1))``
    scaled by a seeded jitter in ``[1-jitter, 1+jitter]`` — the jitter
    RNG is derived from ``(seed, task, attempt)`` so reruns sleep
    identically.
    """

    retries: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    @property
    def max_attempts(self) -> int:
        return max(1, self.retries + 1)

    def backoff_delay(self, task_id: str, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based) of a task."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        rng = random.Random(f"{self.seed}:{task_id}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def validate(self) -> "RetryPolicy":
        """Check every knob, returning ``self`` for chaining."""
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")
        return self


def _transient_entry_of(payload: Any) -> Optional[Dict[str, Any]]:
    """The error entry when ``payload`` records a *transient* failure."""
    if not isinstance(payload, dict) or payload.get("status") != "error":
        return None
    entry = payload.get("error")
    if isinstance(entry, dict) and entry.get("transient"):
        return entry
    return None


def _deadline_entry(timeout: float, attempt: int) -> Dict[str, Any]:
    return {
        "type": DEADLINE_ERROR_TYPE,
        "message": (
            f"task exceeded its {timeout:g}s wall-clock deadline "
            f"(attempt {attempt})"
        ),
        "transient": True,
    }


def _run_task(
    worker: Callable[..., Dict[str, Any]],
    args: Tuple[Any, ...],
    task_id: str,
    attempt: int,
) -> Dict[str, Any]:
    """Worker-process entry point wrapping the real worker function.

    This is the boundary where the deterministic fault-injection hook
    fires (env-gated; see :mod:`repro.faults`): a plan rule matching
    ``(task_id, attempt)`` can raise, hang, crash the process, or delay
    before the real worker runs.  With ``REPRO_FAULT_PLAN`` unset this
    adds one dict lookup to the fault-free path.
    """
    if os.environ.get(FAULT_PLAN_ENV):
        from repro import faults

        faults.fire(task_id, attempt)
    return worker(*args)


# ----------------------------------------------------------------------
# Plain pool loop (legacy contract: no retries, batch poisoned by a
# broken pool).  Kept for callers that want the raw behavior; both
# orchestration front-ends run on supervise_tasks below.
# ----------------------------------------------------------------------
def map_tasks(
    worker: Callable[..., Dict[str, Any]],
    tasks: Iterable[Tuple[Any, Tuple[Any, ...]]],
    *,
    jobs: Optional[int] = None,
) -> Iterator[Tuple[Any, Dict[str, Any]]]:
    """Run ``worker(*args)`` for every ``(key, args)`` task.

    Yields ``(key, payload)`` in completion order.  With ``jobs > 1``
    and more than one task, work fans out over a process pool sized
    ``min(jobs, len(tasks))`` (``jobs=None`` means ``os.cpu_count()``);
    otherwise everything runs inline in the caller's process.

    The worker should return a dict with a ``"status"`` key and never
    raise (catch exceptions into :func:`error_entry` payloads so the
    traceback captured is the worker-process one).  If the worker leaks
    an exception anyway, or the future itself fails — broken pool,
    unpicklable payload — the yielded payload is ``{"status": "error",
    "error": error_entry(exc)}``.
    """
    task_list = list(tasks)
    max_workers = jobs if jobs is not None else (os.cpu_count() or 1)
    if max_workers > 1 and len(task_list) > 1:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(max_workers, len(task_list))
        ) as pool:
            futures = {
                pool.submit(worker, *args): key for key, args in task_list
            }
            for future in concurrent.futures.as_completed(futures):
                key = futures[future]
                try:
                    payload = future.result()
                except Exception as exc:  # e.g. BrokenProcessPool
                    payload = {"status": "error", "error": error_entry(exc)}
                yield key, payload
    else:
        for key, args in task_list:
            try:
                payload = worker(*args)
            except Exception as exc:
                payload = {"status": "error", "error": error_entry(exc)}
            yield key, payload


# ----------------------------------------------------------------------
# Supervised pool loop: deadlines, retries, pool recovery, quarantine
# ----------------------------------------------------------------------
@dataclass
class _Task:
    """Supervisor-side state for one task across its attempts."""

    key: Any
    args: Tuple[Any, ...]
    task_id: str
    attempt: int = 0
    errors: List[Dict[str, Any]] = field(default_factory=list)


def _now() -> float:
    """Wall-clock for deadlines/backoff (harness concern, never results)."""
    return time.monotonic()  # repro-lint: allow(wall-clock)


def supervise_tasks(
    worker: Callable[..., Dict[str, Any]],
    tasks: Iterable[Tuple[Any, Tuple[Any, ...]]],
    *,
    jobs: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    on_event: Optional[SuperviseEventFn] = None,
) -> Iterator[Tuple[Any, Dict[str, Any]]]:
    """Fault-tolerant :func:`map_tasks`: deadlines, retries, recovery.

    Same contract — yields ``(key, payload)`` in completion order, a
    fault-free run produces payloads byte-identical to ``map_tasks`` —
    plus the resilience semantics of :class:`RetryPolicy`:

    * a payload recording a **transient** failure (see
      :func:`error_entry`) is retried with seeded backoff until the
      attempt budget runs out, then yielded as ``{"status":
      "quarantined", "attempts": [...], "error": <last>}``;
    * **deterministic** failures yield immediately (retrying would only
      reproduce them), annotated with ``attempt_errors`` when earlier
      transient attempts preceded them;
    * a task exceeding ``policy.timeout`` has its worker killed and the
      pool rebuilt; the hung task is charged a transient attempt while
      the other in-flight tasks are requeued free of charge;
    * a **broken pool** (worker crashed hard) is rebuilt and every
      in-flight task requeued, each charged one transient attempt (the
      culprit cannot be told apart from its collateral);
    * tasks that succeed after retries carry ``"retries": n`` and
      ``"attempt_errors": [...]`` forensic annotations.

    ``on_event`` (optional) observes the recovery machinery:
    ``task.retry``, ``task.timeout``, ``task.quarantined`` and
    ``pool.rebuild`` events with structured fields.

    ``KeyboardInterrupt`` aborts cleanly: pending futures are
    cancelled, worker processes terminated, and the interrupt
    re-raised — no orphaned pool.
    """
    policy = (policy or RetryPolicy()).validate()
    task_list = [
        _Task(key=key, args=tuple(args), task_id=task_id_of(key))
        for key, args in tasks
    ]
    seen: Dict[str, int] = {}
    for task in task_list:
        seen[task.task_id] = seen.get(task.task_id, 0) + 1
    duplicates = sorted(tid for tid, count in seen.items() if count > 1)
    if duplicates:
        raise ValueError(f"duplicate task ids: {duplicates}")

    max_workers = jobs if jobs is not None else (os.cpu_count() or 1)
    if max_workers > 1 and len(task_list) > 1:
        yield from _supervise_pool(
            worker,
            task_list,
            min(max_workers, len(task_list)),
            policy,
            on_event,
        )
    else:
        yield from _supervise_inline(worker, task_list, policy, on_event)


def _emit(
    on_event: Optional[SuperviseEventFn], event: str, **fields: Any
) -> None:
    if on_event is not None:
        on_event(event, fields)


def _final_payload(task: _Task, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Attach retry forensics to a task's final (non-quarantine) payload."""
    if not task.errors:
        return payload
    annotated = dict(payload)
    annotated["retries"] = len(task.errors)
    annotated["attempt_errors"] = list(task.errors)
    return annotated


def _quarantine_payload(task: _Task) -> Dict[str, Any]:
    return {
        "status": "quarantined",
        "attempts": list(task.errors),
        "error": dict(task.errors[-1]) if task.errors else {},
    }


class _Supervisor:
    """Bookkeeping shared by the pool loop's failure paths."""

    def __init__(
        self,
        policy: RetryPolicy,
        on_event: Optional[SuperviseEventFn],
    ) -> None:
        self.policy = policy
        self.on_event = on_event
        self.pending: Deque[_Task] = collections.deque()
        #: min-heap of (ready_time, tiebreak, task) awaiting backoff
        self.retry_heap: List[Tuple[float, int, _Task]] = []
        self._tie = itertools.count()
        #: finalized (key, payload) pairs awaiting yield
        self.ready: List[Tuple[Any, Dict[str, Any]]] = []

    def transient_failure(self, task: _Task, entry: Dict[str, Any]) -> None:
        """Charge one transient attempt: schedule a retry or quarantine."""
        task.errors.append(entry)
        if task.attempt + 1 < self.policy.max_attempts:
            task.attempt += 1
            delay = self.policy.backoff_delay(task.task_id, task.attempt)
            _emit(
                self.on_event,
                "task.retry",
                key=task.key,
                task=task.task_id,
                attempt=task.attempt,
                delay=round(delay, 3),
                error_type=str(entry.get("type", "?")),
                error=str(entry.get("message", "")),
            )
            heapq.heappush(
                self.retry_heap, (_now() + delay, next(self._tie), task)
            )
        else:
            _emit(
                self.on_event,
                "task.quarantined",
                key=task.key,
                task=task.task_id,
                attempts=len(task.errors),
                error_type=str(entry.get("type", "?")),
                error=str(entry.get("message", "")),
            )
            self.ready.append((task.key, _quarantine_payload(task)))

    def finish(self, task: _Task, payload: Dict[str, Any]) -> None:
        """Route one attempt's payload: retry transient, else finalize."""
        entry = _transient_entry_of(payload)
        if entry is not None:
            self.transient_failure(task, entry)
        else:
            self.ready.append((task.key, _final_payload(task, payload)))

    def collect_ripe_retries(self) -> None:
        now = _now()
        while self.retry_heap and self.retry_heap[0][0] <= now:
            self.pending.append(heapq.heappop(self.retry_heap)[2])

    def drain_ready(self) -> List[Tuple[Any, Dict[str, Any]]]:
        out, self.ready = self.ready, []
        return out


def _terminate_pool(pool: concurrent.futures.ProcessPoolExecutor) -> None:
    """Hard-stop a pool: kill worker processes, drop queued work."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # already dead / closed
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _supervise_pool(
    worker: Callable[..., Dict[str, Any]],
    task_list: List[_Task],
    width: int,
    policy: RetryPolicy,
    on_event: Optional[SuperviseEventFn],
) -> Iterator[Tuple[Any, Dict[str, Any]]]:
    state = _Supervisor(policy, on_event)
    state.pending.extend(task_list)
    #: future -> (task, absolute deadline or None)
    running: Dict[
        "concurrent.futures.Future[Dict[str, Any]]",
        Tuple[_Task, Optional[float]],
    ] = {}
    pool = concurrent.futures.ProcessPoolExecutor(max_workers=width)
    finished_cleanly = False

    def submit(task: _Task) -> bool:
        """Submit one attempt; False when the pool is already broken."""
        deadline = (
            _now() + policy.timeout if policy.timeout is not None else None
        )
        try:
            future = pool.submit(
                _run_task, worker, task.args, task.task_id, task.attempt
            )
        except (BrokenProcessPool, RuntimeError):
            state.pending.appendleft(task)
            return False
        running[future] = (task, deadline)
        return True

    def rebuild_pool(reason: str, inflight: int) -> None:
        nonlocal pool
        _terminate_pool(pool)
        _emit(
            on_event,
            "pool.rebuild",
            reason=reason,
            inflight=inflight,
            pending=len(state.pending),
        )
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=width)

    def wait_timeout() -> Optional[float]:
        """How long the wait may block before a deadline/retry is due."""
        now = _now()
        deltas = [ready - now for ready, _, _ in state.retry_heap[:1]]
        deltas.extend(
            deadline - now
            for _, (_, deadline) in running.items()
            if deadline is not None
        )
        if not deltas:
            return None
        return min(max(0.01, min(deltas)), 60.0)

    try:
        while state.pending or state.retry_heap or running:
            state.collect_ripe_retries()
            broken = False
            while state.pending and len(running) < width:
                if not submit(state.pending.popleft()):
                    broken = True
                    break

            if running and not broken:
                done, _ = concurrent.futures.wait(
                    list(running),
                    timeout=wait_timeout(),
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    task, _deadline = running.pop(future)
                    try:
                        payload = future.result()
                    except concurrent.futures.BrokenExecutor as exc:
                        broken = True
                        state.transient_failure(task, error_entry(exc))
                        continue
                    except Exception as exc:
                        payload = {"status": "error", "error": error_entry(exc)}
                    state.finish(task, payload)

                # Deadline sweep: kill hung attempts, charge them one
                # transient attempt each.
                now = _now()
                expired = [
                    future
                    for future, (_, deadline) in running.items()
                    if deadline is not None and deadline <= now
                ]
                for future in expired:
                    task, _deadline = running.pop(future)
                    assert policy.timeout is not None
                    _emit(
                        on_event,
                        "task.timeout",
                        key=task.key,
                        task=task.task_id,
                        attempt=task.attempt,
                        timeout=policy.timeout,
                    )
                    state.transient_failure(
                        task, _deadline_entry(policy.timeout, task.attempt)
                    )
                if expired:
                    broken = True  # hung workers only die with the pool
                    reason = "deadline"
                else:
                    reason = "broken-pool"
            elif not running and not broken:
                # Nothing in flight: sleep out the nearest backoff.
                delay = wait_timeout()
                if delay is not None:
                    time.sleep(delay)
                continue
            else:
                reason = "broken-pool"

            if broken:
                survivors = list(running.items())
                running.clear()
                rebuild_pool(reason, len(survivors))
                for _future, (task, _deadline) in survivors:
                    if reason == "deadline":
                        # Collateral of someone else's hang: requeue
                        # without charging the attempt budget.
                        state.pending.append(task)
                    else:
                        state.transient_failure(
                            task,
                            {
                                "type": "BrokenProcessPool",
                                "message": (
                                    "in-flight task lost to a broken "
                                    "process pool; requeued"
                                ),
                                "transient": True,
                            },
                        )

            yield from state.drain_ready()

        pool.shutdown(wait=True)
        finished_cleanly = True
    finally:
        if not finished_cleanly:
            _terminate_pool(pool)


def _supervise_inline(
    worker: Callable[..., Dict[str, Any]],
    task_list: List[_Task],
    policy: RetryPolicy,
    on_event: Optional[SuperviseEventFn],
) -> Iterator[Tuple[Any, Dict[str, Any]]]:
    """In-process supervision: retries/backoff apply, deadlines cannot
    (a single process has no way to preempt its own worker call)."""
    state = _Supervisor(policy, on_event)
    for task in task_list:
        while True:
            try:
                payload = _run_task(worker, task.args, task.task_id, task.attempt)
            except Exception as exc:
                payload = {"status": "error", "error": error_entry(exc)}
            state.finish(task, payload)
            if state.ready:
                break
            # A retry was scheduled; sleep out its backoff inline (the
            # heap entry is consumed here — inline has no event loop).
            state.retry_heap.clear()
            delay = policy.backoff_delay(task.task_id, task.attempt)
            if delay > 0:
                time.sleep(delay)
        yield from state.drain_ready()


# ----------------------------------------------------------------------
# Persistent shard workers (the sharded engine backend)
# ----------------------------------------------------------------------
class ShardProcess:
    """A persistent fork-based worker process with a message pipe.

    The pool machinery above is built for independent, stateless tasks;
    the sharded engine backend (:mod:`repro.controller.sharded`) needs
    the opposite: long-lived workers that hold simulation state across
    many small exchanges.  This helper owns that lifecycle — fork the
    child (so the target closure and everything it captures are
    inherited, never pickled), exchange picklable messages over a duplex
    pipe, and surface worker crashes as structured
    :func:`error_entry`-style failures instead of hangs.

    ``target`` is called as ``target(conn)`` in the child and owns the
    protocol; it should catch its own exceptions, ``conn.send`` an
    ``("error", entry)`` tuple, and exit.  :meth:`recv` turns such a
    tuple (or a dead pipe) into a raised :class:`RuntimeError`.
    """

    def __init__(self, target: Callable[[Any], None], name: str) -> None:
        import multiprocessing

        if multiprocessing.current_process().daemon:
            raise RuntimeError(
                "cannot start shard workers from a daemonic process "
                "(e.g. inside a campaign/artifact pool worker); run "
                "sharded-engine simulations with --jobs 1"
            )
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "the sharded engine backend needs the 'fork' process "
                "start method, which this platform does not provide"
            ) from None
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(target=target, args=(child_conn,), name=name)
        self._proc.daemon = True
        self._proc.start()
        child_conn.close()
        self.name = name

    def send(self, message: Any) -> None:
        """Ship a picklable message; a dead worker raises RuntimeError."""
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise RuntimeError(f"shard worker {self.name!r} died: {exc}") from exc

    def recv(self) -> Any:
        """Next message; worker death or an error tuple raises RuntimeError."""
        try:
            message = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {self.name!r} died without replying: {exc}"
            ) from exc
        if isinstance(message, tuple) and message and message[0] == "error":
            raise RuntimeError(
                f"shard worker {self.name!r} failed: "
                f"{message[1].get('type')}: {message[1].get('message')}\n"
                f"{message[1].get('traceback', '')}"
            )
        return message

    def close(self) -> None:
        """Close the pipe and reap the child (terminate if stuck)."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():  # pragma: no cover - stuck worker
            self._proc.terminate()
            self._proc.join(timeout=5.0)
