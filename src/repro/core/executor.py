"""Shared process-pool execution with per-task fault isolation.

Both orchestration layers — the artifact suite
(:mod:`repro.experiments.runner`) and the scenario campaign engine
(:mod:`repro.campaigns.trials`) — fan independent simulations out over
a :class:`~concurrent.futures.ProcessPoolExecutor`.  This module holds
the machinery they share so the two subsystems cannot drift:

* **JSON-able payloads** — :func:`to_jsonable` converts arbitrary
  result objects (dataclasses, tuples, non-string dict keys) into
  plain JSON types, because everything crossing the pool boundary is
  persisted to disk afterwards.
* **Structured errors** — :func:`error_entry` folds an exception into a
  ``{"type", "message", "traceback"}`` dict; a crashing task becomes a
  recordable result instead of aborting the run.
* **The pool loop** — :func:`map_tasks` runs module-level worker
  functions over picklable argument tuples, yielding ``(key, payload)``
  pairs in completion order.  Worker functions are expected to catch
  their own exceptions (that captures the traceback *inside* the worker
  process); failures of the future itself — e.g. a worker killed hard
  enough to break the pool — are still folded into structured error
  payloads, so one bad task never takes down the batch.

Workers must be module-level functions and their arguments/payloads
picklable; closures do not survive the pool boundary.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import traceback
from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Tuple

__all__ = ["to_jsonable", "error_entry", "map_tasks"]


def to_jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples/dict-keys to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): to_jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def error_entry(exc: BaseException, with_traceback: bool = True) -> Dict[str, str]:
    """Fold an exception into the structured error dict persisted on disk."""
    entry = {"type": type(exc).__name__, "message": str(exc)}
    if with_traceback:
        entry["traceback"] = traceback.format_exc()
    return entry


def map_tasks(
    worker: Callable[..., Dict[str, Any]],
    tasks: Iterable[Tuple[Any, Tuple[Any, ...]]],
    *,
    jobs: Optional[int] = None,
) -> Iterator[Tuple[Any, Dict[str, Any]]]:
    """Run ``worker(*args)`` for every ``(key, args)`` task.

    Yields ``(key, payload)`` in completion order.  With ``jobs > 1``
    and more than one task, work fans out over a process pool sized
    ``min(jobs, len(tasks))`` (``jobs=None`` means ``os.cpu_count()``);
    otherwise everything runs inline in the caller's process.

    The worker should return a dict with a ``"status"`` key and never
    raise (catch exceptions into :func:`error_entry` payloads so the
    traceback captured is the worker-process one).  If the worker leaks
    an exception anyway, or the future itself fails — broken pool,
    unpicklable payload — the yielded payload is ``{"status": "error",
    "error": error_entry(exc)}``.
    """
    task_list = list(tasks)
    max_workers = jobs if jobs is not None else (os.cpu_count() or 1)
    if max_workers > 1 and len(task_list) > 1:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(max_workers, len(task_list))
        ) as pool:
            futures = {
                pool.submit(worker, *args): key for key, args in task_list
            }
            for future in concurrent.futures.as_completed(futures):
                key = futures[future]
                try:
                    payload = future.result()
                except Exception as exc:  # e.g. BrokenProcessPool
                    payload = {"status": "error", "error": error_entry(exc)}
                yield key, payload
    else:
        for key, args in task_list:
            try:
                payload = worker(*args)
            except Exception as exc:
                payload = {"status": "error", "error": error_entry(exc)}
            yield key, payload
