"""Core infrastructure: the discrete-event simulation kernel.

The whole reproduction is built on a single event-driven engine
(:class:`repro.core.engine.Engine`).  DRAM, memory controller, cores and
attack harnesses all schedule callbacks on it; time is measured in
nanoseconds (floats, since DDR5-8000 has a 0.25 ns clock).
"""

from repro.core.engine import Engine, Event

__all__ = ["Engine", "Event"]
