"""The ``ENGINES`` registry: pluggable simulation-execution backends.

PR 3's fastpath made the event kernel (:mod:`repro.core.engine`) and
the controller wake loop the whole cost of every experiment; the next
wins — batching the bank scan, sharding independent channels across
processes — change *how* the simulation executes without changing what
it simulates.  This module gives those execution strategies the same
component API as every other structural axis
(:data:`~repro.controller.scheduler.SCHEDULERS`,
:data:`~repro.cpu.hierarchy.CACHES`, ...): a name -> factory registry
(:data:`ENGINES`) addressed by ``SystemConfig(engine=, engine_params=)``,
with ``"event"`` — the exact historical kernel — as the default that
serializes to nothing, so every persisted scenario ID and content hash
is unmoved.

Backends
--------
``event``
    The reference backend: one :class:`~repro.core.engine.Engine`, one
    :class:`~repro.controller.controller.MemoryController` per channel,
    results bit-identical to every previous revision.
``batched``
    Same single-engine execution, but the controller hot loop is the
    batched variant (:mod:`repro.controller.batched`): the same-time
    re-examination wake is folded into an in-place serve loop and the
    per-bank ready-time scan is numpy-vectorized past a busy-bank
    threshold.  Outputs are byte-identical to ``event``; the event
    *count* is lower (elided re-examination wakes), so compare backends
    on wall time over pinned work, not raw events/sec.  Needs numpy
    (the ``repro[accel]`` extra) unless ``engine_params={"numpy":
    False}`` opts into the pure-Python serve-loop fallback.
``sharded``
    For ``channels > 1``: each channel's controller/refresh/ABO stack
    runs on its own worker process (:mod:`repro.controller.sharded`),
    synchronized with the cores at epoch barriers.  Core-visible
    completion times are quantized to epoch boundaries (bounded
    staleness — see docs/performance.md), so IPC is approximate while
    per-channel DRAM statistics stay exact; runs are deterministic.
    With one channel it degenerates to the ``event`` path.

The registry is resolved by :meth:`repro.config.SystemConfig.make_engine`;
nothing here imports the controller package at module import time, so
the dependency direction (controller -> config -> engines) stays
acyclic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.core.engine import Engine
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.system import System

#: engine backend registry, addressed by ``SystemConfig.engine``.
ENGINES = Registry("engine", "engine")

#: the default backend name (omitted from serialized configs).
DEFAULT_ENGINE = "event"


class EngineBackend:
    """Base class / reference implementation of an execution backend.

    A backend decides three things: which :class:`Engine` to drive
    (currently always the deterministic event kernel), which controller
    class each channel gets (:meth:`make_controller`), and how a whole
    :class:`~repro.cpu.system.System` is run to completion
    (:meth:`run_system`).  The base class is the ``event`` backend —
    every hook reproduces the historical behaviour bit-for-bit — and
    the accelerated backends override exactly one hook each, so a
    backend that does not care about an axis inherits the reference
    semantics.
    """

    name = "event"

    def make_engine(self) -> Engine:
        """A fresh simulation engine for one system."""
        return Engine()

    def make_controller(self, *args: Any, **kwargs: Any) -> Any:
        """One channel's memory controller (passes arguments through).

        The base backend builds the reference
        :class:`~repro.controller.controller.MemoryController`.
        """
        from repro.controller.controller import MemoryController

        return MemoryController(*args, **kwargs)

    def shards_channels(self, channels: int) -> bool:
        """Whether this backend runs channels on worker processes."""
        return False

    def make_memory(self, engine: Engine, config: Any, **kwargs: Any) -> Any:
        """The memory-system facade for one system.

        The base backend builds the in-process
        :class:`~repro.controller.memory_system.MemorySystem`, handing
        itself down so the facade constructs this backend's controller
        class per channel.
        """
        from repro.controller.memory_system import MemorySystem

        return MemorySystem(engine, config, backend=self, **kwargs)

    def run_system(
        self,
        system: "System",
        until: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> None:
        """Drive a started system to completion (or ``until``).

        This is the historical :meth:`repro.cpu.system.System.run`
        loop verbatim: the engine's inlined run with the per-core
        finish hooks requesting a stop, or the stepping loop when an
        explicit horizon is given.
        """
        engine = system.engine
        if until is None:
            if system._unfinished > 0:
                engine.run(max_events=max_events)
        else:
            fired = 0
            while fired < max_events:
                if engine.now >= until:
                    break
                if system._unfinished == 0:
                    break
                if not engine.step():
                    break
                fired += 1


ENGINES.register("event", EngineBackend)


@ENGINES.register("batched")
def _make_batched(**params: Any) -> EngineBackend:
    """Late-bound factory: the implementation lives with the controller."""
    from repro.controller.batched import BatchedEngineBackend

    return BatchedEngineBackend(**params)


@ENGINES.register("sharded")
def _make_sharded(**params: Any) -> EngineBackend:
    """Late-bound factory: the implementation lives with the controller."""
    from repro.controller.sharded import ShardedEngineBackend

    return ShardedEngineBackend(**params)
