"""A minimal, deterministic discrete-event simulation kernel.

Every component of the reproduction (DRAM banks, the memory controller,
trace-driven cores, attack processes) interacts through this engine.  The
engine keeps a priority queue of :class:`Event` records ordered by
``(time, priority, sequence)``; the sequence number makes scheduling
deterministic when two events share a timestamp.

Time unit: **nanoseconds** throughout the code base.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so the heap pops them in
    deterministic order.  ``cancelled`` events are skipped when popped
    (lazy deletion keeps cancellation O(1)).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Engine:
    """Deterministic discrete-event simulation engine.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_fired: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run at absolute ``time``.

        ``time`` must not be in the past.  Lower ``priority`` runs first
        among same-time events.  Returns the :class:`Event`, which the
        caller may :meth:`Event.cancel`.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} ns; now is {self.now} ns"
            )
        event = Event(time=time, priority=priority, seq=self._seq, callback=callback, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, priority=priority, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self._events_fired += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have fired (whichever comes first).

        When ``until`` is given, the clock is advanced to ``until`` even
        if the queue drains earlier, so wall-clock-based statistics are
        well defined.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            self.step()
            fired += 1
        if until is not None and self.now < until:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def drain(self) -> None:
        """Discard all pending events (used by tests and teardown)."""
        self._heap.clear()
