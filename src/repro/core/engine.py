"""A minimal, deterministic discrete-event simulation kernel.

Every component of the reproduction (DRAM banks, the memory controller,
trace-driven cores, attack processes) interacts through this engine.  The
engine keeps a priority queue of scheduled callbacks ordered by
``(time, priority, sequence)``; the sequence number makes scheduling
deterministic when two events share a timestamp.

Hot-path design (this is the innermost loop of every experiment):

* Heap entries are plain ``(time, priority, seq, event)`` tuples, so
  ``heapq`` sift comparisons run entirely in C tuple comparison code and
  short-circuit at ``seq`` (which is unique) — the :class:`Event` object
  itself is never compared.
* :class:`Event` is a ``__slots__`` handle (no dataclass machinery, no
  per-comparison key tuples); it exists only so callers can ``cancel()``.
* Cancellation is lazy (O(1)): the entry stays in the heap and is
  skipped when popped.  A live-event counter keeps :attr:`Engine.pending`
  O(1) instead of rescanning the heap.
* :meth:`Engine.run` is a single inlined loop with a same-time fast
  path: consecutive events at the current timestamp skip the horizon
  comparison and the clock write.

Time unit: **nanoseconds** throughout the code base.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

_INF = float("inf")


def _noop() -> None:
    """Replaces a cancelled event's callback, releasing its closure."""


class Event:
    """A scheduled callback handle.

    The engine orders events by ``(time, priority, seq)``; ``cancelled``
    events are skipped when popped (lazy deletion keeps cancellation
    O(1)).  Once fired or cancelled an event is inert: ``cancel()`` on a
    fired event is a no-op.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled", "engine")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        label: str,
        engine: Optional["Engine"],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.engine = engine

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        engine = self.engine
        if self.cancelled or engine is None:
            return  # already cancelled, already fired, or detached
        self.cancelled = True
        self.callback = _noop  # release the closure immediately
        engine._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.engine is None else "pending")
        return f"<Event t={self.time} prio={self.priority} seq={self.seq} {state} {self.label!r}>"


class RepeatingTimer:
    """A self-re-arming periodic callback (see :meth:`Engine.every`).

    The underlying :class:`Event` changes at every re-arm, so callers
    hold this stable handle instead; :meth:`stop` cancels the pending
    occurrence and prevents further re-arms.  Used by observability
    samplers — the periodic event is ordinary engine traffic, so
    determinism (same-time ordering by seq) is untouched.
    """

    __slots__ = ("engine", "interval", "callback", "priority", "label", "_event", "stopped")

    def __init__(
        self,
        engine: "Engine",
        interval: float,
        callback: Callable[[], Any],
        priority: int,
        label: str,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.engine = engine
        self.interval = interval
        self.callback = callback
        self.priority = priority
        self.label = label
        self.stopped = False
        self._event: Optional[Event] = engine.schedule_after(
            interval, self._fire, priority=priority, label=label
        )

    def _fire(self) -> None:
        self.callback()
        if not self.stopped:
            self._event = self.engine.schedule_after(
                self.interval, self._fire, priority=self.priority, label=self.label
            )

    def stop(self) -> None:
        """Cancel the pending occurrence and stop re-arming."""
        self.stopped = True
        event = self._event
        if event is not None:
            event.cancel()
            self._event = None


class Engine:
    """Deterministic discrete-event simulation engine.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._live: int = 0
        self._stop: bool = False
        self._drained: bool = False  # drain() happened inside run()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run at absolute ``time``.

        ``time`` must not be in the past.  Lower ``priority`` runs first
        among same-time events.  Returns the :class:`Event`, which the
        caller may :meth:`Event.cancel`.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} ns; now is {self.now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        # Inline Event construction (no __init__ call): this runs once
        # per scheduled event and is measurably hot.
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.callback = callback
        event.label = label
        event.cancelled = False
        event.engine = self
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, priority=priority, label=label)

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> RepeatingTimer:
        """Run ``callback`` every ``interval`` ns (first at now+interval).

        Returns a :class:`RepeatingTimer`; ``stop()`` it to end the
        series.  The series re-arms itself forever — pair with
        :meth:`request_stop`-style termination, as a repeating event
        alone keeps the queue non-empty.
        """
        return RepeatingTimer(self, interval, callback, priority, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            event.engine = None  # mark fired; cancel() becomes a no-op
            self._live -= 1
            self.now = event.time
            event.callback()
            self._events_fired += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached,
        ``max_events`` events have fired, or :meth:`request_stop` is
        called from a callback (whichever comes first).

        When ``until`` is given, the clock is advanced to ``until`` even
        if the queue drains earlier, so wall-clock-based statistics are
        well defined (a :meth:`request_stop` exit skips that advance:
        the stopper wants the clock frozen at the stopping event).
        """
        heap = self._heap
        pop = heapq.heappop
        horizon = _INF if until is None else until
        limit = -1 if max_events is None else max_events
        fired = 0
        now = self.now
        self._stop = False
        self._drained = False  # only a drain *during* this run matters
        if horizon < now:
            return  # horizon already in the past: nothing can fire
        try:
            while heap:
                if fired == limit:
                    return
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    pop(heap)
                    continue
                time = entry[0]
                if time != now:
                    # New timestamp: check the horizon and advance the
                    # clock.  Same-time events (the cascade case) skip both.
                    if time > horizon:
                        break
                    self.now = now = time
                pop(heap)
                event.engine = None  # mark fired; cancel() becomes a no-op
                fired += 1  # counted at pop so the tallies stay exact
                event.callback()    # even if the callback raises
                if self._stop:
                    self._stop = False
                    return
        finally:
            # Batched outside the loop; exact on every exit path.
            self._events_fired += fired
            if self._drained:
                # drain() ran inside a callback and zeroed the counter
                # mid-run: the heap is now the ground truth.
                self._drained = False
                self._live = sum(1 for entry in heap if not entry[3].cancelled)
            else:
                self._live -= fired
        if until is not None and self.now < until:
            self.now = until

    def request_stop(self) -> None:
        """Ask :meth:`run` to return before popping the next event.

        Intended to be called from inside an event callback (e.g. a
        completion hook deciding the simulation's goal is reached); the
        event in flight finishes normally.
        """
        self._stop = True

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1).

        Exact between :meth:`run` calls; while a run is in progress the
        batched bookkeeping settles when the run returns.
        """
        return self._live

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def drain(self) -> None:
        """Discard all pending events (used by tests and teardown)."""
        for entry in self._heap:
            entry[3].engine = None  # detach so late cancel() stays a no-op
        self._heap.clear()
        self._live = 0
        self._drained = True  # tell an in-flight run() the count was reset
