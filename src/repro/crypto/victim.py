"""The AES victim process: T-table lookups as DRAM row activations.

The attack setup (paper Section 3.3): each of the four T-tables spans
16 cache lines, and *each cache line maps to a different DRAM row*.
The attacker flushes those lines (clflush / eviction sets) while the
victim encrypts, so every first-round lookup reaches DRAM and
increments the corresponding row's PRAC activation counter.

:class:`TTableLayout` pins the 64 table cache lines to DRAM rows;
:class:`AesVictim` runs chosen-plaintext encryptions and emits the DRAM
row stream of the first round.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.aes_ttable import AesTTable, TableAccess
from repro.dram.address import AddressMapping, DramAddress


@dataclass(frozen=True)
class TTableLayout:
    """Physical placement of the T-tables in DRAM.

    ``rows[(table, cache_line)]`` gives the DRAM row that a table's
    cache line occupies.  The paper's attack distinguishes the 16 cache
    lines of *one* table, so the layout places each of the 64 lines in
    a distinct row of ``bank`` (matching "each cache line mapped to a
    different DRAM row").
    """

    bank: int
    base_row: int

    def row_of(self, table: int, cache_line: int) -> int:
        """DRAM row holding one (table, cache_line) pair."""
        if not 0 <= table < 4:
            raise ValueError("table must be 0..3")
        if not 0 <= cache_line < 16:
            raise ValueError("cache_line must be 0..15")
        return self.base_row + table * 16 + cache_line

    def table_rows(self, table: int) -> List[int]:
        """The 16 rows holding one table, index = cache line number."""
        return [self.row_of(table, line) for line in range(16)]

    def phys_addr(self, mapping: AddressMapping, table: int, cache_line: int) -> int:
        """A physical address inside the given table cache line."""
        org = mapping.org
        bank_group, bank = divmod(self.bank, org.banks_per_group)
        return mapping.encode(
            DramAddress(
                channel=0,
                rank=0,
                bank_group=bank_group % org.bank_groups,
                bank=bank,
                row=self.row_of(table, cache_line),
                column=0,
            )
        )


class AesVictim:
    """A victim performing encryptions with attacker-chosen plaintexts.

    The attacker fixes plaintext byte ``target_byte`` and randomizes
    the rest; across ``n`` encryptions the T-table cache line indexed
    by ``p_t XOR k_t`` receives roughly double the accesses of the
    other lines (it is hit once *per encryption* deterministically plus
    the random background), so its DRAM row becomes the most activated.
    """

    def __init__(
        self,
        key: bytes,
        layout: Optional[TTableLayout] = None,
        seed: int = 1234,
    ) -> None:
        self.aes = AesTTable(key)
        self.layout = layout or TTableLayout(bank=0, base_row=0)
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def encrypt_chosen(
        self, target_byte: int, fixed_value: int
    ) -> List[TableAccess]:
        """One encryption with ``p[target_byte] = fixed_value``, rest random."""
        if not 0 <= target_byte < 16:
            raise ValueError("target_byte must be 0..15")
        if not 0 <= fixed_value < 256:
            raise ValueError("fixed_value must be a byte")
        plaintext = bytearray(self._rng.randrange(256) for _ in range(16))
        plaintext[target_byte] = fixed_value
        return self.aes.first_round_accesses(bytes(plaintext))

    def first_round_rows(
        self, target_byte: int, fixed_value: int, encryptions: int
    ) -> Tuple[List[int], Dict[int, int]]:
        """Row activation stream over ``encryptions`` chosen-plaintext runs.

        Returns the ordered row stream (what reaches DRAM after the
        attacker's flushes) and the per-row activation histogram for
        the *target table* (table ``target_byte % 4``).
        """
        stream: List[int] = []
        histogram: Dict[int, int] = {}
        table_of_interest = target_byte % 4
        for _ in range(encryptions):
            for access in self.encrypt_chosen(target_byte, fixed_value):
                row = self.layout.row_of(access.table, access.cache_line)
                stream.append(row)
                if access.table == table_of_interest:
                    histogram[row] = histogram.get(row, 0) + 1
        return stream, histogram

    def hottest_row(self, histogram: Dict[int, int]) -> int:
        """Most-activated row; ties resolve to the lowest row index."""
        if not histogram:
            raise ValueError("empty histogram")
        return min(histogram, key=lambda row: (-histogram[row], row))

    # ------------------------------------------------------------------
    def expected_hot_line(self, target_byte: int, fixed_value: int) -> int:
        """Ground truth: cache line ``(p XOR k) >> 4`` for the fixed byte."""
        key_byte = self.aes.key[target_byte]
        return (fixed_value ^ key_byte) >> 4
