"""Reference AES-128 encryption, straight from the round functions.

A second, independent implementation of the cipher — SubBytes,
ShiftRows, MixColumns and AddRoundKey applied to the 4x4 state matrix
directly, with no lookup-table fusion.  It exists purely to
cross-validate :mod:`repro.crypto.aes_ttable`: the property tests
encrypt random blocks under random keys with both implementations and
require bit-identical ciphertexts.  (The side-channel work only traces
the T-table variant; this one performs no instrumented memory access.)
"""

from __future__ import annotations

from typing import List

from repro.crypto.aes_ttable import INV_SBOX, RCON, SBOX, gf_mul


def _bytes_to_state(block: bytes) -> List[List[int]]:
    """FIPS-197 column-major state: state[row][col] = block[4*col+row]."""
    return [[block[4 * col + row] for col in range(4)] for row in range(4)]


def _state_to_bytes(state: List[List[int]]) -> bytes:
    return bytes(state[row][col] for col in range(4) for row in range(4))


def _sub_bytes(state: List[List[int]]) -> None:
    for row in range(4):
        for col in range(4):
            state[row][col] = SBOX[state[row][col]]


def _shift_rows(state: List[List[int]]) -> None:
    for row in range(1, 4):
        state[row] = state[row][row:] + state[row][:row]


def _mix_columns(state: List[List[int]]) -> None:
    for col in range(4):
        a = [state[row][col] for row in range(4)]
        state[0][col] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3]
        state[1][col] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3]
        state[2][col] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3)
        state[3][col] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2)


def _add_round_key(state: List[List[int]], round_key: List[int]) -> None:
    for col in range(4):
        word = round_key[col]
        for row in range(4):
            state[row][col] ^= (word >> (24 - 8 * row)) & 0xFF


def _expand_key_words(key: bytes) -> List[int]:
    """Identical schedule to the T-table module (shared test surface)."""
    words = [int.from_bytes(key[4 * i: 4 * i + 4], "big") for i in range(4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            rotated = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
            substituted = 0
            for shift in (24, 16, 8, 0):
                substituted |= SBOX[(rotated >> shift) & 0xFF] << shift
            temp = substituted ^ (RCON[i // 4 - 1] << 24)
        words.append(words[i - 4] ^ temp)
    return words


def encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128 (reference rounds)."""
    if len(key) != 16:
        raise ValueError("AES-128 requires a 16-byte key")
    if len(plaintext) != 16:
        raise ValueError("AES block must be 16 bytes")
    round_keys = _expand_key_words(key)
    state = _bytes_to_state(plaintext)
    _add_round_key(state, round_keys[0:4])
    for round_index in range(1, 10):
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[4 * round_index: 4 * round_index + 4])
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[40:44])
    return _state_to_bytes(state)


def _inv_sub_bytes(state: List[List[int]]) -> None:
    for row in range(4):
        for col in range(4):
            state[row][col] = INV_SBOX[state[row][col]]


def _inv_shift_rows(state: List[List[int]]) -> None:
    for row in range(1, 4):
        state[row] = state[row][-row:] + state[row][:-row]


def _inv_mix_columns(state: List[List[int]]) -> None:
    for col in range(4):
        a = [state[row][col] for row in range(4)]
        state[0][col] = (
            gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9)
        )
        state[1][col] = (
            gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13)
        )
        state[2][col] = (
            gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11)
        )
        state[3][col] = (
            gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14)
        )


def decrypt_block(key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt one 16-byte block (inverse cipher, FIPS-197 §5.3)."""
    if len(key) != 16:
        raise ValueError("AES-128 requires a 16-byte key")
    if len(ciphertext) != 16:
        raise ValueError("AES block must be 16 bytes")
    round_keys = _expand_key_words(key)
    state = _bytes_to_state(ciphertext)
    _add_round_key(state, round_keys[40:44])
    for round_index in range(9, 0, -1):
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, round_keys[4 * round_index: 4 * round_index + 4])
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _inv_sub_bytes(state)
    _add_round_key(state, round_keys[0:4])
    return _state_to_bytes(state)
