"""Cryptographic substrate: the vulnerable AES T-table victim.

The paper's side-channel victim is an OpenSSL/GnuPG-style AES-128
implementation using four 1 KB lookup tables (T-tables).  The secret
leaks because first-round lookup indices are ``x_i = p_i XOR k_i`` and
each T-table spans 16 cache lines, so the *cache line* (and hence DRAM
row) accessed reveals the top 4 bits of ``x_i``.

* :mod:`repro.crypto.aes_ttable` — full AES-128 (key expansion + all
  ten rounds) with every T-table access recorded; verified against the
  FIPS-197 test vectors.
* :mod:`repro.crypto.victim` — wraps the cipher as a process whose
  table lookups become DRAM row activations.
"""

from repro.crypto.aes_ttable import AesTTable, TableAccess
from repro.crypto.victim import AesVictim, TTableLayout

__all__ = ["AesTTable", "AesVictim", "TTableLayout", "TableAccess"]
