"""AES-128 encryption with T-tables, instrumented for access tracing.

This is a from-scratch implementation of the Rijndael cipher as
standardized in FIPS-197, in the "32-bit table lookup" style used by
OpenSSL and GnuPG: rounds 1-9 are computed with four 1 KB tables
(T0..T3) whose entries combine SubBytes, ShiftRows and MixColumns; the
final round uses the plain S-box.  Every T-table lookup is recorded as
a :class:`TableAccess`, which the side-channel experiments turn into
DRAM row activations.

The S-box is *derived* (multiplicative inverse in GF(2^8) followed by
the affine transform) rather than pasted, and the implementation is
verified against the FIPS-197 Appendix C known-answer vector in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) with the AES reduction polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    """Derive the AES S-box: GF(2^8) inverse + affine transformation."""
    # Multiplicative inverses via exhaustive search (256 entries; cheap).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        value = 0x63
        for shift in range(5):
            value ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = value & 0xFF
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()


def _build_ttables() -> List[List[int]]:
    """The four encryption T-tables (each 256 x 32-bit words)."""
    t0 = []
    for x in range(256):
        s = SBOX[x]
        s2 = gf_mul(s, 2)
        s3 = gf_mul(s, 3)
        t0.append((s2 << 24) | (s << 16) | (s << 8) | s3)

    def rot(word: int, bits: int) -> int:
        return ((word >> bits) | (word << (32 - bits))) & 0xFFFFFFFF

    return [t0, [rot(w, 8) for w in t0], [rot(w, 16) for w in t0], [rot(w, 24) for w in t0]]


TTABLES = _build_ttables()

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def expand_key(key: bytes) -> List[int]:
    """AES-128 key schedule: 16-byte key -> 44 32-bit round-key words."""
    if len(key) != 16:
        raise ValueError("AES-128 requires a 16-byte key")
    words = [int.from_bytes(key[4 * i: 4 * i + 4], "big") for i in range(4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            rotated = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
            substituted = 0
            for shift in (24, 16, 8, 0):
                substituted |= SBOX[(rotated >> shift) & 0xFF] << shift
            temp = substituted ^ (RCON[i // 4 - 1] << 24)
        words.append(words[i - 4] ^ temp)
    return words


@dataclass(frozen=True)
class TableAccess:
    """One T-table lookup: which table, which byte index, which round."""

    round_index: int    # 1..10 (10 = final round, S-box as table)
    table: int          # 0..3
    index: int          # 0..255

    @property
    def cache_line(self) -> int:
        """Cache line within the table: 16 entries of 4 B per 64 B line."""
        return self.index >> 4


class AesTTable:
    """Instrumented AES-128 encryptor.

    >>> aes = AesTTable(bytes(range(16)))
    >>> ct = aes.encrypt(bytes.fromhex("00112233445566778899aabbccddeeff"))
    >>> ct.hex()
    '69c4e0d86a7b0430d8cdb78070b4c55a'
    """

    def __init__(self, key: bytes) -> None:
        self.key = bytes(key)
        self.round_keys = expand_key(self.key)
        self.accesses: List[TableAccess] = []
        self.record_accesses = True

    # ------------------------------------------------------------------
    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block, recording all table lookups."""
        if len(plaintext) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self.round_keys
        state = [
            int.from_bytes(plaintext[4 * i: 4 * i + 4], "big") ^ rk[i]
            for i in range(4)
        ]
        for round_index in range(1, 10):
            state = self._round(state, rk[4 * round_index: 4 * round_index + 4], round_index)
        state = self._final_round(state, rk[40:44])
        out = b"".join(word.to_bytes(4, "big") for word in state)
        return out

    def _lookup(self, table: int, index: int, round_index: int) -> int:
        if self.record_accesses:
            self.accesses.append(
                TableAccess(round_index=round_index, table=table, index=index)
            )
        return TTABLES[table][index]

    def _round(self, state: Sequence[int], rk: Sequence[int], round_index: int) -> List[int]:
        s0, s1, s2, s3 = state
        out = []
        columns = (
            (s0, s1, s2, s3),
            (s1, s2, s3, s0),
            (s2, s3, s0, s1),
            (s3, s0, s1, s2),
        )
        for col, (a, b, c, d) in enumerate(columns):
            word = (
                self._lookup(0, (a >> 24) & 0xFF, round_index)
                ^ self._lookup(1, (b >> 16) & 0xFF, round_index)
                ^ self._lookup(2, (c >> 8) & 0xFF, round_index)
                ^ self._lookup(3, d & 0xFF, round_index)
                ^ rk[col]
            )
            out.append(word)
        return out

    def _final_round(self, state: Sequence[int], rk: Sequence[int]) -> List[int]:
        s0, s1, s2, s3 = state
        out = []
        columns = (
            (s0, s1, s2, s3),
            (s1, s2, s3, s0),
            (s2, s3, s0, s1),
            (s3, s0, s1, s2),
        )
        for col, (a, b, c, d) in enumerate(columns):
            word = (
                (SBOX[(a >> 24) & 0xFF] << 24)
                | (SBOX[(b >> 16) & 0xFF] << 16)
                | (SBOX[(c >> 8) & 0xFF] << 8)
                | SBOX[d & 0xFF]
            ) ^ rk[col]
            if self.record_accesses:
                # Final round uses the S-box table; record for completeness.
                for table, index in (
                    (0, (a >> 24) & 0xFF),
                    (1, (b >> 16) & 0xFF),
                    (2, (c >> 8) & 0xFF),
                    (3, d & 0xFF),
                ):
                    self.accesses.append(
                        TableAccess(round_index=10, table=table, index=index)
                    )
            out.append(word)
        return out

    # ------------------------------------------------------------------
    def first_round_accesses(self, plaintext: bytes) -> List[TableAccess]:
        """Only the 16 first-round lookups (what the attack targets).

        First-round indices are exactly ``p_i XOR k_i`` with byte ``i``
        feeding table ``i mod 4``.
        """
        self.accesses = []
        self.encrypt(plaintext)
        return [a for a in self.accesses if a.round_index == 1]

    def clear_trace(self) -> None:
        """Discard recorded table accesses."""
        self.accesses = []
