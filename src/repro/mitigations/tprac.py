"""Timing-Safe PRAC (TPRAC): activity-independent Timing-Based RFMs.

TPRAC issues an RFMab every fixed ``tb_window`` nanoseconds, regardless
of memory activity, and mitigates the most-activated row per bank from
a single-entry frequency queue.  Because the TB-Window is configured
(via the Feinting worst-case analysis, :mod:`repro.analysis.tb_window`)
so that no row can ever reach N_BO between mitigations, ABO never
fires; and because the RFM schedule is a pure function of time, its
latency spikes carry no information.

Co-design with Targeted Refresh (Section 4.3): when a TREF slot lands
inside the current TB-Window, the DRAM performs the mitigation in
refresh slack, and the scheduled TB-RFM is skipped — same security,
fewer channel-blocking RFMs.

The controller-side cost is a single 24-bit RFM Interval Register
(Section 6.8); see :mod:`repro.analysis.storage`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.dram.commands import RfmProvenance
from repro.mitigations.base import MitigationPolicy, QueueFactory
from repro.prac.mitigation_queue import SingleEntryFrequencyQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import MemoryController


class TpracPolicy(MitigationPolicy):
    """TPRAC: periodic TB-RFMs + single-entry frequency queue."""

    name = "tprac"

    def __init__(
        self,
        tb_window: Optional[float] = None,
        tb_window_trefi: Optional[float] = None,
        queue_factory: QueueFactory = SingleEntryFrequencyQueue,
        use_rfmpb: bool = False,
    ) -> None:
        """Configure the TB-Window.

        Exactly one of ``tb_window`` (ns) or ``tb_window_trefi``
        (multiples of tREFI, resolved at attach time) must be given.
        ``use_rfmpb`` switches the TB mitigation to per-bank RFMs
        (Section 7.2 extension; see :class:`PerBankRfmPolicy` for the
        standalone policy).
        """
        super().__init__(queue_factory=queue_factory)
        if (tb_window is None) == (tb_window_trefi is None):
            raise ValueError("give exactly one of tb_window / tb_window_trefi")
        self._tb_window_ns = tb_window
        self._tb_window_trefi = tb_window_trefi
        self.tb_window: float = 0.0
        self.use_rfmpb = use_rfmpb
        self.tb_rfms_issued = 0
        self.tb_rfms_skipped = 0   # skipped thanks to a TREF in-window
        self._tref_in_window = False
        self._timer_event = None

    # ------------------------------------------------------------------
    def on_attached(self, controller: "MemoryController") -> None:
        timing = controller.config.timing
        if self._tb_window_ns is not None:
            self.tb_window = float(self._tb_window_ns)
        else:
            self.tb_window = float(self._tb_window_trefi) * timing.tREFI
        if self.tb_window <= 0:
            raise ValueError("TB-Window must be positive")
        self._arm_timer(controller)

    def _arm_timer(self, controller: "MemoryController") -> None:
        self._timer_event = controller.engine.schedule_after(
            self.tb_window, lambda: self._tb_fire(controller), priority=-1,
            label="tb-rfm",
        )

    def _tb_fire(self, controller: "MemoryController") -> None:
        if self._tref_in_window:
            # A Targeted Refresh already mitigated this window's victim.
            self.tb_rfms_skipped += 1
            self._tref_in_window = False
        else:
            self.tb_rfms_issued += 1
            controller.request_rfm(RfmProvenance.TB)
        self._arm_timer(controller)

    # ------------------------------------------------------------------
    def on_tref(self, controller: "MemoryController", time: float) -> None:
        """Mitigate from refresh slack; mark the window as covered."""
        for bank_id, queue in enumerate(self.queues):
            victim = queue.pop_victim()
            if victim is not None:
                controller.channel.bank(bank_id).mitigate(victim)
                self.mitigations_performed += 1
                self.mitigation_counter.inc()
        self._tref_in_window = True

    # ------------------------------------------------------------------
    @property
    def bandwidth_loss(self) -> float:
        """Upper bound on DRAM bandwidth lost to TB-RFMs: tRFMab / window."""
        if self.controller is None or self.tb_window == 0:
            return 0.0
        return self.controller.config.timing.tRFMab / self.tb_window
