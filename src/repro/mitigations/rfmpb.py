"""Per-Bank RFM (RFMpb) TPRAC variant — the Section 7.2 extension.

The JEDEC PRAC spec only defines all-bank RFMs for the ABO flow; the
paper sketches a future extension where TB-RFMs are issued per bank so
only one bank stalls (tRFMpb < tRFMab) instead of the whole channel.
This policy implements that sketch: the TB timer rotates through banks,
blocking one bank per firing, with the per-bank period chosen so every
bank is still mitigated once per TB-Window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.dram.commands import CommandKind, RfmProvenance
from repro.controller.stats import RfmRecord
from repro.mitigations.base import MitigationPolicy, QueueFactory
from repro.prac.mitigation_queue import SingleEntryFrequencyQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import MemoryController


class PerBankRfmPolicy(MitigationPolicy):
    """TB-RFMs issued as per-bank RFMpb commands, round-robin."""

    name = "rfmpb"

    def __init__(
        self,
        tb_window: Optional[float] = None,
        tb_window_trefi: Optional[float] = None,
        queue_factory: QueueFactory = SingleEntryFrequencyQueue,
    ) -> None:
        super().__init__(queue_factory=queue_factory)
        if (tb_window is None) == (tb_window_trefi is None):
            raise ValueError("give exactly one of tb_window / tb_window_trefi")
        self._tb_window_ns = tb_window
        self._tb_window_trefi = tb_window_trefi
        self.tb_window: float = 0.0
        self.pb_rfms_issued = 0
        self._next_bank = 0

    def on_attached(self, controller: "MemoryController") -> None:
        timing = controller.config.timing
        if self._tb_window_ns is not None:
            self.tb_window = float(self._tb_window_ns)
        else:
            self.tb_window = float(self._tb_window_trefi) * timing.tREFI
        if self.tb_window <= 0:
            raise ValueError("TB-Window must be positive")
        self._period = self.tb_window / len(controller.channel.banks)
        self._arm(controller)

    def _arm(self, controller: "MemoryController") -> None:
        controller.engine.schedule_after(
            self._period, lambda: self._fire(controller), priority=-1,
            label="pb-rfm",
        )

    def _fire(self, controller: "MemoryController") -> None:
        bank_id = self._next_bank
        self._next_bank = (self._next_bank + 1) % len(controller.channel.banks)
        start = max(controller.engine.now, controller.channel.blocked_until)
        controller.channel.block_bank(bank_id, start, controller.config.timing.tRFMpb)
        controller._log(
            CommandKind.RFM_PB, bank_id, -1, start, RfmProvenance.TB
        )
        # block_bank mutates bank timing state outside the controller's
        # serve/RFM-burst paths: its ready-time cache must be dropped.
        controller._invalidate_ready_cache()
        victim = self.queues[bank_id].pop_victim()
        mitigated = {}
        if victim is not None:
            controller.channel.bank(bank_id).mitigate(victim)
            mitigated[bank_id] = victim
            self.mitigations_performed += 1
            self.mitigation_counter.inc()
        controller.stats.record_rfm(
            RfmRecord(
                time=start,
                provenance=RfmProvenance.TB,
                bank_id=bank_id,
                mitigated_rows=mitigated,
            )
        )
        self.pb_rfms_issued += 1
        controller.channel.bank(bank_id).activations_since_rfm = 0
        self._arm(controller)
