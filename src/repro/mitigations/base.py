"""Mitigation policy interface shared by all designs.

A policy plugs into the :class:`~repro.controller.controller.MemoryController`
via :meth:`attach` and receives these callbacks:

* bank activations, via the per-bank mitigation queues it installs;
* ``mitigate_on_rfm`` whenever an RFM (of any provenance) is issued —
  the policy decides which row each bank mitigates;
* ``on_tref`` when a Targeted-Refresh slot fires;
* ``on_counter_reset`` at tREFW boundaries when the reset policy is on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.dram.commands import RfmProvenance
from repro.obs.metrics import NULL_COUNTER
from repro.prac.mitigation_queue import MitigationQueue, SingleEntryFrequencyQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import MemoryController
    from repro.obs.metrics import MetricsRegistry

#: Builds one per-bank mitigation queue; policies take it so tests can
#: substitute deeper/fifo queues without subclassing.
QueueFactory = Callable[[], MitigationQueue]


class MitigationPolicy:
    """Base class: installs one mitigation queue per bank."""

    name = "base"

    def __init__(self, queue_factory: QueueFactory = SingleEntryFrequencyQueue) -> None:
        self._queue_factory = queue_factory
        self.queues: List[MitigationQueue] = []
        self.controller: Optional["MemoryController"] = None
        self.mitigations_performed = 0
        #: per-row mitigation counter; a live handle when the owning
        #: controller runs with ``metrics=True`` (see :meth:`bind_metrics`)
        self.mitigation_counter = NULL_COUNTER

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Expose mitigation volume as ``policy.mitigations`` counts."""
        self.mitigation_counter = metrics.counter("policy.mitigations")

    # ------------------------------------------------------------------
    def attach(self, controller: "MemoryController") -> None:
        """Wire queues to every bank's activation stream."""
        self.controller = controller
        self.queues = []
        for bank in controller.channel:
            queue = self._queue_factory()
            self.queues.append(queue)
            bank.on_activate(
                lambda b, row, count, q=queue: q.observe(row, count)
            )
        self.on_attached(controller)

    def on_attached(self, controller: "MemoryController") -> None:
        """Subclass hook, called once wiring is complete."""

    # ------------------------------------------------------------------
    def mitigate_on_rfm(
        self, controller: "MemoryController", time: float, provenance: RfmProvenance
    ) -> Dict[int, int]:
        """Mitigate the queued victim in every bank; returns bank->row."""
        mitigated: Dict[int, int] = {}
        for bank_id, queue in enumerate(self.queues):
            victim = queue.pop_victim()
            if victim is None:
                continue
            controller.channel.bank(bank_id).mitigate(victim)
            mitigated[bank_id] = victim
            self.mitigations_performed += 1
            self.mitigation_counter.inc()
        return mitigated

    def on_tref(self, controller: "MemoryController", time: float) -> None:
        """Targeted-Refresh slot: default policies ignore it."""

    def on_counter_reset(self, controller: "MemoryController", time: float) -> None:
        """tREFW counter reset: queues must forget stale counts."""
        for queue in self.queues:
            queue.clear()


class NoMitigationPolicy(MitigationPolicy):
    """PRAC timings but zero mitigation traffic.

    Combined with ``enable_abo=False`` this is the paper's
    normalization baseline ("PRAC-enabled DDR5 without ABO").
    """

    name = "none"

    def mitigate_on_rfm(
        self, controller: "MemoryController", time: float, provenance: RfmProvenance
    ) -> Dict[int, int]:  # noqa: D102
        return {}
