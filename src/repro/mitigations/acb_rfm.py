"""ABO + Activation-Based RFM (ACB-RFM): the JEDEC Targeted-RFM flow.

The controller counts activations per bank (the Rolling Accumulated ACT
count) and issues a proactive RFMab whenever any bank's count reaches
the Bank Activation threshold (BAT).  With BAT chosen below N_BO /
attack-round length, ABO-RFMs never fire — but the proactive RFMs are
still a deterministic function of activity, so the channel merely moves
from per-row to per-bank granularity (Figure 2(b)).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.dram.commands import RfmProvenance
from repro.mitigations.base import MitigationPolicy, QueueFactory
from repro.prac.mitigation_queue import SingleEntryFrequencyQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import MemoryController
    from repro.dram.bank import Bank


class AcbRfmPolicy(MitigationPolicy):
    """ABO plus BAT-triggered proactive RFMs (insecure baseline)."""

    name = "abo_acb"

    def __init__(
        self,
        bat: int = 0,
        queue_factory: QueueFactory = SingleEntryFrequencyQueue,
    ) -> None:
        """``bat=0`` means "use the device config's BAT"."""
        super().__init__(queue_factory=queue_factory)
        self._bat_override = bat
        self.bat = bat
        self.acb_rfms_requested = 0
        self._rfm_outstanding = False

    def on_attached(self, controller: "MemoryController") -> None:
        self.bat = self._bat_override or controller.config.prac.bat
        for bank in controller.channel:
            bank.on_activate(self._check_bat)

    def _check_bat(self, bank: "Bank", row: int, count: int) -> None:
        if self._rfm_outstanding:
            return
        if bank.activations_since_rfm >= self.bat:
            self._rfm_outstanding = True
            self.acb_rfms_requested += 1
            assert self.controller is not None
            self.controller.request_rfm(RfmProvenance.ACB)

    def mitigate_on_rfm(
        self, controller: "MemoryController", time: float, provenance: RfmProvenance
    ) -> Dict[int, int]:
        self._rfm_outstanding = False
        return super().mitigate_on_rfm(controller, time, provenance)

    @staticmethod
    def bat_for_threshold(nbo: int, margin: float = 0.5) -> int:
        """Pick a BAT that avoids ABO-RFMs under worst-case patterns.

        The paper configures BAT per N_RH "to eliminate ABO-RFMs under
        the worst-case Feinting pattern"; a BAT of ``margin * nbo``
        guarantees a proactive mitigation fires well before any row can
        amass N_BO activations within one accumulation window.  JEDEC's
        minimum BAT is 16.
        """
        return max(16, int(nbo * margin))
