"""RowHammer mitigation policies evaluated in the paper.

* :class:`AboOnlyPolicy` — relies solely on the Alert Back-Off protocol
  (insecure against timing channels; leaks per-row activation counts).
* :class:`AcbRfmPolicy` — ABO plus proactive Activation-Based RFMs at
  the Bank Activation threshold (BAT); the JEDEC-standard Targeted-RFM
  flow.  Avoids ABO-RFMs but still activity-dependent, hence leaky.
* :class:`TpracPolicy` — the paper's defense: Timing-Based RFMs at a
  fixed TB-Window, single-entry frequency queue per bank, optional
  Targeted-Refresh co-design and counter-reset policies.
* :class:`ObfuscationPolicy` — Section 7.1 alternative: random RFM
  injection (reduces but does not eliminate leakage).
* :class:`PerBankRfmPolicy` — Section 7.2 extension: TB-RFMs issued as
  per-bank RFMs (RFMpb) to reduce bandwidth loss.
* :class:`NoMitigationPolicy` — the normalization baseline: PRAC
  timings, no mitigation traffic at all.
"""

from repro.mitigations.base import MitigationPolicy, NoMitigationPolicy
from repro.mitigations.abo_only import AboOnlyPolicy
from repro.mitigations.acb_rfm import AcbRfmPolicy
from repro.mitigations.tprac import TpracPolicy
from repro.mitigations.obfuscation import ObfuscationPolicy
from repro.mitigations.rfmpb import PerBankRfmPolicy
from repro.mitigations.qprac import QpracPolicy
from repro.registry import Registry
from typing import Any, Callable, List

__all__ = [
    "AboOnlyPolicy",
    "AcbRfmPolicy",
    "MITIGATIONS",
    "MitigationPolicy",
    "NoMitigationPolicy",
    "ObfuscationPolicy",
    "PerBankRfmPolicy",
    "QpracPolicy",
    "TpracPolicy",
    "available",
    "get",
    "make_policy",
]

#: The string -> factory registry (:class:`repro.registry.Registry`).
#: Everything that addresses a mitigation by name — the CLI, campaign
#: grids, experiment configs — goes through this one table, so a new
#: policy registered here is immediately sweepable everywhere, and an
#: unknown name fails with the same error shape as the scheduler /
#: mapping / refresh registries.
MITIGATIONS = Registry("mitigation policy", "mitigation")
for _name, _factory in (
    ("none", NoMitigationPolicy),
    ("abo_only", AboOnlyPolicy),
    ("abo_acb", AcbRfmPolicy),
    ("tprac", TpracPolicy),
    ("obfuscation", ObfuscationPolicy),
    ("rfmpb", PerBankRfmPolicy),
    ("qprac", QpracPolicy),
):
    MITIGATIONS.register(_name, _factory)
del _name, _factory


def available() -> List[str]:
    """Sorted names of every registered mitigation policy."""
    return MITIGATIONS.available()


def get(name: str) -> Callable[..., MitigationPolicy]:
    """The policy factory (class) registered under ``name``."""
    return MITIGATIONS.get(name)


def make_policy(name: str, **kwargs: Any) -> MitigationPolicy:
    """Instantiate the policy registered under ``name``.

    Names: see :func:`available` (``none``, ``abo_only``, ``abo_acb``,
    ``tprac``, ``obfuscation``, ``rfmpb``, ``qprac``).
    """
    return get(name)(**kwargs)
