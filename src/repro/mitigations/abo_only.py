"""ABO-Only mitigation: rely solely on the Alert Back-Off protocol.

The device asserts Alert when a row reaches N_BO and the controller
issues the N_mit RFMab burst.  There is no proactive traffic, so benign
workloads see near-zero overhead at N_RH >= 1024 — but every RFM is an
activity-dependent ABO-RFM, which is exactly the observable PRACLeak
exploits.  Used as the (insecure) baseline in Figures 10-13.
"""

from __future__ import annotations

from repro.mitigations.base import MitigationPolicy, QueueFactory
from repro.prac.mitigation_queue import SingleEntryFrequencyQueue


class AboOnlyPolicy(MitigationPolicy):
    """QPRAC-style PRAC with mitigation only on ABO-triggered RFMs."""

    name = "abo_only"

    def __init__(self, queue_factory: QueueFactory = SingleEntryFrequencyQueue) -> None:
        super().__init__(queue_factory=queue_factory)
