"""QPRAC-style underlying PRAC implementation.

The paper's evaluated systems use QPRAC as the base PRAC design: a
per-bank *priority* mitigation queue (deepest counters first) serviced
both reactively (on ABO-triggered RFMs) and opportunistically — QPRAC's
key idea — during idle refresh slack, so queues rarely fill and Alerts
become rare even without TPRAC.  TPRAC then replaces the reactive part
with Timing-Based RFMs; this module exists so the reproduction can run
the base design on its own and as the substrate under TPRAC
(``TpracPolicy(queue_factory=...)``), matching Section 4.1's claim that
TB-RFM is "readily compatible" with QPRAC-style queues.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mitigations.base import MitigationPolicy
from repro.prac.mitigation_queue import PriorityMitigationQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import MemoryController


class QpracPolicy(MitigationPolicy):
    """Priority-queue PRAC with opportunistic servicing on refresh.

    * Each bank keeps a ``queue_depth``-entry priority queue ordered by
      activation count.
    * ABO-triggered RFMs pop the deepest entry per bank (inherited
      behaviour).
    * Every periodic refresh additionally services one entry per bank
      from refresh slack when ``proactive`` is enabled — the QPRAC
      opportunistic mitigation that keeps Alerts rare.
    """

    name = "qprac"

    def __init__(self, queue_depth: int = 4, proactive: bool = True) -> None:
        super().__init__(
            queue_factory=lambda: PriorityMitigationQueue(capacity=queue_depth)
        )
        self.queue_depth = queue_depth
        self.proactive = proactive
        self.proactive_mitigations = 0

    def on_attached(self, controller: "MemoryController") -> None:
        if self.proactive:
            controller.refresh.on_refresh.append(
                lambda start: self._service_on_refresh(controller)
            )

    def _service_on_refresh(self, controller: "MemoryController") -> None:
        """Mitigate one queued row per bank in the refresh slack."""
        for bank_id, queue in enumerate(self.queues):
            victim = queue.pop_victim()
            if victim is None:
                continue
            controller.channel.bank(bank_id).mitigate(victim)
            self.mitigations_performed += 1
            self.proactive_mitigations += 1
            self.mitigation_counter.inc()
