"""Obfuscation defense (Section 7.1): random RFM injection.

Instead of eliminating ABO-RFMs, inject decoy RFMabs with probability
``inject_prob`` per tREFI so an attacker cannot tell a legitimate
(activity-dependent) RFM from noise.  The paper notes this only
*degrades* the channel: long-horizon RFM-count profiling still
separates the distributions (zero observed RFMs definitively means no
activity; counts far above the injection baseline definitively mean
activity).  :mod:`repro.analysis.obfuscation_analysis` quantifies the
residual leakage via distribution overlap.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.dram.commands import RfmProvenance
from repro.mitigations.base import MitigationPolicy, QueueFactory
from repro.prac.mitigation_queue import SingleEntryFrequencyQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import MemoryController


class ObfuscationPolicy(MitigationPolicy):
    """ABO kept enabled; decoy RFMs injected at random."""

    name = "obfuscation"

    def __init__(
        self,
        inject_prob: float = 0.5,
        seed: int = 0,
        queue_factory: QueueFactory = SingleEntryFrequencyQueue,
    ) -> None:
        super().__init__(queue_factory=queue_factory)
        if not 0.0 <= inject_prob <= 1.0:
            raise ValueError("inject_prob must be within [0, 1]")
        self.inject_prob = inject_prob
        self.random_rfms_injected = 0
        self._rng = random.Random(seed)

    def on_attached(self, controller: "MemoryController") -> None:
        self._arm(controller)

    def _arm(self, controller: "MemoryController") -> None:
        controller.engine.schedule_after(
            controller.config.timing.tREFI,
            lambda: self._tick(controller),
            priority=-1,
            label="obf-tick",
        )

    def _tick(self, controller: "MemoryController") -> None:
        if self._rng.random() < self.inject_prob:
            self.random_rfms_injected += 1
            controller.request_rfm(RfmProvenance.RANDOM)
        self._arm(controller)
