"""Memory request records exchanged between cores and the controller."""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.dram.address import DramAddress

_request_ids = itertools.count()


class MemRequest:
    """A single cache-line request to DRAM.

    ``arrive_time`` is when the request reached the controller;
    ``done_time`` is filled in when data is returned.  ``on_complete``
    lets the issuing core (or attack harness) react to completion.

    A plain ``__slots__`` class rather than a dataclass: one of these is
    allocated per DRAM request on the simulator's hot path.
    """

    __slots__ = (
        "phys_addr",
        "is_write",
        "core_id",
        "arrive_time",
        "req_id",
        "addr",
        "done_time",
        "on_complete",
        "meta",
    )

    def __init__(
        self,
        phys_addr: int,
        is_write: bool = False,
        core_id: int = 0,
        arrive_time: float = 0.0,
        req_id: Optional[int] = None,
        addr: Optional[DramAddress] = None,
        done_time: Optional[float] = None,
        on_complete: Optional[Callable[["MemRequest"], None]] = None,
        meta: Optional[dict] = None,
    ) -> None:
        self.phys_addr = phys_addr
        self.is_write = is_write
        self.core_id = core_id
        self.arrive_time = arrive_time
        self.req_id = next(_request_ids) if req_id is None else req_id
        self.addr = addr                 # filled by the controller
        self.done_time = done_time
        self.on_complete = on_complete
        #: optional caller annotations; None (not an empty dict) by
        #: default so the hot path never allocates one per request
        self.meta = meta

    @property
    def latency(self) -> float:
        """End-to-end latency (ns); raises if not yet completed."""
        if self.done_time is None:
            raise RuntimeError(f"request {self.req_id} not completed")
        return self.done_time - self.arrive_time

    def complete(self, time: float) -> None:
        """Mark data returned at ``time`` and fire the completion callback."""
        self.done_time = time
        if self.on_complete is not None:
            self.on_complete(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "WR" if self.is_write else "RD"
        return f"<MemRequest#{self.req_id} {kind} 0x{self.phys_addr:x} core={self.core_id}>"
