"""Memory request records exchanged between cores and the controller."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dram.address import DramAddress

_request_ids = itertools.count()


@dataclass
class MemRequest:
    """A single cache-line request to DRAM.

    ``arrive_time`` is when the request reached the controller;
    ``done_time`` is filled in when data is returned.  ``on_complete``
    lets the issuing core (or attack harness) react to completion.
    """

    phys_addr: int
    is_write: bool = False
    core_id: int = 0
    arrive_time: float = 0.0
    req_id: int = field(default_factory=lambda: next(_request_ids))
    addr: Optional[DramAddress] = None       # filled by the controller
    done_time: Optional[float] = None
    on_complete: Optional[Callable[["MemRequest"], None]] = None
    meta: dict = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """End-to-end latency (ns); raises if not yet completed."""
        if self.done_time is None:
            raise RuntimeError(f"request {self.req_id} not completed")
        return self.done_time - self.arrive_time

    def complete(self, time: float) -> None:
        """Mark data returned at ``time`` and fire the completion callback."""
        self.done_time = time
        if self.on_complete is not None:
            self.on_complete(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "WR" if self.is_write else "RD"
        return f"<MemRequest#{self.req_id} {kind} 0x{self.phys_addr:x} core={self.core_id}>"
