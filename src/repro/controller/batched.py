"""The batched controller hot loop (``SystemConfig(engine="batched")``).

:class:`BatchedMemoryController` is the reference
:class:`~repro.controller.controller.MemoryController` with two
accelerations of the wake loop, both **byte-identical in output** to
the reference controller:

1. **In-place re-examination.**  The reference loop ends a serving wake
   by scheduling another wake at the same timestamp ("re-examine
   immediately: serving may have changed state").  That re-examination
   can be folded into the current wake: between the serving wake and
   its same-time re-wake no other event can touch this channel's state
   (priority-0 events at ``now`` have already fired, a serve never
   creates new priority-0 events at ``now`` — completions land at
   ``data_end > now`` — and the controller holds only one wake handle),
   so running the follow-up checks in place is exactly
   output-equivalent.  Moreover, with ``tCCD > 0`` a bank can never
   serve twice at one timestamp (a serve pushes its ``cmd_ready`` past
   ``now``), so the re-examination's bank scan provably serves nothing
   and is skipped outright — only the ABO/RFM re-checks it would have
   performed are run.  This elides the re-examination *events*: the
   batched backend fires fewer events than ``event`` for the same
   simulated work, which is why backends are compared on wall time
   over pinned work, not events/sec (see docs/performance.md).

2. **Array-batched bank scan.**  The reference scan walks every busy
   bank per wake — recomputing or cache-loading its ready time, folding
   the minimum for the next wake, and testing readiness — an O(busy)
   Python loop that dominates the controller's cost at high bank-level
   parallelism.  The batched scan keeps one full-width float64 column
   of per-bank ready times (``+inf`` for idle banks) that is *persisted
   across wakes* and invalidated exactly where the reference
   invalidates its generation cache: per-bank on enqueue and serve,
   channel-wide on REF/RFM blocking windows.  A wake then recomputes
   only the invalidated entries and replaces the Python walk with three
   numpy primitives — ``ready <= now`` + ``flatnonzero`` for the
   candidate scan (ascending bank order, matching the reference's
   sorted busy list) and ``min`` for the next-wake fold.  Channel-wide
   invalidations rebuild all busy entries at once through the
   vectorized ready-time formula (float64 ``max``/``add``/compare are
   bit-identical to Python float arithmetic, so every scheduling
   decision is unchanged).

The numpy dependency is the optional ``repro[accel]`` extra; the
backend factory raises a registry-style error when it is missing,
unless ``engine_params={"numpy": False}`` opts into the pure-Python
serve-loop fallback (acceleration 1 only).
"""

from __future__ import annotations

from typing import Any, List, Optional, Set, Tuple

from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engines import EngineBackend
from repro.dram.commands import RfmProvenance

_INF = float("inf")


class BatchedEngineBackend(EngineBackend):
    """The ``batched`` entry of :data:`repro.core.engines.ENGINES`."""

    name = "batched"

    def __init__(self, numpy: bool = True, min_banks: int = 64) -> None:
        if not isinstance(min_banks, int) or min_banks < 1:
            raise ValueError("engine_params['min_banks'] must be a positive integer")
        self._np: Optional[Any] = None
        if numpy:
            try:
                import numpy as np
            except ImportError:
                raise ValueError(
                    "engine 'batched' (config field 'engine') needs numpy, "
                    "which is not installed; install the 'repro[accel]' "
                    "extra (pip install 'repro[accel]') or pass "
                    "engine_params={'numpy': False} for the pure-Python "
                    "serve-loop fallback"
                ) from None
            self._np = np
        self.min_banks = min_banks

    def make_controller(self, *args: Any, **kwargs: Any) -> MemoryController:
        return BatchedMemoryController(
            *args, batch_numpy=self._np, batch_min_banks=self.min_banks, **kwargs
        )


class BatchedMemoryController(MemoryController):
    """Reference controller with the batched wake loop.

    Construct via the ``batched`` engine backend
    (``ENGINES.make("batched")``), not directly — the backend resolves
    the numpy dependency and threads the tuning parameters.
    """

    def __init__(
        self,
        *args: Any,
        batch_numpy: Optional[Any] = None,
        batch_min_banks: int = 64,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._np = batch_numpy
        self._min_banks = batch_min_banks
        # The skip-re-examination proof needs tCCD > 0 (a serve pushes
        # its bank's cmd_ready strictly past ``now``).  Every real DDR5
        # timing set satisfies it; fall back to full re-scans if a
        # synthetic config does not.
        self._skip_reexam = self.config.timing.tCCD > 0
        if batch_numpy is not None:
            n = self.config.organization.banks_per_channel
            #: per-bank ready-time column; +inf marks an idle bank.
            #: Valid for every bank not in the dirty set — the same
            #: invariant the reference keeps for its generation cache.
            self._arr_ready = batch_numpy.full(n, _INF)
            #: banks whose column entry must be recomputed (enqueue /
            #: re-candidate).  Serves refresh their entry in-pass.
            self._dirty: Set[int] = set()
            #: channel-wide invalidation (REF/RFM window moved
            #: ``blocked_until``): rebuild every busy entry.
            self._dirty_all = True
            #: defensive corner: banks whose pick() declined while
            #: ready (cannot happen with the shipped schedulers, which
            #: always pick from a non-empty queue).  The reference
            #: re-picks them on every wake without folding their ready
            #: time into the wake target; mirror that by keeping them
            #: out of the column min and re-candidating them per wake.
            self._stuck: Set[int] = set()

    # ------------------------------------------------------------------
    # Invalidation points (mirroring the reference generation cache)
    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest) -> None:
        """Accept a request, arming the wake at the bank's due time.

        The reference enqueue unconditionally arms a wake at ``now``;
        that wake computes the bank's ready time and re-arms at it —
        often a no-op scan event when the bank can't start yet (row
        conflict, tRP...).  Computing the ready time here and arming
        the wake directly at ``max(ready, now)`` elides that event:

        * The pre-existing wake (if any) sits at the minimum ready time
          of the previously busy banks, and ``_schedule_wake`` keeps
          the earlier of it and our target, so the next wake still
          fires at the exact minimum — the same instant the reference's
          rescan would have chosen.
        * The skipped wake's ABO/RFM head cannot be missed: every due
          condition (alert deadline, must-mitigate, queues-drained,
          requested RFMs) arms its own wake when it arises, and the
          deadline is folded into every wake target.
        * The computed ready time also warms the generation cache (and
          the numpy column), exactly the value the skipped scan would
          have cached.
        """
        phys = request.phys_addr
        entry = self._decode_cache.get(phys)
        if entry is None:
            addr = self.mapping.decode(phys)
            entry = (addr, addr.flat_bank(self.config.organization))
            self._decode_cache[phys] = entry
        addr, bank_id = entry
        request.addr = addr
        now = self.engine.now
        request.arrive_time = now
        self.scheduler.enqueue(request, bank_id)
        ready = self._bank_ready_time(bank_id)
        self._ready_cache[bank_id] = ready
        self._ready_gen[bank_id] = self._gen
        if self._np is not None:
            self._arr_ready[bank_id] = ready
            self._dirty.discard(bank_id)
        target = ready if ready > now else now
        wake = self._wake_event
        if wake is None or wake.cancelled or wake.time > target:
            self._schedule_wake(target)

    def _invalidate_ready_cache(self, _time: float = 0.0) -> None:
        super()._invalidate_ready_cache(_time)
        self._dirty_all = True

    # ------------------------------------------------------------------
    # The batched wake loop
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        self._wake_event = None
        engine = self.engine
        now = engine.now
        channel = self.channel

        if now < channel.blocked_until:
            self._schedule_wake(channel.blocked_until)
            return

        next_wake: Optional[float] = self._abo_deadline
        first_pass = True
        while True:
            # 1./2. ABO mitigation and proactive RFMs — identical to the
            # reference top-of-wake checks; re-run before every pass
            # (serving can assert an alert or request an RFM).
            if self._top_actions(now):
                return
            if not first_pass and self._skip_reexam:
                # The re-examination scan provably serves nothing (see
                # module docstring); only the checks above were due.
                break
            if (
                self._np is not None
                and len(self.scheduler.banks_with_work()) >= self._min_banks
            ):
                served_any, next_wake, bail = self._array_pass(now)
            else:
                served_any, next_wake, bail = self._scalar_pass(now)
            first_pass = False
            if bail:
                # must-mitigate tripped mid-scan: the scan armed a wake
                # at ``now`` exactly like the reference loop; let that
                # event run the mitigation so event order stays shared.
                break
            if not (served_any and self.scheduler._total_pending):
                break

        if next_wake is None:
            return
        target = next_wake if next_wake > now else now
        wake = self._wake_event
        if wake is not None and not wake.cancelled:
            if wake.time <= target:
                return
            wake.cancel()
        self._wake_event = engine.schedule(target, self._wake, 1, "mc-wake")

    def _top_actions(self, now: float) -> bool:
        """The reference wake's ABO/RFM head; True when a burst issued."""
        abo = self.abo
        if self.enable_abo and abo.alert_pending:
            deadline = self._abo_deadline
            due = (
                abo.must_mitigate_now
                or (deadline is not None and now >= deadline)
                or self.scheduler.pending() == 0
            )
            if due:
                self._issue_rfm_burst(abo.rfm_burst_size(), RfmProvenance.ABO)
                abo.mitigation_done()
                self._abo_deadline = None
                self._schedule_wake(self.channel.blocked_until)
                return True
        if self._pending_rfms:
            provenance, count = self._pending_rfms.pop(0)
            self._issue_rfm_burst(count, provenance)
            self._schedule_wake(self.channel.blocked_until)
            return True
        return False

    # ------------------------------------------------------------------
    # Array pass (numpy)
    # ------------------------------------------------------------------
    def _refresh_column(self, busy: List[int]) -> None:
        """Recompute the ready column for the invalidated banks."""
        arr = self._arr_ready
        queues = self._queues
        if self._dirty_all:
            arr.fill(_INF)
            if len(busy) >= self._min_banks:
                self._vector_ready(busy)
            else:
                for bank_id in busy:
                    arr[bank_id] = self._bank_ready_time(bank_id)
            self._dirty.clear()
            self._dirty_all = False
        elif self._dirty:
            for bank_id in sorted(self._dirty):
                arr[bank_id] = (
                    self._bank_ready_time(bank_id) if queues[bank_id] else _INF
                )
            self._dirty.clear()

    def _vector_ready(self, busy: List[int]) -> None:
        """Vectorized ready-time formula over all busy banks at once.

        Used for channel-wide rebuilds (every entry invalid).  The
        inputs are gathered from the live scalar state; the arithmetic
        — float64 max/add — is bit-identical to the per-bank Python
        formula, so the column ends up exactly as the scalar rebuild
        would leave it.
        """
        np = self._np
        banks = self._banks
        queues = self._queues
        heads = [queues[b][0] for b in busy]
        bank_objs = [banks[b] for b in busy]
        cmd_ready = np.array([self._bank_cmd_ready[b] for b in busy])
        ready = np.maximum(cmd_ready, self.channel.blocked_until)
        open_rows = np.array(
            [-1 if bk.open_row is None else bk.open_row for bk in bank_objs],
            dtype=np.int64,
        )
        ready_at = np.array([bk.ready_at for bk in bank_objs])
        miss = open_rows < 0
        if miss.any():
            pre_done = np.array([bk.precharge_done_at for bk in bank_objs])
            ready = np.where(
                miss, np.maximum(ready, np.maximum(ready_at, pre_done)), ready
            )
        conflict = open_rows >= 0
        conflict &= open_rows != np.array(
            [head.addr.row for head in heads], dtype=np.int64
        )
        if conflict.any():
            pre_at = np.maximum(
                np.array([head.arrive_time for head in heads]),
                np.array([self._last_act_time[b] for b in busy]) + self._tRAS,
            )
            np.maximum(
                pre_at,
                np.array([self._last_cas_time[b] for b in busy]) + self._tRTP,
                out=pre_at,
            )
            np.maximum(
                pre_at,
                np.array([self._wr_recovery_until[b] for b in busy]),
                out=pre_at,
            )
            act_at = np.maximum(pre_at + self._tRP, ready_at)
            ready = np.where(conflict, np.maximum(ready, act_at), ready)
        self._arr_ready[np.array(busy, dtype=np.intp)] = ready

    def _array_pass(self, now: float) -> Tuple[bool, Optional[float], bool]:
        """One serve pass driven by the persistent ready column."""
        np = self._np
        scheduler = self.scheduler
        queues = self._queues
        banks = self._banks
        arr = self._arr_ready
        if self._stuck:
            # Re-candidate declined banks each wake, like the reference.
            self._dirty.update(self._stuck)
            self._stuck.clear()
        if self._dirty_all or self._dirty:
            self._refresh_column(list(scheduler.banks_with_work()))
        served_any = False
        enable_abo = self.enable_abo
        abo = self.abo
        must_mitigate = enable_abo and abo.must_mitigate_now
        # Candidate scan: ascending bank ids, matching the reference's
        # sorted busy-list walk.
        for bank_id in np.flatnonzero(arr <= now).tolist():
            if must_mitigate:
                self._schedule_wake(now)
                return served_any, self._next_wake_from_column(), True
            request = scheduler.pick(bank_id, banks[bank_id])
            if request is None:  # defensive; see _stuck
                self._stuck.add(bank_id)
                arr[bank_id] = _INF
                continue
            self._serve(request, bank_id)
            self._ready_gen[bank_id] = -1
            served_any = True
            if enable_abo:
                must_mitigate = abo.must_mitigate_now
            if queues[bank_id]:
                ready = self._bank_ready_time(bank_id)
                arr[bank_id] = ready
                self._ready_cache[bank_id] = ready
                self._ready_gen[bank_id] = self._gen
            else:
                arr[bank_id] = _INF
        return served_any, self._next_wake_from_column(), False

    def _next_wake_from_column(self) -> Optional[float]:
        """Fold the column minimum with the ABO deadline."""
        m = float(self._arr_ready.min())
        next_wake = self._abo_deadline
        if m != _INF and (next_wake is None or m < next_wake):
            next_wake = m
        return next_wake

    # ------------------------------------------------------------------
    # Scalar pass (pure-Python fallback: the reference scan verbatim)
    # ------------------------------------------------------------------
    def _scalar_pass(self, now: float) -> Tuple[bool, Optional[float], bool]:
        """One serve pass over the live busy list (reference scan)."""
        abo = self.abo
        enable_abo = self.enable_abo
        scheduler = self.scheduler
        next_wake: Optional[float] = self._abo_deadline
        served_any = False
        banks = self._banks
        queues = self._queues
        cmd_ready = self._bank_cmd_ready
        last_act = self._last_act_time
        last_cas = self._last_cas_time
        wr_recovery = self._wr_recovery_until
        ready_cache = self._ready_cache
        ready_gen = self._ready_gen
        gen = self._gen
        tRP = self._tRP
        tRAS = self._tRAS
        tRTP = self._tRTP
        blocked_until = self.channel.blocked_until
        must_mitigate = enable_abo and abo.must_mitigate_now
        arr = self._arr_ready if self._np is not None else None
        busy = scheduler.banks_with_work()
        i = 0
        n = len(busy)
        while i < n:
            bank_id = busy[i]
            if must_mitigate:
                self._schedule_wake(now)
                return served_any, next_wake, True
            if ready_gen[bank_id] == gen:
                ready = ready_cache[bank_id]
            else:
                bank = banks[bank_id]
                # --- inline _bank_ready_time (kept in sync with the
                # method, which remains the readable reference).
                ready = cmd_ready[bank_id]
                if blocked_until > ready:
                    ready = blocked_until
                head = queues[bank_id][0]
                open_row = bank.open_row
                if open_row is None:
                    act_at = bank.ready_at
                    pd = bank.precharge_done_at
                    if pd > act_at:
                        act_at = pd
                    if act_at > ready:
                        ready = act_at
                elif head.addr.row != open_row:
                    pre_at = head.arrive_time
                    t = last_act[bank_id] + tRAS
                    if t > pre_at:
                        pre_at = t
                    t = last_cas[bank_id] + tRTP
                    if t > pre_at:
                        pre_at = t
                    t = wr_recovery[bank_id]
                    if t > pre_at:
                        pre_at = t
                    act_at = pre_at + tRP
                    t = bank.ready_at
                    if t > act_at:
                        act_at = t
                    if act_at > ready:
                        ready = act_at
                # --- end inline
                ready_cache[bank_id] = ready
                ready_gen[bank_id] = gen
            if ready > now:
                if next_wake is None or ready < next_wake:
                    next_wake = ready
                i += 1
                continue
            request = scheduler.pick(bank_id, banks[bank_id])
            if request is None:
                i += 1
                continue
            self._serve(request, bank_id)
            ready_gen[bank_id] = -1
            served_any = True
            if enable_abo:
                must_mitigate = abo.must_mitigate_now
            n = len(busy)
            if i < n and busy[i] == bank_id:
                ready = self._bank_ready_time(bank_id)
                ready_cache[bank_id] = ready
                ready_gen[bank_id] = gen
                if arr is not None:
                    arr[bank_id] = ready
                if next_wake is None or ready < next_wake:
                    next_wake = ready
                i += 1
            elif arr is not None:
                arr[bank_id] = _INF  # bank went idle
        return served_any, next_wake, False
