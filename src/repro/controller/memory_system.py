"""The multi-channel memory system facade.

A :class:`MemorySystem` owns one :class:`MemoryController` per channel
of the configured :class:`~repro.dram.config.DramOrganization` and
routes each request to its channel by physical address (channel bits
sit directly above the cache-line offset in both address mappings, so
consecutive cache lines stripe across channels).  Everything stateful
stays strictly per-channel — mitigation policy instance, PRAC
counters, ABO protocol, refresh machinery, data bus and blocking
window — exactly as in hardware, where channels share nothing but the
clock.

Single-channel fast path
------------------------
With ``channels == 1`` the facade degenerates to a zero-overhead
alias: ``enqueue`` *is* the sole controller's bound ``enqueue`` and
``stats`` returns that controller's live :class:`ControllerStats`
object, so single-channel runs are bit-for-bit identical to driving a
bare :class:`MemoryController` (the pre-multi-channel behaviour).

Statistics come in two views: :attr:`per_channel_stats` (the live
per-controller objects) and :attr:`stats` (a merged
:class:`ControllerStats` — see :meth:`ControllerStats.merged`).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

import inspect

from repro.config import DEFAULT_SYSTEM, SystemConfig
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.controller.stats import ControllerStats
from repro.core.engine import Engine
from repro.core.engines import EngineBackend
from repro.dram.address import AddressMapping
from repro.dram.bank import Bank
from repro.dram.config import DramConfig
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.trace import TraceRecorder


def _accepts_channel_id(factory: Callable) -> bool:
    """Whether a policy factory declares a parameter literally named
    ``channel_id`` (matching by name, not arity: policy classes used
    directly as factories have unrelated constructor parameters)."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False
    parameter = parameters.get("channel_id")
    return parameter is not None and parameter.kind in (
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
        inspect.Parameter.KEYWORD_ONLY,
    )


class MemorySystem:
    """N per-channel memory controllers behind one ``enqueue`` front.

    Parameters mirror :class:`MemoryController`, except for policy
    wiring: a mitigation policy instance attaches to exactly one
    controller, so multi-channel systems take ``policy_factory`` (one
    fresh instance per channel) while single-channel systems may keep
    passing a ready-made ``policy`` object.  A factory that declares a
    ``channel_id`` parameter is called as
    ``policy_factory(channel_id=n)`` — the hook for per-channel seeding
    of stochastic policies; factories without one (e.g. a bare policy
    class) are called with no arguments.
    """

    def __init__(
        self,
        engine: Engine,
        config: DramConfig,
        policy: Optional[object] = None,
        policy_factory: Optional[Callable[[], object]] = None,
        enable_abo: bool = True,
        enable_refresh: bool = True,
        tref_per_trefi: float = 0.0,
        record_samples: bool = False,
        system: Optional[SystemConfig] = None,
        page_policy: Optional[str] = None,
        mapping: Optional[AddressMapping] = None,
        backend: Optional[EngineBackend] = None,
    ) -> None:
        system = (system if system is not None else DEFAULT_SYSTEM).validate()
        config = system.apply_to(config).validate()
        channels = config.organization.channels
        if policy is not None and policy_factory is not None:
            raise ValueError("pass either policy or policy_factory, not both")
        if channels > 1 and policy is not None:
            raise ValueError(
                "a policy instance attaches to one controller; "
                f"multi-channel systems ({channels} channels) need "
                "policy_factory so every channel gets its own instance"
            )
        self.engine = engine
        self.config = config
        self.system = system
        self.channels = channels
        #: the execution backend deciding the controller class per
        #: channel; direct construction without one resolves it from
        #: the system config's ``engine=`` axis.
        self.backend: EngineBackend = (
            backend if backend is not None else system.make_engine()
        )
        if policy_factory is None:
            def make_policy(channel_id: int) -> Optional[object]:
                return policy
        elif _accepts_channel_id(policy_factory):
            def make_policy(channel_id: int) -> Optional[object]:
                return policy_factory(channel_id=channel_id)
        else:
            def make_policy(channel_id: int) -> Optional[object]:
                return policy_factory()
        #: the shared address mapping: controllers decode with it and
        #: the facade routes with its ``channel_of`` — one source of
        #: truth for where the channel bits live.
        self.mapping = mapping or system.make_mapping(config.organization)
        #: shared telemetry (SystemConfig(trace=True) / metrics=True):
        #: one trace recorder and one metrics registry span all
        #: channels, so exported artifacts show the whole system.
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(config) if system.trace else None
        )
        self.metrics: MetricsRegistry = (
            MetricsRegistry() if system.metrics else NULL_REGISTRY
        )
        # Channel order is construction order: each controller arms its
        # refresh timers at construction, so event seq numbers (and
        # with them the whole event schedule) are deterministic.
        self.controllers: List[MemoryController] = [
            self.backend.make_controller(
                engine,
                config,
                policy=make_policy(channel_id),
                system=system,
                mapping=self.mapping,
                enable_abo=enable_abo,
                enable_refresh=enable_refresh,
                tref_per_trefi=tref_per_trefi,
                record_samples=record_samples,
                page_policy=page_policy,
                channel_id=channel_id,
                recorder=self.recorder,
                metrics=self.metrics if self.metrics.enabled else None,
            )
            for channel_id in range(channels)
        ]
        #: periodic time-series sampler; armed only with metrics on, so
        #: the metrics-off event schedule is untouched.
        self.sampler: Optional[TimeSeriesSampler] = None
        if system.metrics:
            self.sampler = TimeSeriesSampler(self)
            self.sampler.start()
        if channels == 1:
            # Zero-overhead single-channel path: enqueue IS the bound
            # method of the only controller.
            self.enqueue = self.controllers[0].enqueue

    # ------------------------------------------------------------------
    # Request routing
    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest) -> None:  # overwritten when channels==1
        """Route a request to its channel's controller by address."""
        self.controllers[self.mapping.channel_of(request.phys_addr)].enqueue(
            request
        )

    def controller_for(self, phys_addr: int) -> MemoryController:
        """The controller that owns this physical address."""
        return self.controllers[self.mapping.channel_of(phys_addr)]

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.engine.now

    def idle(self) -> bool:
        """True when every channel is idle."""
        return all(controller.idle() for controller in self.controllers)

    @property
    def per_channel_stats(self) -> List[ControllerStats]:
        """Live per-channel statistics objects, channel order."""
        return [controller.stats for controller in self.controllers]

    @property
    def stats(self) -> ControllerStats:
        """Merged statistics across channels.

        With one channel this is the controller's live stats object;
        with several it is a merged **snapshot** (recomputed per
        access) — use :attr:`per_channel_stats` for per-channel detail.
        """
        if self.channels == 1:
            return self.controllers[0].stats
        return ControllerStats.merged(self.per_channel_stats)

    def iter_banks(self) -> Iterator[Bank]:
        """Every bank of every channel, channel-major order."""
        for controller in self.controllers:
            yield from controller.channel

    @property
    def activations(self) -> int:
        """Total row activations across all channels."""
        return sum(bank.stats.activations for bank in self.iter_banks())

    @property
    def refresh_count(self) -> int:
        """Total REFab commands issued across all channels."""
        return sum(c.refresh.refresh_count for c in self.controllers)

    @property
    def rfm_count(self) -> int:
        """Total RFM commands issued across all channels."""
        return sum(c.channel.rfm_count for c in self.controllers)

    def __len__(self) -> int:
        return self.channels

    def __iter__(self) -> Iterator[MemoryController]:
        return iter(self.controllers)
