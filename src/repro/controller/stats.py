"""Controller statistics: latency samples, RFM records, bandwidth.

The attacks observe *memory access latency over time*; the defense
evaluation observes *how many RFMs of which provenance were issued*.
Both observables are recorded here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dram.commands import RfmProvenance


@dataclass
class LatencySample:
    """One completed request, as seen by a latency-monitoring attacker."""

    time: float          # completion time (ns)
    latency: float       # end-to-end latency (ns)
    core_id: int
    bank_id: int
    row: int
    was_hit: bool


@dataclass
class RfmRecord:
    """One issued RFM command (burst member)."""

    time: float
    provenance: RfmProvenance
    bank_id: int = -1            # -1 for all-bank
    mitigated_rows: Dict[int, int] = field(default_factory=dict)  # bank -> row


@dataclass
class ControllerStats:
    """Aggregate statistics for one simulation run."""

    requests_served: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    total_latency: float = 0.0
    refreshes: int = 0
    latency_samples: List[LatencySample] = field(default_factory=list)
    rfm_records: List[RfmRecord] = field(default_factory=list)
    record_samples: bool = True

    # ------------------------------------------------------------------
    def record_request(self, sample: LatencySample) -> None:
        """Account one completed request (and keep its sample)."""
        self.requests_served += 1
        self.total_latency += sample.latency
        if sample.was_hit:
            self.row_hits += 1
        if self.record_samples:
            self.latency_samples.append(sample)

    def record_rfm(self, record: RfmRecord) -> None:
        """Append one issued-RFM record."""
        self.rfm_records.append(record)

    # ------------------------------------------------------------------
    @property
    def mean_latency(self) -> float:
        if self.requests_served == 0:
            return 0.0
        return self.total_latency / self.requests_served

    @property
    def row_hit_rate(self) -> float:
        if self.requests_served == 0:
            return 0.0
        return self.row_hits / self.requests_served

    def rfm_count(self, provenance: Optional[RfmProvenance] = None) -> int:
        """Number of RFMs issued, optionally filtered by provenance."""
        if provenance is None:
            return len(self.rfm_records)
        return sum(1 for r in self.rfm_records if r.provenance is provenance)

    def core_samples(self, core_id: int) -> List[LatencySample]:
        """Latency samples belonging to one core."""
        return [s for s in self.latency_samples if s.core_id == core_id]
