"""Controller statistics: latency samples, RFM records, bandwidth.

The attacks observe *memory access latency over time*; the defense
evaluation observes *how many RFMs of which provenance were issued*.
Both observables are recorded here.

Hot-path design: the default path keeps **aggregate counters only** —
per-request scalars plus per-core and per-provenance running totals —
so a long performance run allocates nothing per request.  Full
:class:`LatencySample` records are opt-in (``record_samples=True``,
for attacker-observation experiments); RFM records are always kept
(RFMs are ~10⁴× rarer than requests) but counted incrementally so
:meth:`rfm_count` never rescans the list.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dram.commands import RfmProvenance

#: Upper bucket bounds (ns) of the always-on read-latency histogram.
#: Spans the model's timing range: sub-tRC row hits (~20-60 ns) up to
#: multi-RFM/refresh queueing tails (a REFab stalls 410 ns, an ABO
#: burst up to 4x350 ns, and queueing compounds into the microseconds).
#: Values above the last edge land in one overflow bucket whose
#: percentile estimate clamps to that edge.
LATENCY_BUCKET_BOUNDS = (
    20.0, 40.0, 60.0, 80.0, 100.0, 150.0, 200.0, 300.0, 400.0, 600.0,
    800.0, 1200.0, 1600.0, 2400.0, 3200.0, 4800.0, 6400.0, 9600.0,
)


@dataclass
class LatencySample:
    """One completed request, as seen by a latency-monitoring attacker."""

    time: float          # completion time (ns)
    latency: float       # end-to-end latency (ns)
    core_id: int
    bank_id: int
    row: int
    was_hit: bool


@dataclass
class RfmRecord:
    """One issued RFM command (burst member)."""

    time: float
    provenance: RfmProvenance
    bank_id: int = -1            # -1 for all-bank
    mitigated_rows: Dict[int, int] = field(default_factory=dict)  # bank -> row


@dataclass
class ControllerStats:
    """Aggregate statistics for one simulation run."""

    requests_served: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    total_latency: float = 0.0
    refreshes: int = 0
    latency_samples: List[LatencySample] = field(default_factory=list)
    rfm_records: List[RfmRecord] = field(default_factory=list)
    record_samples: bool = True
    #: per-core running aggregates (kept on every path; O(1) updates)
    core_requests: Dict[int, int] = field(default_factory=dict)
    core_latency_total: Dict[int, float] = field(default_factory=dict)
    #: per-provenance running RFM counts (avoids rescanning rfm_records)
    rfm_counts: Dict[RfmProvenance, int] = field(default_factory=dict)
    #: total rows mitigated across all RFMs (energy model input)
    mitigated_row_total: int = 0
    #: per-core sample index, maintained only when ``record_samples``
    _samples_by_core: Dict[int, List[LatencySample]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # The always-on read-latency histogram lives in plain (non-field)
        # attributes: dataclass fields would enter dataclasses.asdict /
        # to_jsonable output and change persisted artifact bytes.  One
        # bisect per read keeps p50/p95/p99 available without the
        # default-off record_samples sample list.
        self.read_latency_bucket_counts: List[int] = (
            [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)
        )
        self.read_latency_max: float = 0.0

    # ------------------------------------------------------------------
    def record_completion(
        self,
        time: float,
        latency: float,
        core_id: int,
        bank_id: int,
        row: int,
        was_hit: bool,
        is_write: bool = False,
    ) -> None:
        """Account one completed request from scalars (hot path).

        Builds a :class:`LatencySample` only when sample recording is
        enabled; the default path touches counters alone.  Read
        latencies (``is_write=False``) additionally land in the
        fixed-bucket histogram behind the percentile accessors.
        """
        self.requests_served += 1
        self.total_latency += latency
        if not is_write:
            self.read_latency_bucket_counts[
                bisect_left(LATENCY_BUCKET_BOUNDS, latency)
            ] += 1
            if latency > self.read_latency_max:
                self.read_latency_max = latency
        if was_hit:
            self.row_hits += 1
        core_requests = self.core_requests
        if core_id in core_requests:
            core_requests[core_id] += 1
            self.core_latency_total[core_id] += latency
        else:
            core_requests[core_id] = 1
            self.core_latency_total[core_id] = latency
        if self.record_samples:
            sample = LatencySample(time, latency, core_id, bank_id, row, was_hit)
            self.latency_samples.append(sample)
            self._samples_by_core.setdefault(core_id, []).append(sample)

    def record_request(self, sample: LatencySample) -> None:
        """Account one completed request given a pre-built sample."""
        self.record_completion(
            sample.time,
            sample.latency,
            sample.core_id,
            sample.bank_id,
            sample.row,
            sample.was_hit,
        )

    def record_rfm(self, record: RfmRecord) -> None:
        """Append one issued-RFM record and bump its provenance counter."""
        self.rfm_records.append(record)
        counts = self.rfm_counts
        counts[record.provenance] = counts.get(record.provenance, 0) + 1
        self.mitigated_row_total += len(record.mitigated_rows)

    # ------------------------------------------------------------------
    @property
    def mean_latency(self) -> float:
        if self.requests_served == 0:
            return 0.0
        return self.total_latency / self.requests_served

    @property
    def row_hit_rate(self) -> float:
        if self.requests_served == 0:
            return 0.0
        return self.row_hits / self.requests_served

    def rfm_count(self, provenance: Optional[RfmProvenance] = None) -> int:
        """Number of RFMs issued, optionally filtered by provenance. O(1)."""
        if provenance is None:
            return len(self.rfm_records)
        return self.rfm_counts.get(provenance, 0)

    def core_samples(self, core_id: int) -> List[LatencySample]:
        """Latency samples belonging to one core (O(1) index lookup)."""
        return self._samples_by_core.get(core_id, [])

    def core_mean_latency(self, core_id: int) -> float:
        """Mean end-to-end latency for one core's requests (no rescans)."""
        n = self.core_requests.get(core_id, 0)
        if n == 0:
            return 0.0
        return self.core_latency_total[core_id] / n

    # ------------------------------------------------------------------
    def read_latency_percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) of read latency, in ns.

        Linear interpolation inside the always-on fixed-bucket
        histogram (:data:`LATENCY_BUCKET_BOUNDS`); the overflow bucket
        clamps to the last edge (see :attr:`read_latency_max` for the
        true tail).  Available on every run — unlike the sample-based
        path, which needs the default-off ``record_samples``.
        """
        from repro.obs.metrics import percentile_from_buckets

        return percentile_from_buckets(
            LATENCY_BUCKET_BOUNDS, self.read_latency_bucket_counts, q
        )

    def latency_percentiles(self) -> Dict[str, float]:
        """``{"p50", "p95", "p99"}`` read-latency estimates in ns."""
        return {
            "p50": self.read_latency_percentile(0.50),
            "p95": self.read_latency_percentile(0.95),
            "p99": self.read_latency_percentile(0.99),
        }

    # ------------------------------------------------------------------
    @classmethod
    def merged(cls, parts: Sequence["ControllerStats"]) -> "ControllerStats":
        """Merge per-channel statistics into one aggregate view.

        Counters sum; per-core and per-provenance dicts merge by key;
        latency samples and RFM records interleave into global time
        order (stable within a channel, so equal timestamps keep
        channel order).  The result is a **snapshot**: it does not
        track the source objects afterwards.  A single part is
        returned as-is (the live object), which keeps the
        single-channel path allocation-free and bit-identical.
        """
        parts = list(parts)
        if not parts:
            return cls(record_samples=False)
        if len(parts) == 1:
            return parts[0]
        out = cls(record_samples=all(p.record_samples for p in parts))
        for part in parts:
            out.requests_served += part.requests_served
            out.reads += part.reads
            out.writes += part.writes
            out.row_hits += part.row_hits
            out.row_misses += part.row_misses
            out.row_conflicts += part.row_conflicts
            out.total_latency += part.total_latency
            out.refreshes += part.refreshes
            out.mitigated_row_total += part.mitigated_row_total
            for core_id, count in part.core_requests.items():
                out.core_requests[core_id] = (
                    out.core_requests.get(core_id, 0) + count
                )
                out.core_latency_total[core_id] = (
                    out.core_latency_total.get(core_id, 0.0)
                    + part.core_latency_total[core_id]
                )
            for provenance, count in part.rfm_counts.items():
                out.rfm_counts[provenance] = (
                    out.rfm_counts.get(provenance, 0) + count
                )
            for index, count in enumerate(part.read_latency_bucket_counts):
                out.read_latency_bucket_counts[index] += count
            if part.read_latency_max > out.read_latency_max:
                out.read_latency_max = part.read_latency_max
        out.rfm_records = sorted(
            (r for part in parts for r in part.rfm_records),
            key=lambda r: r.time,
        )
        out.latency_samples = sorted(
            (s for part in parts for s in part.latency_samples),
            key=lambda s: s.time,
        )
        for sample in out.latency_samples:
            out._samples_by_core.setdefault(sample.core_id, []).append(sample)
        return out
