"""The event-driven DDR5 memory controller.

This module ties the whole device model together: it decodes physical
addresses, schedules requests with the configured scheduling policy
(FR-FCFS by default; see :class:`repro.config.SystemConfig`), walks
the ACT/PRE/RD/WR
timing state machine per bank, issues refreshes, and — central to the
paper — issues RFM commands, either reactively (Alert Back-Off),
proactively on activation counts (ACB-RFM), or on a timer (TPRAC's
TB-RFM), as decided by the attached mitigation policy.

Fidelity notes
--------------
* Requests are modelled at command granularity: a request's service is
  decomposed into (optional PRE) + (optional ACT) + CAS + burst, with
  tRC/tRP/tRCD/tCL/tBL/tCCD/tWR respected per bank and a shared data
  bus serialized with tBL.
* REFab and RFMab close all rows and block the whole channel (tRFC /
  tRFMab) — this channel-wide stall is the paper's timing channel.
* An RFM does not abort requests already in flight; it delays requests
  scheduled after it, which is exactly the latency spike an attacker
  observes on its own accesses.

Hot-path notes
--------------
The wake loop below is, with the event kernel, where every perf sweep
spends its time, so it avoids per-wake allocations and repeated
attribute chains: timing parameters are cached as plain floats at
construction, the busy-bank scan reads the scheduler's maintained
sorted list, the device-side "must mitigate" flag is only re-read after
a serve (the only action that can change it), and per-request latency
samples are built lazily — :class:`~repro.controller.stats.LatencySample`
objects exist only when ``record_samples=True``.  All fast paths are
bit-for-bit equivalent to the straightforward formulation.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.config import DEFAULT_SYSTEM, SystemConfig
from repro.controller.request import MemRequest
from repro.controller.stats import ControllerStats, RfmRecord
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.commands import Command, CommandKind, RfmProvenance
from repro.dram.config import DramConfig
from repro.dram.rank import Channel
from repro.dram.sanitizer import ProtocolChecker
from repro.obs import trace as obs_trace
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.prac.abo import AboProtocol


class MemoryController:
    """One channel's memory controller.

    Parameters
    ----------
    engine:
        The shared simulation engine.
    config:
        Device configuration (organization, timing, PRAC parameters).
    policy:
        A mitigation policy (see :mod:`repro.mitigations`); ``None``
        models PRAC-enabled DRAM that never mitigates (the paper's
        normalization baseline when combined with ``enable_abo=False``).
    system:
        The declarative assembly spec (:class:`repro.config.SystemConfig`)
        naming the request scheduler, address mapping, refresh policy
        and page policy; defaults to the historical FR-FCFS / MOP /
        periodic-refresh / open-page system.
    mapping:
        A ready-made address mapping **instance**, overriding the one
        named by ``system`` (the multi-channel facade passes its shared
        mapping this way).
    page_policy:
        ``"open"`` leaves rows open after access; ``"closed"``
        precharges immediately; ``None`` takes the ``system`` value.
    enable_abo:
        Whether the device asserts Alert at N_BO.
    enable_refresh:
        Whether periodic REFab is simulated (tests may disable it).
    tref_per_trefi:
        Targeted-Refresh rate for the TPRAC co-design (Section 4.3).
    record_samples:
        Keep per-request :class:`LatencySample` records.  Off by
        default: the aggregate counters in :class:`ControllerStats`
        cover the performance experiments, and attacker-observation
        harnesses opt in explicitly.
    recorder:
        A ready-made :class:`~repro.obs.trace.TraceRecorder` instance,
        overriding the one ``system.trace`` would create (the
        multi-channel facade passes its shared recorder this way).
    metrics:
        A ready-made :class:`~repro.obs.metrics.MetricsRegistry`,
        overriding the one ``system.metrics`` would create (shared
        across channels by the facade).
    """

    def __init__(
        self,
        engine: Engine,
        config: DramConfig,
        policy: Optional[object] = None,
        system: Optional[SystemConfig] = None,
        mapping: Optional[AddressMapping] = None,
        page_policy: Optional[str] = None,
        enable_abo: bool = True,
        enable_refresh: bool = True,
        tref_per_trefi: float = 0.0,
        record_samples: bool = False,
        log_commands: bool = False,
        channel_id: int = 0,
        recorder: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        system = (system if system is not None else DEFAULT_SYSTEM).validate()
        if page_policy is None:
            page_policy = system.page_policy
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.engine = engine
        self.config = config.validate()
        self.system = system
        self.channel_id = channel_id
        self.channel = Channel(config, channel_id=channel_id)
        self.mapping = mapping or system.make_mapping(config.organization)
        self.page_policy = page_policy
        self.enable_abo = enable_abo
        self.stats = ControllerStats(record_samples=record_samples)
        self.scheduler = system.make_scheduler(
            config.organization.banks_per_channel
        )
        # Per-bank pipeline state beyond what Bank itself tracks.
        n = config.organization.banks_per_channel
        self._bank_cmd_ready: List[float] = [0.0] * n   # next CAS/ACT slot
        self._last_act_time: List[float] = [-1e18] * n
        self._last_cas_time: List[float] = [-1e18] * n  # for tRTP (RD->PRE)
        self._wr_recovery_until: List[float] = [0.0] * n

        # Hot-path caches: timing parameters as plain floats, and direct
        # references past the Channel/Scheduler accessors.  Values are
        # identical to the config attributes — results do not change.
        timing = config.timing
        self._tRP = timing.tRP
        self._tRAS = timing.tRAS
        self._tRTP = timing.tRTP
        self._tRCD = timing.tRCD
        self._tCL = timing.tCL
        self._tBL = timing.tBL
        self._tCCD = timing.tCCD
        self._tWR = timing.tWR
        self._banks = self.channel.banks
        self._queues = self.scheduler.queues
        # Per-bank ready-time cache.  A bank's earliest-start time is a
        # pure function of (its pipeline state, its queue head, the
        # channel blocking window); the wake loop recomputes it only
        # after one of those inputs changed.  Invalidation:
        # * bank-local (enqueue / pick+serve)  -> _ready_gen[bank] = -1
        # * channel-wide (RFMab burst, REFab)  -> _gen += 1
        # Every write point is in this module or hooked below; see
        # docs/performance.md for the inventory.
        self._ready_cache: List[float] = [0.0] * n
        self._ready_gen: List[int] = [-1] * n
        self._gen = 0
        #: phys_addr -> (DramAddress, flat bank id); decode is pure and
        #: workload footprints are bounded, so a plain dict suffices.
        self._decode_cache: Dict[int, Tuple[object, int]] = {}

        # ABO protocol --------------------------------------------------
        self.abo = AboProtocol(config, self.channel, clock=lambda: engine.now)
        self.abo.on_alert.append(self._on_alert)
        self._abo_deadline: Optional[float] = None

        # Refresh & tREFW -----------------------------------------------
        self.refresh = system.make_refresh(
            engine, self.channel, config, tref_per_trefi=tref_per_trefi
        )
        self.refresh.on_refw.append(self._on_refw)
        self.refresh.on_tref.append(self._on_tref)
        # REFab blocks the whole channel: drop every cached ready time.
        self.refresh.on_refresh.append(self._invalidate_ready_cache)
        if enable_refresh:
            self.refresh.start()

        # Mitigation policy ---------------------------------------------
        self.policy = policy
        self._pending_rfms: List[Tuple[RfmProvenance, int]] = []
        if policy is not None:
            policy.attach(self)

        self._wake_event = None

        #: optional command-level trace for post-hoc timing verification
        self.command_log: Optional[List[Command]] = [] if log_commands else None
        #: optional online protocol sanitizer (SystemConfig(sanitize=True))
        self.sanitizer: Optional[ProtocolChecker] = (
            ProtocolChecker(self.config) if system.sanitize else None
        )
        #: optional structured trace recorder (SystemConfig(trace=True));
        #: the multi-channel facade passes one shared instance.
        if recorder is None and system.trace:
            recorder = TraceRecorder(self.config)
        self.recorder: Optional[TraceRecorder] = recorder
        # The serve loop's single trace guard: one bound-method load and
        # one None check per command whether zero, one or more consumers
        # are attached — the telemetry-off fast path is unchanged.
        self._trace = (
            self._log
            if (
                log_commands
                or self.sanitizer is not None
                or recorder is not None
            )
            else None
        )
        if self._trace is not None:
            self.refresh.on_refresh.append(
                lambda start: self._log(CommandKind.REF, -1, -1, start)
            )
        if self.sanitizer is not None and enable_abo:
            # With ABO disabled alerts are reset on assertion, so the
            # checker must not arm its Alert deadline either.
            self.abo.on_alert.append(self.sanitizer.on_alert)
        if recorder is not None:
            self._register_trace_hooks(recorder)

        # Metrics registry ----------------------------------------------
        if metrics is None and system.metrics:
            metrics = MetricsRegistry()
        #: counters/gauges/histograms registry; the no-op singleton when
        #: metrics are off, so handles are always safe to bump.
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else NULL_REGISTRY
        )
        self._rfm_counters = {
            p: self.metrics.counter(f"rfm.{p.value}") for p in RfmProvenance
        }
        self._mitigated_rows_counter = self.metrics.counter("mitigation.rows")
        if self.metrics.enabled:
            self._bind_metrics(self.metrics)

    def _log(
        self,
        kind: CommandKind,
        bank_id: int,
        row: int,
        time: float,
        provenance: Optional[RfmProvenance] = None,
    ) -> None:
        command = Command(
            kind=kind, bank_id=bank_id, row=row, issue_time=time,
            provenance=provenance,
        )
        if self.command_log is not None:
            self.command_log.append(command)
        if self.sanitizer is not None:
            self.sanitizer.observe_command(command)
        if self.recorder is not None:
            self.recorder.observe_command(command, self.channel_id)

    def _register_trace_hooks(self, recorder: TraceRecorder) -> None:
        """Record lifecycle events as typed trace records.

        Served commands flow through :meth:`_log`; everything else —
        ABO alert assertion/clearing, tREFW counter resets, TREF slots
        and per-ACT PRAC counter values — is hooked here.  Only called
        when a recorder is attached, so the trace-off path registers no
        callbacks.
        """
        channel_id = self.channel_id
        self.abo.on_alert.append(
            lambda time, bank_id, row: recorder.record(
                obs_trace.ALERT, time, channel=channel_id, bank=bank_id, row=row
            )
        )
        self.abo.on_mitigated.append(
            lambda time: recorder.record(
                obs_trace.ALERT_DONE, time, channel=channel_id
            )
        )
        self.refresh.on_refw.append(
            lambda time: recorder.record(
                obs_trace.PRAC_RESET, time, channel=channel_id
            )
        )
        self.refresh.on_tref.append(
            lambda time: recorder.record(
                obs_trace.TREF_SLOT, time, channel=channel_id
            )
        )
        engine = self.engine
        for bank in self.channel:
            bank.on_activate(
                lambda b, row, count: recorder.record(
                    obs_trace.PRAC_COUNTER,
                    engine.now,
                    channel=channel_id,
                    bank=b.bank_id,
                    row=row,
                    detail={"count": count},
                )
            )

    def _bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Attach counting hooks for an enabled registry."""
        alerts = metrics.counter("abo.alerts")
        self.abo.on_alert.append(
            lambda time, bank_id, row: alerts.inc()
        )
        self.refresh.bind_metrics(metrics)
        bind = getattr(self.policy, "bind_metrics", None)
        if bind is not None:
            bind(metrics)

    # ==================================================================
    # Public API
    # ==================================================================
    def enqueue(self, request: MemRequest) -> None:
        """Accept a request; it will complete via ``request.complete``."""
        phys = request.phys_addr
        entry = self._decode_cache.get(phys)
        if entry is None:
            addr = self.mapping.decode(phys)
            entry = (addr, addr.flat_bank(self.config.organization))
            self._decode_cache[phys] = entry
        addr, bank_id = entry
        request.addr = addr
        now = self.engine.now
        request.arrive_time = now
        self.scheduler.enqueue(request, bank_id)
        self._ready_gen[bank_id] = -1  # queue head may have changed
        wake = self._wake_event
        if wake is None or wake.cancelled or wake.time > now:
            self._schedule_wake(now)

    def request_rfm(self, provenance: RfmProvenance, count: int = 1) -> None:
        """Ask the controller to issue ``count`` RFMab commands ASAP.

        Used by proactive policies (ACB thresholds, TPRAC's TB timer,
        the obfuscation defense's random injector).
        """
        self._pending_rfms.append((provenance, count))
        self._schedule_wake(self.engine.now)

    @property
    def now(self) -> float:
        return self.engine.now

    def idle(self) -> bool:
        """True when no requests or proactive RFMs are pending."""
        return self.scheduler.pending() == 0 and not self._pending_rfms

    # ==================================================================
    # ABO protocol hooks
    # ==================================================================
    def _on_alert(self, time: float, bank_id: int, row: int) -> None:
        if not self.enable_abo:
            # Device-side alert wiring disabled: clear immediately.
            self.abo.reset()
            return
        self._abo_deadline = self.engine.now + self.config.timing.tABOACT
        self._schedule_wake(self.engine.now)

    def _on_refw(self, time: float) -> None:
        """tREFW boundary: optional PRAC counter reset (Figure 14)."""
        if self.config.prac.reset_on_refresh:
            self.channel.reset_all_counters()
            if self.policy is not None:
                self.policy.on_counter_reset(self, time)

    def _on_tref(self, time: float) -> None:
        """A Targeted-Refresh slot fired inside this refresh."""
        if self.policy is not None:
            self.policy.on_tref(self, time)

    # ==================================================================
    # Scheduling loop
    # ==================================================================
    def _schedule_wake(self, time: float) -> None:
        now = self.engine.now
        if time < now:
            time = now
        wake = self._wake_event
        if wake is not None and not wake.cancelled:
            if wake.time <= time:
                return
            wake.cancel()
        self._wake_event = self.engine.schedule(time, self._wake, 1, "mc-wake")

    def _wake(self) -> None:
        self._wake_event = None
        engine = self.engine
        now = engine.now
        channel = self.channel
        abo = self.abo
        enable_abo = self.enable_abo
        scheduler = self.scheduler

        if now < channel.blocked_until:
            self._schedule_wake(channel.blocked_until)
            return

        # 1. Mandatory ABO mitigation --------------------------------
        if enable_abo and abo.alert_pending:
            deadline = self._abo_deadline
            due = (
                abo.must_mitigate_now
                or (deadline is not None and now >= deadline)
                or scheduler.pending() == 0
            )
            if due:
                self._issue_rfm_burst(abo.rfm_burst_size(), RfmProvenance.ABO)
                abo.mitigation_done()
                self._abo_deadline = None
                self._schedule_wake(channel.blocked_until)
                return

        # 2. Proactive RFMs requested by the policy -------------------
        if self._pending_rfms:
            provenance, count = self._pending_rfms.pop(0)
            self._issue_rfm_burst(count, provenance)
            self._schedule_wake(channel.blocked_until)
            return

        # 3. Serve requests ------------------------------------------
        next_wake: Optional[float] = self._abo_deadline
        served_any = False
        banks = self._banks
        queues = self._queues
        cmd_ready = self._bank_cmd_ready
        last_act = self._last_act_time
        last_cas = self._last_cas_time
        wr_recovery = self._wr_recovery_until
        ready_cache = self._ready_cache
        ready_gen = self._ready_gen
        gen = self._gen
        tRP = self._tRP
        tRAS = self._tRAS
        tRTP = self._tRTP
        blocked_until = channel.blocked_until
        # The ABO grace countdown only moves when this loop issues an
        # ACT (via _serve), so the flag is re-read after serves rather
        # than on every bank iteration.
        must_mitigate = enable_abo and abo.must_mitigate_now
        # Iterate the scheduler's live sorted list: pick() may remove
        # the *current* bank (position i), never a later one, so the
        # post-serve identity check keeps the scan exact with no
        # per-wake snapshot allocation.
        busy = scheduler.banks_with_work()
        i = 0
        n = len(busy)
        while i < n:
            bank_id = busy[i]
            # ABO grace exhausted mid-loop: stop ACTs, mitigate first.
            if must_mitigate:
                self._schedule_wake(now)
                break
            if ready_gen[bank_id] == gen:
                ready = ready_cache[bank_id]
            else:
                bank = banks[bank_id]
                # --- inline _bank_ready_time (kept in sync with the
                # method, which remains the readable reference).
                ready = cmd_ready[bank_id]
                if blocked_until > ready:
                    ready = blocked_until
                head = queues[bank_id][0]
                open_row = bank.open_row
                if open_row is None:
                    act_at = bank.ready_at
                    pd = bank.precharge_done_at
                    if pd > act_at:
                        act_at = pd
                    if act_at > ready:
                        ready = act_at
                elif head.addr.row != open_row:
                    pre_at = head.arrive_time
                    t = last_act[bank_id] + tRAS
                    if t > pre_at:
                        pre_at = t
                    t = last_cas[bank_id] + tRTP
                    if t > pre_at:
                        pre_at = t
                    t = wr_recovery[bank_id]
                    if t > pre_at:
                        pre_at = t
                    act_at = pre_at + tRP
                    t = bank.ready_at
                    if t > act_at:
                        act_at = t
                    if act_at > ready:
                        ready = act_at
                # --- end inline
                ready_cache[bank_id] = ready
                ready_gen[bank_id] = gen
            if ready > now:
                if next_wake is None or ready < next_wake:
                    next_wake = ready
                i += 1
                continue
            request = scheduler.pick(bank_id, banks[bank_id])
            if request is None:
                i += 1
                continue
            self._serve(request, bank_id)
            ready_gen[bank_id] = -1  # pipeline state + queue head changed
            served_any = True
            if enable_abo:
                must_mitigate = abo.must_mitigate_now
            n = len(busy)
            if i < n and busy[i] == bank_id:
                # Bank still busy: refresh its cached ready time for the
                # re-examination pass this serve will schedule.
                ready = self._bank_ready_time(bank_id)
                ready_cache[bank_id] = ready
                ready_gen[bank_id] = gen
                if next_wake is None or ready < next_wake:
                    next_wake = ready
                i += 1

        if served_any and scheduler._total_pending:
            # Re-examine immediately: serving may have changed state.
            target = now
        elif next_wake is not None:
            target = next_wake if next_wake > now else now
        else:
            return
        # Inline _schedule_wake (the wake handle is usually None here:
        # it was cleared on entry and only hooks re-arm it mid-wake).
        wake = self._wake_event
        if wake is not None and not wake.cancelled:
            if wake.time <= target:
                return
            wake.cancel()
        self._wake_event = engine.schedule(target, self._wake, 1, "mc-wake")

    # ------------------------------------------------------------------
    def _invalidate_ready_cache(self, _time: float = 0.0) -> None:
        """Drop every cached bank ready time (channel-wide state moved).

        Registered on the refresh hook and called after RFM bursts; any
        out-of-band mutation of bank timing state must call it too.
        """
        self._gen += 1

    # ------------------------------------------------------------------
    def _earliest_precharge(self, bank_id: int, arrival: float) -> float:
        """When a PRE for a pending conflict could have been issued.

        Models an eager controller: once a conflicting request is in
        the queue, the precharge goes out as soon as tRAS (ACT->PRE),
        tRTP (RD->PRE) and write recovery allow — not when the request
        is finally picked.
        """
        pre_at = arrival
        t = self._last_act_time[bank_id] + self._tRAS
        if t > pre_at:
            pre_at = t
        t = self._last_cas_time[bank_id] + self._tRTP
        if t > pre_at:
            pre_at = t
        t = self._wr_recovery_until[bank_id]
        if t > pre_at:
            pre_at = t
        return pre_at

    def _bank_ready_time(self, bank_id: int) -> float:
        """Earliest time the head request of this bank could start.

        Readable reference for the inlined fast path in :meth:`_wake`;
        keep the two in sync.
        """
        bank = self._banks[bank_id]
        t = self._bank_cmd_ready[bank_id]
        blocked = self.channel.blocked_until
        if blocked > t:
            t = blocked
        queue = self._queues[bank_id]
        if not queue:
            return t
        head = queue[0]
        open_row = bank.open_row
        if open_row is not None and head.addr.row == open_row:
            return t
        if open_row is None:
            act_at = bank.ready_at
            if bank.precharge_done_at > act_at:
                act_at = bank.precharge_done_at
        else:
            act_at = self._earliest_precharge(bank_id, head.arrive_time) + self._tRP
            if bank.ready_at > act_at:
                act_at = bank.ready_at
        return act_at if act_at > t else t

    def _serve(self, request: MemRequest, bank_id: int) -> None:
        """Walk the command sequence for one request; schedule completion."""
        bank = self._banks[bank_id]
        engine = self.engine
        channel = self.channel
        now = engine.now
        row = request.addr.row
        t = now
        v = self._bank_cmd_ready[bank_id]
        if v > t:
            t = v
        v = channel.blocked_until
        if v > t:
            t = v

        trace = self._trace
        open_row = bank.open_row
        if open_row == row:
            was_hit = True
            cas_time = t
        else:
            was_hit = False
            if open_row is not None:
                # Row conflict: eager precharge (see _earliest_precharge).
                pre_time = self._earliest_precharge(bank_id, request.arrive_time)
                bank.precharge(pre_time)
                if trace is not None:
                    trace(CommandKind.PRE, bank_id, -1, pre_time)
                self.stats.row_conflicts += 1
            else:
                self.stats.row_misses += 1
            act_time = t
            if bank.ready_at > act_time:
                act_time = bank.ready_at
            if bank.precharge_done_at > act_time:
                act_time = bank.precharge_done_at
            bank.activate(row, act_time)
            if trace is not None:
                trace(CommandKind.ACT, bank_id, row, act_time)
            self._last_act_time[bank_id] = act_time
            cas_time = act_time + self._tRCD
        self._last_cas_time[bank_id] = cas_time
        if trace is not None:
            trace(
                CommandKind.WR if request.is_write else CommandKind.RD,
                bank_id,
                row,
                cas_time,
            )

        data_start = cas_time + self._tCL  # same CAS latency for RD/WR in model
        if channel.bus_free_at > data_start:
            data_start = channel.bus_free_at
        data_end = data_start + self._tBL
        channel.bus_free_at = data_end
        bank_stats = bank.stats  # inline Bank.record_column
        if request.is_write:
            bank_stats.writes += 1
            self._wr_recovery_until[bank_id] = data_end + self._tWR
        else:
            bank_stats.reads += 1
        self._bank_cmd_ready[bank_id] = cas_time + self._tCCD
        if self.page_policy == "closed":
            pre_time = data_end + self._tRTP
            v = self._last_act_time[bank_id] + self._tRAS
            if v > pre_time:
                pre_time = v
            v = self._wr_recovery_until[bank_id]
            if v > pre_time:
                pre_time = v
            bank.precharge(pre_time)
            if trace is not None:
                trace(CommandKind.PRE, bank_id, -1, pre_time)

        engine.schedule(
            data_end,
            partial(self._finish, request, bank_id, row, was_hit),
            2,
            "mc-done",
        )

    def _finish(self, request: MemRequest, bank_id: int, row: int, was_hit: bool) -> None:
        now = self.engine.now
        stats = self.stats
        stats.record_completion(
            now,
            now - request.arrive_time,
            request.core_id,
            bank_id,
            row,
            was_hit,
            request.is_write,
        )
        if request.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        request.complete(now)

    # ------------------------------------------------------------------
    def _issue_rfm_burst(self, count: int, provenance: RfmProvenance) -> None:
        """Issue ``count`` back-to-back RFMab commands, mitigating rows."""
        timing = self.config.timing
        # Like refresh, an RFM waits for in-flight transfers to drain.
        t = max(
            self.engine.now, self.channel.blocked_until, self.channel.bus_free_at
        )
        for _ in range(count):
            start = max(t, self.channel.blocked_until)
            end = self.channel.block(start, timing.tRFMab)
            if self._trace is not None:
                self._log(CommandKind.RFM_AB, -1, -1, start, provenance)
            mitigated: Dict[int, int] = {}
            if self.policy is not None:
                mitigated = self.policy.mitigate_on_rfm(self, start, provenance)
            self.stats.record_rfm(
                RfmRecord(
                    time=start,
                    provenance=provenance,
                    mitigated_rows=mitigated,
                )
            )
            self.channel.rfm_count += 1
            self._rfm_counters[provenance].inc()
            self._mitigated_rows_counter.inc(len(mitigated))
            t = end
        for bank in self.channel:
            bank.activations_since_rfm = 0
        # The burst moved blocked_until and closed rows on every bank.
        self._invalidate_ready_cache()
