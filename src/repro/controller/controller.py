"""The event-driven DDR5 memory controller.

This module ties the whole device model together: it decodes physical
addresses, schedules requests with FR-FCFS, walks the ACT/PRE/RD/WR
timing state machine per bank, issues refreshes, and — central to the
paper — issues RFM commands, either reactively (Alert Back-Off),
proactively on activation counts (ACB-RFM), or on a timer (TPRAC's
TB-RFM), as decided by the attached mitigation policy.

Fidelity notes
--------------
* Requests are modelled at command granularity: a request's service is
  decomposed into (optional PRE) + (optional ACT) + CAS + burst, with
  tRC/tRP/tRCD/tCL/tBL/tCCD/tWR respected per bank and a shared data
  bus serialized with tBL.
* REFab and RFMab close all rows and block the whole channel (tRFC /
  tRFMab) — this channel-wide stall is the paper's timing channel.
* An RFM does not abort requests already in flight; it delays requests
  scheduled after it, which is exactly the latency spike an attacker
  observes on its own accesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.controller.request import MemRequest
from repro.controller.scheduler import FrFcfsScheduler
from repro.controller.stats import ControllerStats, LatencySample, RfmRecord
from repro.core.engine import Engine
from repro.dram.address import AddressMapping, MopMapping
from repro.dram.commands import Command, CommandKind, RfmProvenance
from repro.dram.config import DramConfig
from repro.dram.rank import Channel
from repro.dram.refresh import RefreshScheduler
from repro.prac.abo import AboProtocol


class MemoryController:
    """One channel's memory controller.

    Parameters
    ----------
    engine:
        The shared simulation engine.
    config:
        Device configuration (organization, timing, PRAC parameters).
    policy:
        A mitigation policy (see :mod:`repro.mitigations`); ``None``
        models PRAC-enabled DRAM that never mitigates (the paper's
        normalization baseline when combined with ``enable_abo=False``).
    mapping:
        Address mapping; defaults to Minimalist Open Page.
    page_policy:
        ``"open"`` leaves rows open after access; ``"closed"``
        precharges immediately.
    enable_abo:
        Whether the device asserts Alert at N_BO.
    enable_refresh:
        Whether periodic REFab is simulated (tests may disable it).
    tref_per_trefi:
        Targeted-Refresh rate for the TPRAC co-design (Section 4.3).
    """

    def __init__(
        self,
        engine: Engine,
        config: DramConfig,
        policy: Optional[object] = None,
        mapping: Optional[AddressMapping] = None,
        page_policy: str = "open",
        enable_abo: bool = True,
        enable_refresh: bool = True,
        tref_per_trefi: float = 0.0,
        scheduler_cap: int = 4,
        record_samples: bool = True,
        log_commands: bool = False,
    ) -> None:
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.engine = engine
        self.config = config.validate()
        self.channel = Channel(config)
        self.mapping = mapping or MopMapping(config.organization)
        self.page_policy = page_policy
        self.enable_abo = enable_abo
        self.stats = ControllerStats(record_samples=record_samples)
        self.scheduler = FrFcfsScheduler(
            num_banks=config.organization.total_banks, cap=scheduler_cap
        )
        # Per-bank pipeline state beyond what Bank itself tracks.
        n = config.organization.total_banks
        self._bank_cmd_ready: List[float] = [0.0] * n   # next CAS/ACT slot
        self._last_act_time: List[float] = [-1e18] * n
        self._last_cas_time: List[float] = [-1e18] * n  # for tRTP (RD->PRE)
        self._wr_recovery_until: List[float] = [0.0] * n

        # ABO protocol --------------------------------------------------
        self.abo = AboProtocol(config, self.channel, clock=lambda: engine.now)
        self.abo.on_alert.append(self._on_alert)
        self._abo_deadline: Optional[float] = None

        # Refresh & tREFW -----------------------------------------------
        self.refresh = RefreshScheduler(
            engine, self.channel, config, tref_per_trefi=tref_per_trefi
        )
        self.refresh.on_refw.append(self._on_refw)
        self.refresh.on_tref.append(self._on_tref)
        if enable_refresh:
            self.refresh.start()

        # Mitigation policy ---------------------------------------------
        self.policy = policy
        self._pending_rfms: List[Tuple[RfmProvenance, int]] = []
        if policy is not None:
            policy.attach(self)

        self._wake_event = None

        #: optional command-level trace for post-hoc timing verification
        self.command_log: Optional[List[Command]] = [] if log_commands else None
        if log_commands:
            self.refresh.on_refresh.append(
                lambda start: self._log(CommandKind.REF, -1, -1, start)
            )

    def _log(self, kind: CommandKind, bank_id: int, row: int, time: float) -> None:
        if self.command_log is not None:
            self.command_log.append(
                Command(kind=kind, bank_id=bank_id, row=row, issue_time=time)
            )

    # ==================================================================
    # Public API
    # ==================================================================
    def enqueue(self, request: MemRequest) -> None:
        """Accept a request; it will complete via ``request.complete``."""
        request.addr = self.mapping.decode(request.phys_addr)
        request.arrive_time = self.engine.now
        bank_id = request.addr.flat_bank(self.config.organization)
        request.meta["bank"] = bank_id
        self.scheduler.enqueue(request, bank_id)
        self._schedule_wake(self.engine.now)

    def request_rfm(self, provenance: RfmProvenance, count: int = 1) -> None:
        """Ask the controller to issue ``count`` RFMab commands ASAP.

        Used by proactive policies (ACB thresholds, TPRAC's TB timer,
        the obfuscation defense's random injector).
        """
        self._pending_rfms.append((provenance, count))
        self._schedule_wake(self.engine.now)

    @property
    def now(self) -> float:
        return self.engine.now

    def idle(self) -> bool:
        """True when no requests or proactive RFMs are pending."""
        return self.scheduler.pending() == 0 and not self._pending_rfms

    # ==================================================================
    # ABO protocol hooks
    # ==================================================================
    def _on_alert(self, time: float, bank_id: int, row: int) -> None:
        if not self.enable_abo:
            # Device-side alert wiring disabled: clear immediately.
            self.abo.reset()
            return
        self._abo_deadline = self.engine.now + self.config.timing.tABOACT
        self._schedule_wake(self.engine.now)

    def _on_refw(self, time: float) -> None:
        """tREFW boundary: optional PRAC counter reset (Figure 14)."""
        if self.config.prac.reset_on_refresh:
            self.channel.reset_all_counters()
            if self.policy is not None:
                self.policy.on_counter_reset(self, time)

    def _on_tref(self, time: float) -> None:
        """A Targeted-Refresh slot fired inside this refresh."""
        if self.policy is not None:
            self.policy.on_tref(self, time)

    # ==================================================================
    # Scheduling loop
    # ==================================================================
    def _schedule_wake(self, time: float) -> None:
        time = max(time, self.engine.now)
        if self._wake_event is not None and not self._wake_event.cancelled:
            if self._wake_event.time <= time:
                return
            self._wake_event.cancel()
        self._wake_event = self.engine.schedule(time, self._wake, priority=1, label="mc-wake")

    def _wake(self) -> None:
        self._wake_event = None
        now = self.engine.now
        if now < self.channel.blocked_until:
            self._schedule_wake(self.channel.blocked_until)
            return

        # 1. Mandatory ABO mitigation --------------------------------
        if self.enable_abo and self.abo.alert_pending:
            due = (
                self.abo.must_mitigate_now
                or (self._abo_deadline is not None and now >= self._abo_deadline)
                or self.scheduler.pending() == 0
            )
            if due:
                self._issue_rfm_burst(self.abo.rfm_burst_size(), RfmProvenance.ABO)
                self.abo.mitigation_done()
                self._abo_deadline = None
                self._schedule_wake(self.channel.blocked_until)
                return

        # 2. Proactive RFMs requested by the policy -------------------
        if self._pending_rfms:
            provenance, count = self._pending_rfms.pop(0)
            self._issue_rfm_burst(count, provenance)
            self._schedule_wake(self.channel.blocked_until)
            return

        # 3. Serve requests ------------------------------------------
        next_wake: Optional[float] = None
        if self._abo_deadline is not None:
            next_wake = self._abo_deadline
        served_any = False
        for bank_id in list(self.scheduler.banks_with_work()):
            # ABO grace exhausted mid-loop: stop ACTs, mitigate first.
            if self.enable_abo and self.abo.must_mitigate_now:
                self._schedule_wake(now)
                break
            bank = self.channel.bank(bank_id)
            ready = self._bank_ready_time(bank_id)
            if ready > now:
                next_wake = ready if next_wake is None else min(next_wake, ready)
                continue
            request = self.scheduler.pick(bank_id, bank)
            if request is None:
                continue
            self._serve(request, bank_id)
            served_any = True
            if self.scheduler.pending(bank_id):
                ready = self._bank_ready_time(bank_id)
                next_wake = ready if next_wake is None else min(next_wake, ready)

        if served_any and self.scheduler.pending():
            # Re-examine immediately: serving may have changed state.
            self._schedule_wake(now)
        elif next_wake is not None:
            self._schedule_wake(max(next_wake, now))

    # ------------------------------------------------------------------
    def _earliest_precharge(self, bank_id: int, arrival: float) -> float:
        """When a PRE for a pending conflict could have been issued.

        Models an eager controller: once a conflicting request is in
        the queue, the precharge goes out as soon as tRAS (ACT->PRE),
        tRTP (RD->PRE) and write recovery allow — not when the request
        is finally picked.
        """
        timing = self.config.timing
        return max(
            arrival,
            self._last_act_time[bank_id] + timing.tRAS,
            self._last_cas_time[bank_id] + timing.tRTP,
            self._wr_recovery_until[bank_id],
        )

    def _bank_ready_time(self, bank_id: int) -> float:
        """Earliest time the head request of this bank could start."""
        timing = self.config.timing
        bank = self.channel.bank(bank_id)
        t = max(self._bank_cmd_ready[bank_id], self.channel.blocked_until)
        queue = self.scheduler.queues[bank_id]
        if not queue:
            return t
        head = queue[0]
        if bank.open_row is not None and head.addr.row == bank.open_row:
            return t
        if bank.open_row is None:
            act_at = max(bank.ready_at, bank.precharge_done_at)
        else:
            pre_at = self._earliest_precharge(bank_id, head.arrive_time)
            act_at = max(pre_at + timing.tRP, bank.ready_at)
        return max(t, act_at)

    def _serve(self, request: MemRequest, bank_id: int) -> None:
        """Walk the command sequence for one request; schedule completion."""
        timing = self.config.timing
        bank = self.channel.bank(bank_id)
        now = self.engine.now
        row = request.addr.row
        t = max(now, self._bank_cmd_ready[bank_id], self.channel.blocked_until)

        if bank.open_row == row:
            was_hit = True
            cas_time = t
        else:
            was_hit = False
            if bank.open_row is not None:
                # Row conflict: eager precharge (see _earliest_precharge).
                pre_time = self._earliest_precharge(bank_id, request.arrive_time)
                bank.precharge(pre_time)
                self._log(CommandKind.PRE, bank_id, -1, pre_time)
                self.stats.row_conflicts += 1
            else:
                self.stats.row_misses += 1
            act_time = max(t, bank.ready_at, bank.precharge_done_at)
            bank.activate(row, act_time)
            self._log(CommandKind.ACT, bank_id, row, act_time)
            self._last_act_time[bank_id] = act_time
            cas_time = act_time + timing.tRCD
        self._last_cas_time[bank_id] = cas_time
        self._log(
            CommandKind.WR if request.is_write else CommandKind.RD,
            bank_id,
            row,
            cas_time,
        )

        data_latency = timing.tCL  # same CAS latency for RD/WR in model
        data_start = max(cas_time + data_latency, self.channel.bus_free_at)
        data_end = data_start + timing.tBL
        self.channel.bus_free_at = data_end
        bank.record_column(request.is_write)
        if request.is_write:
            self._wr_recovery_until[bank_id] = data_end + timing.tWR
        self._bank_cmd_ready[bank_id] = cas_time + timing.tCCD
        if self.page_policy == "closed":
            pre_time = max(
                data_end + timing.tRTP,
                self._last_act_time[bank_id] + timing.tRAS,
                self._wr_recovery_until[bank_id],
            )
            bank.precharge(pre_time)

        sample = LatencySample(
            time=data_end,
            latency=data_end - request.arrive_time,
            core_id=request.core_id,
            bank_id=bank_id,
            row=row,
            was_hit=was_hit,
        )
        self.engine.schedule(
            data_end,
            lambda req=request, s=sample: self._finish(req, s),
            priority=2,
            label="mc-done",
        )

    def _finish(self, request: MemRequest, sample: LatencySample) -> None:
        self.stats.record_request(sample)
        if request.is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        request.complete(self.engine.now)

    # ------------------------------------------------------------------
    def _issue_rfm_burst(self, count: int, provenance: RfmProvenance) -> None:
        """Issue ``count`` back-to-back RFMab commands, mitigating rows."""
        timing = self.config.timing
        # Like refresh, an RFM waits for in-flight transfers to drain.
        t = max(
            self.engine.now, self.channel.blocked_until, self.channel.bus_free_at
        )
        for _ in range(count):
            start = max(t, self.channel.blocked_until)
            end = self.channel.block(start, timing.tRFMab)
            self._log(CommandKind.RFM_AB, -1, -1, start)
            mitigated: Dict[int, int] = {}
            if self.policy is not None:
                mitigated = self.policy.mitigate_on_rfm(self, start, provenance)
            self.stats.record_rfm(
                RfmRecord(
                    time=start,
                    provenance=provenance,
                    mitigated_rows=mitigated,
                )
            )
            self.channel.rfm_count += 1
            t = end
        for bank in self.channel:
            bank.activations_since_rfm = 0
