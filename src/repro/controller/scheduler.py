"""FR-FCFS request scheduling with a row-hit cap.

First-Ready, First-Come-First-Served: among queued requests, row-buffer
hits are preferred (they are "ready" without an ACT); ties break by age.
An unbounded hit-first policy can starve conflicting requests, so the
paper's controller caps consecutive row hits at 4 (Table 3, following
Mutlu & Moscibroda); after the cap the oldest request wins regardless.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.controller.request import MemRequest
from repro.dram.bank import Bank


class FrFcfsScheduler:
    """Per-bank FR-FCFS queues with a configurable row-hit cap."""

    def __init__(self, num_banks: int, cap: int = 4, queue_depth: int = 64) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.cap = cap
        self.queue_depth = queue_depth
        self.queues: List[Deque[MemRequest]] = [deque() for _ in range(num_banks)]
        self._consecutive_hits: Dict[int, int] = {b: 0 for b in range(num_banks)}
        # Busy-bank tracking keeps the controller's wake loop O(busy)
        # instead of O(total banks); total_pending avoids re-summing.
        self._busy: set = set()
        self._total_pending = 0

    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest, bank_id: int) -> None:
        """Append a decoded request to its bank queue."""
        if request.addr is None:
            raise ValueError("request must be decoded before enqueueing")
        self.queues[bank_id].append(request)
        self._busy.add(bank_id)
        self._total_pending += 1

    def pending(self, bank_id: Optional[int] = None) -> int:
        """Queued request count, per bank or total."""
        if bank_id is not None:
            return len(self.queues[bank_id])
        return self._total_pending

    def is_full(self, bank_id: int) -> bool:
        """Whether a bank queue reached its depth limit."""
        return len(self.queues[bank_id]) >= self.queue_depth

    def banks_with_work(self) -> Iterable[int]:
        """Bank ids with at least one queued request, ascending."""
        return sorted(self._busy)

    # ------------------------------------------------------------------
    def pick(self, bank_id: int, bank: Bank) -> Optional[MemRequest]:
        """Choose and remove the next request for ``bank_id``.

        Row hits win until ``cap`` consecutive hits have been served
        while an older non-hit waits; then the oldest request is served
        to guarantee forward progress.
        """
        queue = self.queues[bank_id]
        if not queue:
            return None
        oldest = queue[0]
        hit_index = None
        if bank.open_row is not None:
            for index, req in enumerate(queue):
                if req.addr is not None and req.addr.row == bank.open_row:
                    hit_index = index
                    break
        use_hit = (
            hit_index is not None
            and (hit_index == 0 or self._consecutive_hits[bank_id] < self.cap)
        )
        if use_hit:
            assert hit_index is not None
            chosen = queue[hit_index]
            del queue[hit_index]
            if hit_index > 0:
                self._consecutive_hits[bank_id] += 1
        else:
            self._consecutive_hits[bank_id] = 0
            queue.popleft()
            chosen = oldest
        self._total_pending -= 1
        if not queue:
            self._busy.discard(bank_id)
        return chosen
