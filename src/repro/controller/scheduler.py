"""FR-FCFS request scheduling with a row-hit cap.

First-Ready, First-Come-First-Served: among queued requests, row-buffer
hits are preferred (they are "ready" without an ACT); ties break by age.
An unbounded hit-first policy can starve conflicting requests, so the
paper's controller caps consecutive row hits at 4 (Table 3, following
Mutlu & Moscibroda); after the cap the oldest request wins regardless.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.controller.request import MemRequest
from repro.dram.bank import Bank


class FrFcfsScheduler:
    """Per-bank FR-FCFS queues with a configurable row-hit cap."""

    def __init__(self, num_banks: int, cap: int = 4, queue_depth: int = 64) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.cap = cap
        self.queue_depth = queue_depth
        self.queues: List[Deque[MemRequest]] = [deque() for _ in range(num_banks)]
        self._consecutive_hits: List[int] = [0] * num_banks
        # Busy-bank tracking: a sorted list maintained at the (rare)
        # empty<->busy transitions, so the controller's per-wake scan
        # needs no per-call sort or set copy.  total_pending avoids
        # re-summing queue lengths.
        self._busy: List[int] = []
        self._total_pending = 0

    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest, bank_id: int) -> None:
        """Append a decoded request to its bank queue."""
        if request.addr is None:
            raise ValueError("request must be decoded before enqueueing")
        queue = self.queues[bank_id]
        if not queue:
            insort(self._busy, bank_id)
        queue.append(request)
        self._total_pending += 1

    def pending(self, bank_id: Optional[int] = None) -> int:
        """Queued request count, per bank or total."""
        if bank_id is not None:
            return len(self.queues[bank_id])
        return self._total_pending

    def is_full(self, bank_id: int) -> bool:
        """Whether a bank queue reached its depth limit."""
        return len(self.queues[bank_id]) >= self.queue_depth

    def banks_with_work(self) -> Sequence[int]:
        """Bank ids with at least one queued request, ascending.

        Returns the live internal list (no copy): callers that serve
        requests while iterating must snapshot it first.
        """
        return self._busy

    # ------------------------------------------------------------------
    def pick(self, bank_id: int, bank: Bank) -> Optional[MemRequest]:
        """Choose and remove the next request for ``bank_id``.

        Row hits win until ``cap`` consecutive hits have been served
        while an older non-hit waits; then the oldest request is served
        to guarantee forward progress.  Requests are decoded at enqueue
        time, so the scan compares rows directly — no per-request
        revalidation, no temporary allocations.
        """
        queue = self.queues[bank_id]
        if not queue:
            return None
        chosen = None
        open_row = bank.open_row
        if open_row is not None:
            hits = self._consecutive_hits
            index = 0
            for req in queue:
                if req.addr.row == open_row:
                    if index == 0 or hits[bank_id] < self.cap:
                        chosen = req
                        del queue[index]
                        if index > 0:
                            hits[bank_id] += 1
                    break
                index += 1
        if chosen is None:
            # No row hit queued, or the hit cap is exhausted: serve the
            # oldest request and reset the consecutive-hit streak.
            self._consecutive_hits[bank_id] = 0
            chosen = queue.popleft()
        self._total_pending -= 1
        if not queue:
            self._busy.remove(bank_id)
        return chosen
