"""Pluggable per-bank request schedulers.

The controller picks the next request per bank through one of the
registered scheduling policies (:data:`SCHEDULERS`, addressed by the
``scheduler`` field of :class:`repro.config.SystemConfig`):

* ``fr_fcfs`` — First-Ready, First-Come-First-Served with a row-hit
  cap (the paper's controller, Table 3, following Mutlu & Moscibroda):
  among queued requests, row-buffer hits are preferred (they are
  "ready" without an ACT); ties break by age.  An unbounded hit-first
  policy can starve conflicting requests, so consecutive row hits are
  capped at 4; after the cap the oldest request wins regardless.
* ``fcfs`` — strict arrival order, no row-hit preference.  The
  locality-blind baseline: maximum fairness, minimum row-buffer reuse.
* ``fr_fcfs_cap`` — batch/starvation-capped FR-FCFS (PAR-BS-style):
  the oldest ``batch`` requests of a bank form the current batch; row
  hits win *within* the batch only, so no request waits more than one
  batch once it reaches the front — a hard starvation bound instead of
  ``fr_fcfs``'s consecutive-hit heuristic.

All policies share the per-bank queue machinery
(:class:`BankQueueScheduler`): O(1) enqueue, a maintained sorted
busy-bank list for the controller's wake scan, and a total-pending
counter — the hot-path contract the controller relies on.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Any, Deque, List, Optional, Sequence

from repro.controller.request import MemRequest
from repro.dram.bank import Bank
from repro.registry import Registry

#: Request-scheduler registry: ``SystemConfig.scheduler`` names resolve
#: here.  Factories are called as ``factory(num_banks=..., **params)``.
SCHEDULERS = Registry("scheduler", "scheduler")


class BankQueueScheduler:
    """Shared per-bank queue machinery behind every scheduling policy.

    Subclasses implement :meth:`pick` (choose and remove the next
    request for a bank) and inherit the bookkeeping: busy-bank
    tracking via a sorted list maintained at the (rare) empty<->busy
    transitions, so the controller's per-wake scan needs no per-call
    sort or set copy, and ``_total_pending`` avoids re-summing queue
    lengths.
    """

    def __init__(self, num_banks: int, queue_depth: int = 64) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.queue_depth = queue_depth
        self.queues: List[Deque[MemRequest]] = [deque() for _ in range(num_banks)]
        self._busy: List[int] = []
        self._total_pending = 0

    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest, bank_id: int) -> None:
        """Append a decoded request to its bank queue."""
        if request.addr is None:
            raise ValueError("request must be decoded before enqueueing")
        queue = self.queues[bank_id]
        if not queue:
            insort(self._busy, bank_id)
        queue.append(request)
        self._total_pending += 1

    def pending(self, bank_id: Optional[int] = None) -> int:
        """Queued request count, per bank or total."""
        if bank_id is not None:
            return len(self.queues[bank_id])
        return self._total_pending

    def is_full(self, bank_id: int) -> bool:
        """Whether a bank queue reached its depth limit."""
        return len(self.queues[bank_id]) >= self.queue_depth

    def banks_with_work(self) -> Sequence[int]:
        """Bank ids with at least one queued request, ascending.

        Returns the live internal list (no copy): callers that serve
        requests while iterating must snapshot it first.
        """
        return self._busy

    # ------------------------------------------------------------------
    def _remove(self, bank_id: int, index: int) -> MemRequest:
        """Remove and return the request at ``index`` of a bank queue,
        maintaining the busy list and pending counter."""
        queue = self.queues[bank_id]
        if index == 0:
            chosen = queue.popleft()
        else:
            chosen = queue[index]
            del queue[index]
        self._total_pending -= 1
        if not queue:
            self._busy.remove(bank_id)
        return chosen

    def pick(self, bank_id: int, bank: Bank) -> Optional[MemRequest]:
        """Choose and remove the next request for ``bank_id``."""
        raise NotImplementedError


@SCHEDULERS.register("fr_fcfs")
class FrFcfsScheduler(BankQueueScheduler):
    """Per-bank FR-FCFS queues with a configurable row-hit cap."""

    def __init__(self, num_banks: int, cap: int = 4, queue_depth: int = 64) -> None:
        if cap <= 0:
            raise ValueError("cap must be positive")
        super().__init__(num_banks, queue_depth=queue_depth)
        self.cap = cap
        self._consecutive_hits: List[int] = [0] * num_banks

    # ------------------------------------------------------------------
    def pick(self, bank_id: int, bank: Bank) -> Optional[MemRequest]:
        """Choose and remove the next request for ``bank_id``.

        Row hits win until ``cap`` consecutive hits have been served
        while an older non-hit waits; then the oldest request is served
        to guarantee forward progress.  Requests are decoded at enqueue
        time, so the scan compares rows directly — no per-request
        revalidation, no temporary allocations.
        """
        queue = self.queues[bank_id]
        if not queue:
            return None
        chosen = None
        open_row = bank.open_row
        if open_row is not None:
            hits = self._consecutive_hits
            index = 0
            for req in queue:
                if req.addr.row == open_row:
                    if index == 0 or hits[bank_id] < self.cap:
                        chosen = req
                        del queue[index]
                        if index > 0:
                            hits[bank_id] += 1
                    break
                index += 1
        if chosen is None:
            # No row hit queued, or the hit cap is exhausted: serve the
            # oldest request and reset the consecutive-hit streak.
            self._consecutive_hits[bank_id] = 0
            chosen = queue.popleft()
        # Removal bookkeeping deliberately inlined (not via _remove):
        # this is the default policy on the simulator's hottest path and
        # the hit scan above already did the del/popleft.  Keep in sync
        # with BankQueueScheduler._remove.
        self._total_pending -= 1
        if not queue:
            self._busy.remove(bank_id)
        return chosen


@SCHEDULERS.register("fcfs")
class FcfsScheduler(BankQueueScheduler):
    """Strict first-come-first-served: oldest request wins, always.

    No row-buffer-hit preference: the locality-blind baseline against
    which FR-FCFS's reordering benefit (and its leakage surface) is
    measured.
    """

    def pick(self, bank_id: int, bank: Bank) -> Optional[MemRequest]:
        queue = self.queues[bank_id]
        if not queue:
            return None
        return self._remove(bank_id, 0)


@SCHEDULERS.register("fr_fcfs_cap")
class FrFcfsCapScheduler(BankQueueScheduler):
    """Batch/starvation-capped FR-FCFS (PAR-BS-style batching).

    The oldest ``batch`` queued requests of a bank form the current
    batch; :meth:`pick` serves row hits first *within the batch* (ties
    by age) and refuses to look past it, so every batched request is
    served within ``batch`` picks of entering the front — a hard
    per-request starvation bound, where ``fr_fcfs``'s consecutive-hit
    cap only bounds the streak length.  A new batch forms when the
    current one drains.
    """

    def __init__(
        self, num_banks: int, batch: int = 8, queue_depth: int = 64
    ) -> None:
        if batch <= 0:
            raise ValueError("batch must be positive")
        super().__init__(num_banks, queue_depth=queue_depth)
        self.batch = batch
        self._batch_left: List[int] = [0] * num_banks

    def pick(self, bank_id: int, bank: Bank) -> Optional[MemRequest]:
        queue = self.queues[bank_id]
        if not queue:
            return None
        left = self._batch_left[bank_id]
        if left == 0:
            left = self.batch
        # The batch never outgrows the queue (requests that arrived
        # after the batch formed are not admitted early, but a drained
        # queue resets it).
        size = left if left < len(queue) else len(queue)
        index = 0
        open_row = bank.open_row
        if open_row is not None:
            for i in range(size):
                if queue[i].addr.row == open_row:
                    index = i
                    break
        self._batch_left[bank_id] = size - 1
        return self._remove(bank_id, index)


def make_scheduler(name: str, num_banks: int, **params: Any) -> BankQueueScheduler:
    """Instantiate the scheduler registered under ``name``.

    Names: see ``SCHEDULERS.available()`` (``fr_fcfs``, ``fcfs``,
    ``fr_fcfs_cap``).  ``params`` are policy-specific knobs (``cap``,
    ``batch``, ``queue_depth``).
    """
    return SCHEDULERS.make(name, num_banks=num_banks, **params)
