"""The ``sharded`` engine backend: one worker process per DRAM channel.

Channels share nothing but the clock — each owns its controller,
mitigation policy, PRAC counters, ABO protocol, refresh machinery and
data bus — so for ``channels > 1`` the per-channel stacks can run on
separate processes and use real CPU parallelism.  The cores stay on
the main process; the memory side is replaced by
:class:`ShardedMemorySystem`, a buffering facade synchronized with the
workers at fixed **epoch barriers**:

1. The main process runs the cores one quantum ``(t, t+Q]``; every
   DRAM request is buffered as a plain ``(rid, time, phys_addr,
   is_write, core_id)`` tuple on its channel's outbox.
2. At the barrier the outboxes are shipped to the workers, each of
   which replays the arrivals at their exact timestamps on its own
   event engine and simulates its channel to the same boundary.
3. Completions come back one epoch later (the main process runs epoch
   ``j+1`` while the workers simulate epoch ``j`` — a two-deep
   pipeline) and are applied to the in-flight requests at the current
   boundary.

Accuracy contract: per-channel DRAM behaviour (command schedules, row
hits, activations, RFMs, refreshes, mitigation decisions, request
latencies as seen by the controller) is **exact** — the worker runs
the reference :class:`~repro.controller.controller.MemoryController`
on the true arrival times.  What is approximate is the *core-visible*
completion time, quantized up to the epoch boundary at which the
completion is applied (staleness bounded by two quanta), so IPC and
``elapsed_ns`` drift slightly from the ``event`` backend while the
memory statistics do not.  Runs are deterministic: arrivals ship in
enqueue order, workers replay them with deterministic event sequence
numbers, and completions are applied in (channel, completion) order.

Workers are forked (:class:`~repro.core.executor.ShardProcess`), so
the controller-building closure is inherited rather than pickled, and
results return as pickled stats digests when the run finalizes.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.config import DEFAULT_SYSTEM, SystemConfig
from repro.controller.memory_system import MemorySystem, _accepts_channel_id
from repro.controller.request import MemRequest
from repro.controller.stats import ControllerStats
from repro.core.engine import Engine
from repro.core.engines import EngineBackend
from repro.core.executor import ShardProcess, error_entry
from repro.dram.address import AddressMapping
from repro.dram.config import DramConfig
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

#: an arrival shipped to a worker: (rid, time, phys_addr, is_write, core_id)
Arrival = Tuple[int, float, int, bool, int]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _shard_worker(
    conn: Any,
    channel_id: int,
    build: Callable[[Engine, int], Any],
) -> None:
    """Entry point of one channel's worker process.

    Owns a private :class:`Engine` plus the reference controller stack
    for ``channel_id`` and speaks the epoch protocol: ``("epoch",
    t_end, arrivals)`` -> simulate to ``t_end``, reply ``("done",
    [(rid, done_time), ...])``; ``("stop",)`` -> reply ``("digest",
    ...)`` and exit.  Any exception is folded into an ``("error",
    entry)`` reply so the main process raises instead of hanging.
    """
    try:
        engine = Engine()
        controller = build(engine, channel_id)
        completed: List[Tuple[int, float]] = []

        def finish(request: MemRequest, rid: int) -> None:
            completed.append((rid, request.done_time))

        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "epoch":
                _, t_end, arrivals = message
                for rid, time, phys_addr, is_write, core_id in arrivals:
                    request = MemRequest(
                        phys_addr=phys_addr,
                        is_write=is_write,
                        core_id=core_id,
                        on_complete=partial(finish, rid=rid),
                    )
                    engine.schedule(
                        time, partial(controller.enqueue, request), 0, "shard-arrive"
                    )
                engine.run(until=t_end)
                conn.send(("done", completed))
                completed = []
            elif kind == "stop":
                conn.send(
                    (
                        "digest",
                        {
                            "channel_id": controller.channel_id,
                            "stats": controller.stats,
                            "bank_stats": [bank.stats for bank in controller.channel],
                            "rfm_count": controller.channel.rfm_count,
                            "refresh_count": controller.refresh.refresh_count,
                        },
                    )
                )
                conn.close()
                return
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown shard message {kind!r}")
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        try:
            conn.send(("error", error_entry(exc)))
        except Exception:  # pragma: no cover - pipe already gone
            pass


# ----------------------------------------------------------------------
# Post-run views (duck-typed to the live controller surface)
# ----------------------------------------------------------------------
class _BankView:
    """A finished bank: just its :class:`~repro.dram.bank.BankStats`."""

    __slots__ = ("stats",)

    def __init__(self, stats: Any) -> None:
        self.stats = stats


class _ChannelView:
    """A finished channel: iterable of bank views plus ``rfm_count``."""

    def __init__(self, bank_stats: List[Any], rfm_count: int) -> None:
        self._banks = [_BankView(stats) for stats in bank_stats]
        self.rfm_count = rfm_count

    def __iter__(self) -> Iterator[_BankView]:
        return iter(self._banks)

    def __len__(self) -> int:
        return len(self._banks)


class _RefreshView:
    __slots__ = ("refresh_count",)

    def __init__(self, refresh_count: int) -> None:
        self.refresh_count = refresh_count


class _ControllerView:
    """What result gathering reads off a controller, rebuilt from a
    worker digest: ``stats``, ``channel`` (banks), ``refresh``,
    ``channel_id``."""

    def __init__(self, digest: Dict[str, Any]) -> None:
        self.channel_id: int = digest["channel_id"]
        self.stats: ControllerStats = digest["stats"]
        self.channel = _ChannelView(digest["bank_stats"], digest["rfm_count"])
        self.refresh = _RefreshView(digest["refresh_count"])


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class ShardedMemorySystem:
    """Multi-channel memory facade with per-channel worker processes.

    Mirrors the :class:`~repro.controller.memory_system.MemorySystem`
    constructor and aggregate-view surface, but ``enqueue`` buffers
    requests instead of serving them — the epoch loop in
    :meth:`ShardedEngineBackend.run_system` ships the buffers to the
    workers and applies completions at the barriers.  Controller views
    (:attr:`controllers`, :attr:`stats`, bank iteration) become
    available once the run finalizes the worker digests.

    Shared cross-channel telemetry cannot span processes, so
    ``SystemConfig(trace=True)`` / ``metrics=True`` are rejected here;
    use the ``event`` backend for instrumented runs.
    """

    def __init__(
        self,
        engine: Engine,
        config: DramConfig,
        policy: Optional[object] = None,
        policy_factory: Optional[Callable[[], object]] = None,
        enable_abo: bool = True,
        enable_refresh: bool = True,
        tref_per_trefi: float = 0.0,
        record_samples: bool = False,
        system: Optional[SystemConfig] = None,
        page_policy: Optional[str] = None,
        mapping: Optional[AddressMapping] = None,
        backend: Optional[EngineBackend] = None,
    ) -> None:
        system = (system if system is not None else DEFAULT_SYSTEM).validate()
        config = system.apply_to(config).validate()
        channels = config.organization.channels
        if channels < 2:
            raise ValueError(
                "ShardedMemorySystem needs channels > 1; with one channel "
                "the sharded backend uses the in-process MemorySystem"
            )
        if policy is not None and policy_factory is not None:
            raise ValueError("pass either policy or policy_factory, not both")
        if policy is not None:
            raise ValueError(
                "a policy instance attaches to one controller; "
                f"multi-channel systems ({channels} channels) need "
                "policy_factory so every channel gets its own instance"
            )
        if system.trace or system.metrics:
            raise ValueError(
                "engine 'sharded' cannot share a trace recorder or metrics "
                "registry across worker processes; use engine='event' for "
                "instrumented runs"
            )
        self.engine = engine
        self.config = config
        self.system = system
        self.channels = channels
        self.backend = backend
        self.mapping = mapping or system.make_mapping(config.organization)
        self.recorder = None
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.sampler = None

        if policy_factory is None:
            def make_policy(channel_id: int) -> Optional[object]:
                return None
        elif _accepts_channel_id(policy_factory):
            def make_policy(channel_id: int) -> Optional[object]:
                return policy_factory(channel_id=channel_id)
        else:
            def make_policy(channel_id: int) -> Optional[object]:
                return policy_factory()

        def build_controller(worker_engine: Engine, channel_id: int) -> Any:
            # Workers run the batched controller's pure-Python serve
            # loop: per-channel results are byte-identical to the
            # reference controller (see repro.controller.batched), and
            # the folded re-examination wake cuts worker CPU — which
            # on few-core hosts is the whole bill.
            from repro.core.engines import ENGINES

            return ENGINES.make("batched", numpy=False).make_controller(
                worker_engine,
                config,
                policy=make_policy(channel_id),
                system=system,
                mapping=self.mapping,
                enable_abo=enable_abo,
                enable_refresh=enable_refresh,
                tref_per_trefi=tref_per_trefi,
                record_samples=record_samples,
                page_policy=page_policy,
                channel_id=channel_id,
                recorder=None,
                metrics=None,
            )

        # Fork one worker per channel (construction order = channel
        # order, so pipe traffic is addressed deterministically).  The
        # build closure crosses via fork inheritance, never pickling.
        self.workers: List[ShardProcess] = [
            ShardProcess(
                partial(_shard_worker, channel_id=channel_id, build=build_controller),
                name=f"shard-ch{channel_id}",
            )
            for channel_id in range(channels)
        ]
        self._outboxes: List[List[Arrival]] = [[] for _ in range(channels)]
        #: rid -> main-side request awaiting a worker completion
        self.inflight: Dict[int, MemRequest] = {}
        self._next_rid = 0
        self._views: Optional[List[_ControllerView]] = None

    # ------------------------------------------------------------------
    # Request routing (buffered)
    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest) -> None:
        """Buffer a request on its channel's outbox for the next epoch."""
        now = self.engine.now
        request.arrive_time = now
        rid = self._next_rid
        self._next_rid = rid + 1
        self.inflight[rid] = request
        self._outboxes[self.mapping.channel_of(request.phys_addr)].append(
            (rid, now, request.phys_addr, request.is_write, request.core_id)
        )

    def controller_for(self, phys_addr: int) -> Any:
        """Unsupported: controllers live on worker processes."""
        raise RuntimeError(
            "engine 'sharded' runs controllers on worker processes; "
            "live controller access needs engine='event'"
        )

    def drain_outboxes(self) -> List[List[Arrival]]:
        """Take this epoch's buffered arrivals, channel order."""
        outboxes = self._outboxes
        self._outboxes = [[] for _ in range(self.channels)]
        return outboxes

    def apply_completions(
        self, done_lists: List[List[Tuple[int, float]]], boundary: float
    ) -> None:
        """Complete in-flight requests at an epoch ``boundary``.

        ``done_lists`` is one worker reply per channel, in channel
        order; each list is in worker completion order.  Application
        order is therefore deterministic, and so is everything the
        ``on_complete`` hooks schedule.
        """
        inflight = self.inflight
        for completions in done_lists:
            for rid, _done_time in completions:
                inflight.pop(rid).complete(boundary)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finalize(self, digests: List[Dict[str, Any]]) -> None:
        """Install the post-run controller views from worker digests."""
        self._views = [_ControllerView(digest) for digest in digests]

    def close(self) -> None:
        """Tear down the worker processes (idempotent)."""
        workers, self.workers = self.workers, []
        for worker in workers:
            worker.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    @property
    def controllers(self) -> List[_ControllerView]:
        """Per-channel controller views (post-run digests)."""
        if self._views is None:
            raise RuntimeError(
                "sharded controller statistics are available after run(); "
                "live controller access needs engine='event'"
            )
        return self._views

    @property
    def now(self) -> float:
        return self.engine.now

    def idle(self) -> bool:
        """True when no request is awaiting a worker completion."""
        return not self.inflight

    @property
    def per_channel_stats(self) -> List[ControllerStats]:
        return [view.stats for view in self.controllers]

    @property
    def stats(self) -> ControllerStats:
        return ControllerStats.merged(self.per_channel_stats)

    def iter_banks(self) -> Iterator[_BankView]:
        """Every bank view across all channels (post-run aggregate)."""
        for view in self.controllers:
            yield from view.channel

    @property
    def activations(self) -> int:
        return sum(bank.stats.activations for bank in self.iter_banks())

    @property
    def refresh_count(self) -> int:
        return sum(view.refresh.refresh_count for view in self.controllers)

    @property
    def rfm_count(self) -> int:
        return sum(view.channel.rfm_count for view in self.controllers)

    def __len__(self) -> int:
        return self.channels

    def __iter__(self) -> Iterator[_ControllerView]:
        return iter(self.controllers)


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class ShardedEngineBackend(EngineBackend):
    """``engine="sharded"``: channels on worker processes, epoch barriers.

    ``engine_params``:

    ``quantum`` (float ns, default ``100.0``)
        Epoch length.  Smaller quanta tighten the core-visible
        completion quantization (closer to ``event``-backend IPC) but
        raise synchronization overhead; larger quanta amortize the
        barrier at the cost of staleness.  The default sits at the
        DRAM read-latency scale, the empirical wall-clock sweet spot
        on the bench shapes.  See docs/performance.md.
    """

    name = "sharded"

    def __init__(self, quantum: float = 100.0) -> None:
        if not isinstance(quantum, (int, float)) or isinstance(quantum, bool):
            raise ValueError(
                f"engine 'sharded' engine_params['quantum'] must be a "
                f"number of nanoseconds, got {quantum!r}"
            )
        if not quantum > 0:
            raise ValueError(
                f"engine 'sharded' engine_params['quantum'] must be "
                f"positive, got {quantum!r}"
            )
        self.quantum = float(quantum)

    def shards_channels(self, channels: int) -> bool:
        return channels > 1

    def make_memory(self, engine: Engine, config: Any, **kwargs: Any) -> Any:
        system = kwargs.get("system")
        system = (system if system is not None else DEFAULT_SYSTEM).validate()
        if system.apply_to(config).validate().organization.channels == 1:
            # One channel: nothing to shard — degenerate to the exact
            # in-process reference path (byte-identical to "event").
            return MemorySystem(engine, config, backend=self, **kwargs)
        return ShardedMemorySystem(engine, config, backend=self, **kwargs)

    def run_system(
        self,
        system: Any,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> None:
        memory = system.memory
        if not isinstance(memory, ShardedMemorySystem):
            # channels == 1 degenerated to the in-process facade.
            super().run_system(system, until=until, max_events=max_events)
            return
        if until is not None:
            raise ValueError(
                "engine 'sharded' runs whole workloads between epoch "
                "barriers; until= stepping needs engine='event'"
            )
        engine = system.engine
        quantum = self.quantum
        workers = memory.workers
        try:
            boundary = engine.now
            outstanding = 0  # epochs shipped, reply not yet received
            while system._unfinished > 0 or memory.inflight:
                boundary += quantum
                # max_events bounds each core quantum (runaway backstop,
                # not a precise total across epochs).
                engine.run(until=boundary, max_events=max_events)
                for worker, arrivals in zip(workers, memory.drain_outboxes()):
                    worker.send(("epoch", boundary, arrivals))
                outstanding += 1
                if outstanding >= 2:
                    # Two-deep pipeline: collect the epoch the workers
                    # simulated while the cores ran this one.
                    memory.apply_completions(
                        [worker.recv()[1] for worker in workers], boundary
                    )
                    outstanding -= 1
            while outstanding:
                memory.apply_completions(
                    [worker.recv()[1] for worker in workers], boundary
                )
                outstanding -= 1
            for worker in workers:
                worker.send(("stop",))
            memory.finalize([worker.recv()[1] for worker in workers])
        finally:
            memory.close()
