"""Memory controller: request scheduling, RFM issuing, statistics.

* :mod:`repro.controller.request` — the memory request record.
* :mod:`repro.controller.scheduler` — pluggable per-bank scheduling
  policies (FR-FCFS, FCFS, batch-capped FR-FCFS) behind the
  ``SCHEDULERS`` registry.
* :mod:`repro.controller.controller` — the event-driven controller
  that ties banks, the ABO protocol, refresh and mitigation policies
  together.
* :mod:`repro.controller.memory_system` — the N-channel facade that
  routes requests to per-channel controllers.
* :mod:`repro.controller.stats` — latency/RFM bookkeeping.
"""

from repro.controller.controller import MemoryController
from repro.controller.memory_system import MemorySystem
from repro.controller.request import MemRequest
from repro.controller.scheduler import (
    SCHEDULERS,
    BankQueueScheduler,
    FcfsScheduler,
    FrFcfsCapScheduler,
    FrFcfsScheduler,
    make_scheduler,
)
from repro.controller.stats import ControllerStats, LatencySample, RfmRecord

__all__ = [
    "BankQueueScheduler",
    "ControllerStats",
    "FcfsScheduler",
    "FrFcfsCapScheduler",
    "FrFcfsScheduler",
    "LatencySample",
    "MemRequest",
    "MemoryController",
    "MemorySystem",
    "RfmRecord",
    "SCHEDULERS",
    "make_scheduler",
]
