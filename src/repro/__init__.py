"""repro — a from-scratch reproduction of PRACLeak and TPRAC.

Paper: "When Mitigations Backfire: Timing Channel Attacks and Defense
for PRAC-Based RowHammer Mitigations" (ISCA 2025).

Layered architecture (bottom-up):

* :mod:`repro.core` — discrete-event simulation kernel.
* :mod:`repro.registry` / :mod:`repro.config` — component registries
  and the declarative :class:`SystemConfig` every system is built from.
* :mod:`repro.dram` — DDR5 device model with PRAC timings.
* :mod:`repro.prac` — Alert Back-Off protocol and mitigation queues.
* :mod:`repro.controller` — per-channel memory controllers (pluggable
  request schedulers) + RFM issuing, behind a multi-channel
  :class:`MemorySystem` facade.
* :mod:`repro.mitigations` — ABO-Only / ABO+ACB-RFM / TPRAC / §7 variants.
* :mod:`repro.cpu` — trace-driven cores + cache hierarchy.
* :mod:`repro.crypto` — AES-128 T-table substrate (the side-channel victim).
* :mod:`repro.attacks` — PRACLeak covert and side channels.
* :mod:`repro.workloads` — synthetic SPEC/CloudSuite-like catalog.
* :mod:`repro.analysis` — Feinting/TB-Window math, metrics, energy.
* :mod:`repro.experiments` — one harness per paper table/figure.
"""

__version__ = "1.1.0"

from repro.config import SystemConfig
from repro.core.engine import Engine
from repro.dram.config import DramConfig, ddr5_8000b, small_test_config
from repro.controller.controller import MemoryController
from repro.controller.memory_system import MemorySystem
from repro.controller.request import MemRequest
from repro.mitigations import (
    AboOnlyPolicy,
    AcbRfmPolicy,
    NoMitigationPolicy,
    ObfuscationPolicy,
    PerBankRfmPolicy,
    TpracPolicy,
    make_policy,
)
from repro.analysis.tb_window import tb_window_for_nrh

__all__ = [
    "AboOnlyPolicy",
    "AcbRfmPolicy",
    "DramConfig",
    "Engine",
    "MemRequest",
    "MemoryController",
    "MemorySystem",
    "NoMitigationPolicy",
    "ObfuscationPolicy",
    "PerBankRfmPolicy",
    "SystemConfig",
    "TpracPolicy",
    "__version__",
    "ddr5_8000b",
    "make_policy",
    "small_test_config",
    "tb_window_for_nrh",
]
