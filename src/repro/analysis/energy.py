"""DRAM energy model (Table 5 of the paper).

TPRAC's energy overhead has two components:

* **Mitigation energy** — each TB-RFM mitigates the most-activated row
  per bank: four victim refreshes plus one aggressor activation to
  reset the counter, i.e. five extra row activations per bank per RFM.
* **Non-mitigation energy** — TB-RFMs lengthen execution, so background
  power is burned for longer.

Per-operation energies are representative DDR5 values (pJ); the paper's
Table 5 reports relative overheads, which depend only on the ratios, so
the exact constants matter less than their proportions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import MemoryController
    from repro.controller.memory_system import MemorySystem

from repro.dram.config import DramConfig, ddr5_8000b


@dataclass(frozen=True)
class EnergyParams:
    """Per-operation energies (pJ) and background power (mW/bank)."""

    act_pre_pj: float = 170.0      # one ACT+PRE pair
    rd_pj: float = 110.0           # column read incl. IO
    wr_pj: float = 115.0
    ref_per_bank_pj: float = 450.0  # one bank's share of a REFab
    background_mw_per_bank: float = 4.0
    mitigation_acts: int = 5       # per mitigated row: 4 victim refreshes
                                   # + 1 aggressor counter-reset write


@dataclass
class EnergyBreakdown:
    """Energy totals (pJ) split the way Table 5 reports them."""

    activation_pj: float = 0.0
    column_pj: float = 0.0
    refresh_pj: float = 0.0
    background_pj: float = 0.0
    mitigation_pj: float = 0.0     # RFM-driven extra activations

    @property
    def total_pj(self) -> float:
        return (
            self.activation_pj
            + self.column_pj
            + self.refresh_pj
            + self.background_pj
            + self.mitigation_pj
        )

    def overhead_vs(self, baseline: "EnergyBreakdown") -> "EnergyOverhead":
        """Relative overhead split into mitigation / non-mitigation."""
        if baseline.total_pj <= 0:
            raise ValueError("baseline energy must be positive")
        base = baseline.total_pj
        mitigation = (self.mitigation_pj - baseline.mitigation_pj) / base
        non_mitigation = (
            (self.total_pj - self.mitigation_pj)
            - (baseline.total_pj - baseline.mitigation_pj)
        ) / base
        return EnergyOverhead(
            mitigation_pct=mitigation * 100.0,
            non_mitigation_pct=non_mitigation * 100.0,
        )


@dataclass(frozen=True)
class EnergyOverhead:
    """Table 5 row: percentage overheads."""

    mitigation_pct: float
    non_mitigation_pct: float

    @property
    def total_pct(self) -> float:
        return self.mitigation_pct + self.non_mitigation_pct


class EnergyModel:
    """Computes an :class:`EnergyBreakdown` from simulation statistics."""

    def __init__(
        self,
        config: Optional[DramConfig] = None,
        params: Optional[EnergyParams] = None,
    ) -> None:
        self.config = config or ddr5_8000b()
        self.params = params or EnergyParams()

    def from_counts(
        self,
        activations: int,
        reads: int,
        writes: int,
        refreshes: int,
        mitigations: int,
        elapsed_ns: float,
        banks: Optional[int] = None,
    ) -> EnergyBreakdown:
        """Energy from raw event counts over ``elapsed_ns``.

        ``mitigations`` counts per-bank row mitigations actually
        performed (each costs :attr:`EnergyParams.mitigation_acts`
        extra activations); banks whose queue was empty at an RFM do
        no work and burn no mitigation energy.  ``banks`` scales the
        refresh and background terms; it defaults to every bank in the
        organization and is overridden with the per-channel bank count
        when accounting a single channel of a multi-channel system.
        """
        p = self.params
        if banks is None:
            banks = self.config.organization.total_banks
        return EnergyBreakdown(
            activation_pj=activations * p.act_pre_pj,
            column_pj=reads * p.rd_pj + writes * p.wr_pj,
            refresh_pj=refreshes * banks * p.ref_per_bank_pj,
            # 1 mW * 1 ns = 1e-3 W * 1e-9 s = 1e-12 J = exactly 1 pJ.
            background_pj=p.background_mw_per_bank * banks * elapsed_ns,
            mitigation_pj=mitigations * p.mitigation_acts * p.act_pre_pj,
        )

    def from_controller(self, controller: "MemoryController") -> EnergyBreakdown:
        """Energy from a finished :class:`MemoryController` run."""
        stats = controller.stats
        activations = sum(b.stats.activations for b in controller.channel)
        mitigations = stats.mitigated_row_total  # running counter, no rescan
        policy = controller.policy
        if policy is not None and hasattr(policy, "mitigations_performed"):
            mitigations = max(mitigations, policy.mitigations_performed)
        return self.from_counts(
            activations=activations,
            reads=stats.reads,
            writes=stats.writes,
            refreshes=controller.refresh.refresh_count,
            mitigations=mitigations,
            elapsed_ns=controller.engine.now,
            banks=controller.config.organization.banks_per_channel,
        )

    def from_memory_system(self, memory: "MemorySystem") -> EnergyBreakdown:
        """Energy across every channel of a finished
        :class:`~repro.controller.memory_system.MemorySystem` run.

        Per-channel breakdowns (:meth:`from_controller`, each scaled by
        the per-channel bank count) sum component-wise; with one
        channel this equals the historical single-controller figure
        exactly.
        """
        parts = [self.from_controller(c) for c in memory.controllers]
        if len(parts) == 1:
            return parts[0]
        return EnergyBreakdown(
            activation_pj=sum(p.activation_pj for p in parts),
            column_pj=sum(p.column_pj for p in parts),
            refresh_pj=sum(p.refresh_pj for p in parts),
            background_pj=sum(p.background_pj for p in parts),
            mitigation_pj=sum(p.mitigation_pj for p in parts),
        )
