"""Storage overhead accounting (Section 6.8).

TPRAC's controller-side state is a single RFM Interval Register per
memory controller holding the TB-Window.  24 bits suffice to express
intervals up to ~half a tREFW at DRAM-clock granularity.  The in-DRAM
cost is the single-entry mitigation queue per bank (row address +
activation count), which prior PRAC designs already require.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.config import DramConfig, ddr5_8000b


@dataclass(frozen=True)
class StorageOverhead:
    """Bit counts for TPRAC's added state."""

    interval_register_bits: int
    queue_bits_per_bank: int
    banks: int

    @property
    def controller_bytes(self) -> float:
        return self.interval_register_bits / 8

    @property
    def dram_queue_bytes(self) -> float:
        return self.queue_bits_per_bank * self.banks / 8


def interval_register_bits(config: DramConfig) -> int:
    """Bits to encode intervals up to tREFW/2 in DRAM clock ticks."""
    max_interval_ticks = (config.timing.tREFW / 2) / config.timing.tCK
    return math.ceil(math.log2(max_interval_ticks))


def storage_overhead_bits(config: DramConfig = None) -> StorageOverhead:
    """Total TPRAC storage: one interval register + one queue entry/bank."""
    config = config or ddr5_8000b()
    org = config.organization
    row_bits = math.ceil(math.log2(org.rows_per_bank))
    count_bits = math.ceil(math.log2(max(2, config.prac.nbo)))
    return StorageOverhead(
        interval_register_bits=interval_register_bits(config),
        queue_bits_per_bank=row_bits + count_bits,
        banks=org.total_banks,
    )
