"""Storage accounting and experiment-result persistence.

Two kinds of "storage" live here:

* Hardware storage-overhead accounting (paper Section 6.8): TPRAC's
  controller-side state is a single RFM Interval Register per memory
  controller holding the TB-Window.  24 bits suffice to express
  intervals up to ~half a tREFW at DRAM-clock granularity.  The
  in-DRAM cost is the single-entry mitigation queue per bank (row
  address + activation count), which prior PRAC designs already
  require.

* On-disk result storage for the experiment suite: atomic JSON writes,
  content-hash cache keys, and the incrementally-flushed
  ``summary.json`` index that makes interrupted suite runs resumable.

Resumability makes persisted files *inputs*, so this module also
hardens the read side: result documents can carry a content-checksum
footer (:func:`attach_checksum`), readers validate it via
:func:`load_checked_json`, and anything unreadable is moved to a
``*.corrupt`` sidecar by :func:`quarantine_corrupt` — preserved for
forensics, invisible to ``--resume`` — so the orchestrators re-run the
work instead of trusting a damaged file.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.core.executor import FAULT_PLAN_ENV
from repro.dram.config import DramConfig, ddr5_8000b

PathLike = Union[str, Path]


@dataclass(frozen=True)
class StorageOverhead:
    """Bit counts for TPRAC's added state."""

    interval_register_bits: int
    queue_bits_per_bank: int
    banks: int

    @property
    def controller_bytes(self) -> float:
        return self.interval_register_bits / 8

    @property
    def dram_queue_bytes(self) -> float:
        return self.queue_bits_per_bank * self.banks / 8


def interval_register_bits(config: DramConfig) -> int:
    """Bits to encode intervals up to tREFW/2 in DRAM clock ticks."""
    max_interval_ticks = (config.timing.tREFW / 2) / config.timing.tCK
    return math.ceil(math.log2(max_interval_ticks))


def storage_overhead_bits(config: Optional[DramConfig] = None) -> StorageOverhead:
    """Total TPRAC storage: one interval register + one queue entry/bank."""
    config = config or ddr5_8000b()
    org = config.organization
    row_bits = math.ceil(math.log2(org.rows_per_bank))
    count_bits = math.ceil(math.log2(max(2, config.prac.nbo)))
    return StorageOverhead(
        interval_register_bits=interval_register_bits(config),
        queue_bits_per_bank=row_bits + count_bits,
        banks=org.total_banks,
    )


# ----------------------------------------------------------------------
# Experiment-result persistence


def atomic_write_json(path: PathLike, payload: Any) -> Path:
    """Serialize ``payload`` and atomically replace ``path``.

    A crash mid-write must never leave a truncated JSON document behind
    — readers (resumed suites, dashboards) always see either the old or
    the new file.
    """
    path = Path(path)
    text = json.dumps(payload, indent=2) + "\n"
    if os.environ.get(FAULT_PLAN_ENV):  # chaos-leg output corruption
        from repro import faults

        text = faults.mangle_output(path.name, text)
    return atomic_write_text(path, text)


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (same guarantees as
    :func:`atomic_write_json`; used for line-oriented formats like the
    observability JSONL traces)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def content_key(payload: Any) -> str:
    """Deterministic sha256 over a JSON-able payload (cache identity)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# Corruption detection and quarantine

#: Key under which a result document records its own content checksum.
CHECKSUM_KEY = "checksum"

#: Suffix appended to files moved aside by :func:`quarantine_corrupt`.
CORRUPT_SUFFIX = ".corrupt"


class CorruptResultError(ValueError):
    """A persisted result file failed validation (parse or checksum)."""

    def __init__(self, path: PathLike, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = Path(path)
        self.reason = reason


def attach_checksum(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``doc`` with a ``checksum`` footer over its other keys.

    The checksum covers the canonical JSON of the document *without*
    the footer, so any post-write mutation — truncation, bit rot, a
    hand edit — is detectable by :func:`verify_checksum`.
    """
    body = {k: v for k, v in doc.items() if k != CHECKSUM_KEY}
    return {**body, CHECKSUM_KEY: f"sha256:{content_key(body)}"}


def verify_checksum(doc: Any) -> Optional[bool]:
    """True/False for a checksummed document; None when no footer.

    ``None`` (rather than False) for footer-less documents keeps
    pre-checksum result files loadable — legacy artifacts are accepted,
    not quarantined.
    """
    if not isinstance(doc, dict) or CHECKSUM_KEY not in doc:
        return None
    body = {k: v for k, v in doc.items() if k != CHECKSUM_KEY}
    return bool(doc[CHECKSUM_KEY] == f"sha256:{content_key(body)}")


def load_checked_json(path: PathLike) -> Any:
    """Parse ``path`` and validate its checksum footer if present.

    Raises :class:`CorruptResultError` for unparseable JSON or a
    checksum mismatch; missing files raise ``OSError`` as usual
    (absence is not corruption).
    """
    path = Path(path)
    text = path.read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptResultError(path, f"invalid JSON: {exc}") from exc
    if verify_checksum(doc) is False:
        raise CorruptResultError(path, "checksum mismatch")
    return doc


def quarantine_corrupt(path: PathLike) -> Path:
    """Move a damaged file to a ``*.corrupt`` sidecar and return it.

    The sidecar name is uniquified (``.corrupt.1``, ``.corrupt.2`` …)
    so repeated corruption of a re-run file never destroys earlier
    evidence.
    """
    path = Path(path)
    sidecar = path.with_name(path.name + CORRUPT_SUFFIX)
    counter = 1
    while sidecar.exists():
        sidecar = path.with_name(f"{path.name}{CORRUPT_SUFFIX}.{counter}")
        counter += 1
    os.replace(path, sidecar)
    return sidecar


class SummaryIndex:
    """The ``summary.json`` index of a suite results directory.

    Entries are recorded as each experiment finishes and the file is
    rewritten (atomically) on every record, so a killed or crashed
    suite still leaves a consistent index of everything that completed.
    Entries keep the caller-requested experiment order regardless of
    parallel completion order.
    """

    FILENAME = "summary.json"

    def __init__(self, root: PathLike, order: Iterable[str] = ()) -> None:
        self.root = Path(root)
        self.order: List[str] = list(order)
        self.entries: Dict[str, Dict[str, Any]] = {}

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    @classmethod
    def load(cls, root: PathLike) -> "SummaryIndex":
        """Read an existing index.

        Missing files yield an empty index; corrupt or wrong-shape
        files are moved to a ``*.corrupt`` sidecar (then yield an empty
        index) so every completed experiment is re-validated against
        its own result file rather than a damaged summary.
        """
        index = cls(root)
        try:
            rows = json.loads(index.path.read_text())
        except OSError:
            return index
        except json.JSONDecodeError:
            quarantine_corrupt(index.path)
            return index
        if not isinstance(rows, list):
            quarantine_corrupt(index.path)
            return index
        for entry in rows:
            if not isinstance(entry, dict) or "experiment" not in entry:
                continue
            name = entry["experiment"]
            # Tolerate duplicate rows (e.g. from a writer killed between
            # append and rewrite): last entry wins, and the name enters
            # the order once so flush() never re-duplicates the row.
            if name not in index.entries:
                index.order.append(name)
            index.entries[name] = entry
        return index

    def record(self, entry: Dict[str, Any], flush: bool = True) -> None:
        """Add/replace one experiment's entry; flush to disk by default."""
        name = entry["experiment"]
        if name not in self.order:
            self.order.append(name)
        self.entries[name] = entry
        if flush:
            self.flush()

    def flush(self) -> Path:
        """Rewrite ``summary.json`` with every recorded entry."""
        rows = [self.entries[n] for n in self.order if n in self.entries]
        return atomic_write_json(self.path, rows)
