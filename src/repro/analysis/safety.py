"""RowHammer safety verification.

A mitigation is *safe* when no row's activation counter ever reaches
the RowHammer threshold N_RH between mitigations — the property both
PRAC and TPRAC must guarantee.  :class:`SafetyMonitor` attaches to a
live channel and records the highest counter value any row ever
reaches, flagging a violation the moment one crosses the threshold.

Used two ways:

* in tests, as an oracle over whole simulations ("the defense never
  let a counter reach N_RH, under any driven workload or attack"), and
* in experiments, to report the observed safety margin
  (N_RH - peak) for a configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.dram.bank import Bank

from repro.dram.rank import Channel


@dataclass
class SafetyViolation:
    """One counter crossing of the threshold."""

    bank_id: int
    row: int
    count: int


class SafetyMonitor:
    """Watches every bank's activations against a threshold."""

    def __init__(self, channel: Channel, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.peak_count = 0
        self.peak_location: Optional[Tuple[int, int]] = None  # (bank, row)
        self.violations: List[SafetyViolation] = []
        for bank in channel:
            bank.on_activate(self._observe)

    def _observe(self, bank: "Bank", row: int, count: int) -> None:
        if count > self.peak_count:
            self.peak_count = count
            self.peak_location = (bank.bank_id, row)
        if count >= self.threshold:
            self.violations.append(
                SafetyViolation(bank_id=bank.bank_id, row=row, count=count)
            )

    @property
    def safe(self) -> bool:
        """True iff no counter ever reached the threshold."""
        return not self.violations

    @property
    def margin(self) -> int:
        """Remaining headroom: threshold minus the observed peak."""
        return self.threshold - self.peak_count

    def report(self) -> str:
        """One-line human-readable safety summary."""
        location = (
            f"bank {self.peak_location[0]} row {self.peak_location[1]}"
            if self.peak_location
            else "n/a"
        )
        status = "SAFE" if self.safe else f"{len(self.violations)} VIOLATIONS"
        return (
            f"peak counter {self.peak_count}/{self.threshold} at {location} "
            f"(margin {self.margin}) — {status}"
        )
