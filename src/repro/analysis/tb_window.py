"""TB-Window configuration: the largest safe RFM interval per N_RH.

TPRAC must pick the longest TB-Window (fewest RFMs, least overhead)
such that the Feinting worst case cannot push any row to the Back-Off
threshold: TMAX(TB-Window) < N_BO (Equation 1).  TMAX is monotone
increasing in the window, so a binary search over the window length
yields the optimum.

The paper ties N_BO to the RowHammer threshold N_RH (mitigating the
most-activated row before N_BO keeps every row below N_RH); with the
default ``nbo_of_nrh`` mapping (N_BO = N_RH) the solver reproduces the
paper's operating points, e.g. ~1.6 tREFI at N_RH = 1024 with counter
reset (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.feinting import feinting_tmax
from repro.dram.config import DramConfig, ddr5_8000b


def default_nbo_of_nrh(nrh: int) -> int:
    """The paper's operating point: Alert at the RowHammer threshold.

    PRAC mitigation refreshes the victims of the alerted row, so
    keeping every counter below N_BO = N_RH guarantees no bit flips;
    TPRAC additionally guarantees the counter never *reaches* N_BO.
    """
    return nrh


@dataclass(frozen=True)
class TbWindowChoice:
    """A solved TB-Window for one RowHammer threshold."""

    nrh: int
    nbo: int
    with_reset: bool
    tb_window: float          # ns
    tb_window_trefi: float    # in units of tREFI
    tmax: int                 # worst-case target activations at this window


def required_tb_window(
    config: DramConfig,
    nbo: int,
    with_reset: bool = True,
    precision: float = 1e-3,
) -> float:
    """Largest TB-Window (ns) with TMAX < ``nbo``.

    Binary search over windows in (lo, hi) tREFI; raises if even the
    smallest window cannot satisfy the bound.
    """
    trefi = config.timing.tREFI
    lo_trefi = (config.timing.tRFMab + config.timing.tRC) / trefi * 1.5
    hi_trefi = 16.0
    if feinting_tmax(config, lo_trefi * trefi, with_reset).tmax >= nbo:
        raise ValueError(
            f"no TB-Window can keep TMAX below N_BO={nbo}; "
            f"even {lo_trefi:.3f} tREFI is unsafe"
        )
    lo, hi = lo_trefi, hi_trefi
    while feinting_tmax(config, hi * trefi, with_reset).tmax < nbo:
        hi *= 2
        if hi > 4096:
            return hi * trefi  # any realistic window is safe
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if feinting_tmax(config, mid * trefi, with_reset).tmax < nbo:
            lo = mid
        else:
            hi = mid
    return lo * trefi


def tb_window_for_nrh(
    nrh: int,
    config: Optional[DramConfig] = None,
    with_reset: bool = True,
    nbo_of_nrh: Callable[[int], int] = default_nbo_of_nrh,
) -> TbWindowChoice:
    """Solve the TB-Window for a RowHammer threshold (Figures 10-14)."""
    config = config or ddr5_8000b()
    nbo = nbo_of_nrh(nrh)
    window = required_tb_window(config, nbo, with_reset=with_reset)
    result = feinting_tmax(config, window, with_reset=with_reset)
    return TbWindowChoice(
        nrh=nrh,
        nbo=nbo,
        with_reset=with_reset,
        tb_window=window,
        tb_window_trefi=window / config.timing.tREFI,
        tmax=result.tmax,
    )
