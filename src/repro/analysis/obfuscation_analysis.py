"""Residual leakage under the obfuscation defense (Section 7.1).

Random-RFM injection with probability ``p`` per tREFI makes the RFM
count over an observation window a Binomial(n, p) variable; the
attacker's signal (one or more activity-dependent RFMs) shifts that
distribution by the signal count.  The paper observes the defense is a
trade-off rather than a fix: zero observed RFMs definitively indicates
Bit-0, counts far above the injection baseline indicate Bit-1, and
only the overlap region is ambiguous.

This module quantifies that overlap: the total-variation distance
between the Bit-0 and Bit-1 count distributions, and the accuracy of
the optimal (likelihood-ratio) single-window classifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


def _binomial_pmf(n: int, p: float, k: int) -> float:
    if not 0 <= k <= n:
        return 0.0
    log_coeff = (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
    if p in (0.0, 1.0):
        return float((p == 0.0 and k == 0) or (p == 1.0 and k == n))
    return math.exp(log_coeff + k * math.log(p) + (n - k) * math.log(1 - p))


@dataclass(frozen=True)
class ObfuscationLeakage:
    """Distinguishability of Bit-0 vs Bit-1 under random RFM injection."""

    windows: int              # observation slots (tREFIs) per decision
    inject_prob: float
    signal_rfms: int          # activity-dependent RFMs added by Bit-1
    total_variation: float    # 0 = indistinguishable, 1 = fully separable
    classifier_accuracy: float  # optimal single-shot accuracy (0.5..1.0)

    @property
    def bits_leaked_bound(self) -> float:
        """Crude leakage bound: accuracy mapped to channel capacity.

        Uses the binary symmetric channel capacity at the classifier's
        error rate — an upper bound on bits/decision for this decoder.
        """
        error = 1.0 - self.classifier_accuracy
        if error <= 0.0:
            return 1.0
        if error >= 0.5:
            return 0.0

        def entropy(x: float) -> float:
            return -x * math.log2(x) - (1 - x) * math.log2(1 - x)

        return 1.0 - entropy(error)


def analyze(
    windows: int = 64,
    inject_prob: float = 0.5,
    signal_rfms: int = 1,
) -> ObfuscationLeakage:
    """Compute distinguishability for one observation setting.

    Bit-0: counts ~ Binomial(windows, p).  Bit-1: the same plus
    ``signal_rfms`` deterministic RFMs (the ABO the sender triggers).
    """
    if windows <= 0:
        raise ValueError("windows must be positive")
    if signal_rfms < 0:
        raise ValueError("signal_rfms must be non-negative")
    max_count = windows + signal_rfms
    pmf0 = [_binomial_pmf(windows, inject_prob, k) for k in range(max_count + 1)]
    pmf1 = [0.0] * (max_count + 1)
    for k in range(windows + 1):
        pmf1[k + signal_rfms] += _binomial_pmf(windows, inject_prob, k)
    tv = 0.5 * sum(abs(a - b) for a, b in zip(pmf0, pmf1))
    # Optimal classifier picks the likelier hypothesis per count.
    accuracy = 0.5 * sum(max(a, b) for a, b in zip(pmf0, pmf1))
    return ObfuscationLeakage(
        windows=windows,
        inject_prob=inject_prob,
        signal_rfms=signal_rfms,
        total_variation=tv,
        classifier_accuracy=accuracy,
    )


def sweep_injection_rates(
    rates: List[float],
    windows: int = 64,
    signal_rfms: int = 1,
) -> List[ObfuscationLeakage]:
    """Security/performance trade-off curve across injection rates."""
    return [analyze(windows, rate, signal_rfms) for rate in rates]
