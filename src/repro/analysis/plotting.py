"""Terminal-friendly plotting: ASCII line/bar charts and heatmaps.

The offline environment has no matplotlib, so the experiment harnesses
render their figures as text.  These renderers are deliberately small
but real: log-scale support for Figure 7, series overlays for the
latency timelines, and an intensity heatmap for Figure 5.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

_SHADES = " .:-=+*#%@"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return title
    peak = max(abs(v) for v in values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(abs(value) / peak * width))
        lines.append(f"{str(label):>{label_width}} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def line_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 72,
    height: int = 16,
    title: str = "",
    logy: bool = False,
) -> str:
    """Overlayed scatter/line plot of (x, y) series, one glyph each."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title
    xs = [p[0] for p in points]
    ys = [_logy(p[1]) if logy else p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    glyphs = "ox+*@%&$"
    for glyph, (name, pts) in zip(glyphs, series.items()):
        for x, y in pts:
            yv = _logy(y) if logy else y
            col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
            row = min(height - 1, int((yv - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = glyph
    lines = [title] if title else []
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x_lo:g} .. {x_hi:g}]   y: [{min(p[1] for p in points):g} "
                 f".. {max(p[1] for p in points):g}]" + ("  (log y)" if logy else ""))
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(glyphs, series.keys())
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def _logy(value: float) -> float:
    return math.log10(max(value, 1e-12))


def heatmap(
    matrix: Sequence[Sequence[float]],
    row_labels: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Intensity heatmap; rows are y (printed top-down), columns x."""
    values = [v for row in matrix for v in row]
    if not values:
        return title
    peak = max(values) or 1.0
    lines = [title] if title else []
    label_width = max((len(str(l)) for l in row_labels or [""]), default=0)
    for index, row in enumerate(matrix):
        label = str(row_labels[index]) if row_labels else str(index)
        cells = "".join(
            _SHADES[min(len(_SHADES) - 1, int(v / peak * (len(_SHADES) - 1)))]
            for v in row
        )
        lines.append(f"{label:>{label_width}} |{cells}|")
    return "\n".join(lines)


def latency_strip(
    times: Sequence[float],
    latencies: Sequence[float],
    buckets: int = 72,
    spike_threshold: float = 250.0,
    title: str = "",
) -> str:
    """One-line summary of a latency timeline: '^' marks spike buckets."""
    if not times:
        return title
    t_lo, t_hi = min(times), max(times)
    span = (t_hi - t_lo) or 1.0
    marks = [" "] * buckets
    for t, lat in zip(times, latencies):
        index = min(buckets - 1, int((t - t_lo) / span * buckets))
        if lat > spike_threshold:
            marks[index] = "^"
        elif marks[index] == " ":
            marks[index] = "."
    body = "".join(marks)
    header = f"{title}\n" if title else ""
    return f"{header}|{body}|  ({t_lo/1000:.1f}..{t_hi/1000:.1f} us, ^=spike)"
