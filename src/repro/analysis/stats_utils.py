"""Statistics helpers for multi-seed experiment runs.

The performance experiments are deterministic given a seed; running a
few seeds gives a spread from synthetic-trace variation.  This module
provides mean/stdev/confidence-interval summaries and a helper that
repeats a seeded measurement function across seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

#: two-sided 95% t-critical values for small sample sizes (df = n-1)
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


@dataclass(frozen=True)
class Summary:
    """Mean, spread and a 95% confidence interval for one metric."""

    n: int
    mean: float
    stdev: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple:
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def overlaps(self, other: "Summary") -> bool:
        """Whether the two 95% CIs overlap (no significant difference)."""
        lo_a, hi_a = self.ci95
        lo_b, hi_b = other.ci95
        return hi_a >= lo_b and hi_b >= lo_a

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.mean:.4f} ± {self.ci95_half_width:.4f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics with a t-based 95% CI."""
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(n=1, mean=mean, stdev=0.0, ci95_half_width=0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    t_crit = _T95.get(n - 1, 1.96)
    return Summary(
        n=n,
        mean=mean,
        stdev=stdev,
        ci95_half_width=t_crit * stdev / math.sqrt(n),
    )


def across_seeds(
    measure: Callable[[int], float], seeds: Sequence[int]
) -> Summary:
    """Run a seeded measurement for each seed; summarize the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return summarize([measure(seed) for seed in seeds])


def compare_designs(
    measures: Dict[str, Callable[[int], float]], seeds: Sequence[int]
) -> Dict[str, Summary]:
    """Measure several designs over the same seeds."""
    return {name: across_seeds(fn, seeds) for name, fn in measures.items()}
