"""Statistics helpers for multi-seed experiment runs.

The performance experiments are deterministic given a seed; running a
few seeds gives a spread from synthetic-trace variation.  This module
provides mean/stdev/confidence-interval summaries, a helper that
repeats a seeded measurement function across seeds, a streaming
:class:`Welford` accumulator for trial engines that see values one at a
time, and a seeded :func:`bootstrap_ci` for metrics whose distribution
is too lumpy for the t-interval (attack success rates, error rates).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

#: two-sided 95% t-critical values for small sample sizes (df = n-1)
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


@dataclass(frozen=True)
class Summary:
    """Mean, spread and a 95% confidence interval for one metric."""

    n: int
    mean: float
    stdev: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple:
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def overlaps(self, other: "Summary") -> bool:
        """Whether the two 95% CIs overlap (no significant difference)."""
        lo_a, hi_a = self.ci95
        lo_b, hi_b = other.ci95
        return hi_a >= lo_b and hi_b >= lo_a

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.mean:.4f} ± {self.ci95_half_width:.4f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics with a t-based 95% CI."""
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(n=1, mean=mean, stdev=0.0, ci95_half_width=0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    t_crit = _T95.get(n - 1, 1.96)
    return Summary(
        n=n,
        mean=mean,
        stdev=stdev,
        ci95_half_width=t_crit * stdev / math.sqrt(n),
    )


def across_seeds(
    measure: Callable[[int], float], seeds: Sequence[int]
) -> Summary:
    """Run a seeded measurement for each seed; summarize the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return summarize([measure(seed) for seed in seeds])


def compare_designs(
    measures: Dict[str, Callable[[int], float]], seeds: Sequence[int]
) -> Dict[str, Summary]:
    """Measure several designs over the same seeds."""
    return {name: across_seeds(fn, seeds) for name, fn in measures.items()}


class Welford:
    """Streaming mean/variance (Welford's algorithm).

    Campaign trials complete in arbitrary pool order, so per-metric
    aggregates are pushed one value at a time; this keeps the running
    mean and M2 without storing the series and without catastrophic
    cancellation.
    """

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        """Fold one observation into the running aggregate."""
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 below two samples."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def summary(self) -> Summary:
        """The equivalent :class:`Summary` (t-based 95% CI)."""
        if self.n == 0:
            raise ValueError("need at least one value")
        if self.n == 1:
            return Summary(n=1, mean=self.mean, stdev=0.0, ci95_half_width=0.0)
        t_crit = _T95.get(self.n - 1, 1.96)
        return Summary(
            n=self.n,
            mean=self.mean,
            stdev=self.stdev,
            ci95_half_width=t_crit * self.stdev / math.sqrt(self.n),
        )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 200,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the mean, deterministic given ``seed``.

    Suits small-n campaign metrics whose values are bounded or discrete
    (success indicators, error rates) where the t-interval's normality
    assumption is at its worst.
    """
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(seed)
    n = len(values)
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n for _ in range(n_boot)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = min(n_boot - 1, max(0, int(math.floor(alpha * n_boot))))
    hi_index = min(n_boot - 1, max(0, int(math.ceil((1.0 - alpha) * n_boot)) - 1))
    return (means[lo_index], means[hi_index])
