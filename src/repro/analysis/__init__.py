"""Analytical models: Feinting worst case, TB-Window solver, metrics,
energy and storage overheads, obfuscation leakage analysis."""

from repro.analysis.feinting import (
    FeintingResult,
    acts_per_tb_window,
    attack_rounds,
    feinting_tmax,
    optimal_r1_with_reset,
    tmax_sweep,
)
from repro.analysis.tb_window import required_tb_window, tb_window_for_nrh
from repro.analysis.metrics import (
    geometric_mean,
    normalized_performance,
    weighted_speedup,
)
from repro.analysis.energy import EnergyModel, EnergyBreakdown
from repro.analysis.storage import storage_overhead_bits

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "FeintingResult",
    "acts_per_tb_window",
    "attack_rounds",
    "feinting_tmax",
    "geometric_mean",
    "normalized_performance",
    "optimal_r1_with_reset",
    "required_tb_window",
    "storage_overhead_bits",
    "tb_window_for_nrh",
    "tmax_sweep",
    "weighted_speedup",
]
