"""Worst-case security analysis of TPRAC under the Feinting attack.

Implements Section 4.2.2 of the paper (Equations 1-5).  The Feinting
(a.k.a. Wave) attack is the proven-worst-case pattern against RFM-based
mitigations: the attacker uniformly activates a pool of R1 decoy rows
plus a target row, sacrificing decoys to each mitigation so that in the
final round every remaining activation lands on the target.

Given a TB-Window, the analysis yields TMAX — the maximum activations
an adversary can accumulate on one row.  TPRAC is secure (no ABO-RFM
ever fires, hence no timing channel) iff TMAX < N_BO (Equation 1).

Two counter-reset regimes are modelled (Figure 7):

* **with reset** — per-row counters reset every tREFW; the attack is
  confined to one refresh window, so the optimal initial pool R1 is
  MAXACT_tREFW / ACT_TB-Window (Equation 5; the number of TB-RFMs that
  fit in tREFW).
* **without reset** — counters persist until mitigated; R1 is swept up
  to rows-per-bank (128K for the 32 Gb device) for the maximizing value
  (TACT is monotone in R1, so the sweep lands on 128K).

Calibration: the activations available per TB-Window subtract the time
the channel is blocked by refresh (the window's share of tRFC) and by
the TB-RFM itself (tRFMab).  With this accounting the model reproduces
the paper's Figure 7 exactly: TMAX = 105/572/2138 (with reset) and
118/736/3220 (without) at 0.25/1/4 tREFI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dram.config import DramConfig, ddr5_8000b


def usable_window_time(config: DramConfig, tb_window: float) -> float:
    """Time within one TB-Window available for attacker activations.

    Subtracts the window's pro-rata share of refresh blocking and the
    TB-RFM issued at the end of the window.
    """
    timing = config.timing
    refresh_share = (tb_window / timing.tREFI) * timing.tRFC
    usable = tb_window - refresh_share - timing.tRFMab
    if usable <= 0:
        raise ValueError(
            f"TB-Window {tb_window} ns leaves no activation time after "
            f"refresh and RFM blocking"
        )
    return usable


def acts_per_tb_window(config: DramConfig, tb_window: float) -> int:
    """Equation (2): max activations to a bank within one TB-Window."""
    return int(usable_window_time(config, tb_window) // config.timing.tRC)


def max_acts_per_trefw(config: DramConfig, tb_window: float) -> int:
    """MAXACT_tREFW: activation budget within one refresh window.

    Uses the same usable-time accounting as :func:`acts_per_tb_window`
    (~550K for the paper's device at 1-tREFI windows).
    """
    timing = config.timing
    windows = timing.tREFW / tb_window
    usable = usable_window_time(config, tb_window)
    return int(windows * usable / timing.tRC)


def attack_rounds(r1: int, acts_per_window: int) -> int:
    """Equations (3)/(4): Feinting rounds until only the target remains.

    Round ``N`` activates every surviving pool row once; one decoy is
    mitigated per ``acts_per_window`` activations (one TB-RFM per
    window).  The cumulative-sum recurrence is evaluated exactly,
    including the floor.
    """
    if r1 <= 0:
        raise ValueError("R1 must be positive")
    if acts_per_window <= 0:
        raise ValueError("acts_per_window must be positive")
    cumulative = 0
    remaining = r1
    rounds = 0
    while remaining > 1:
        rounds += 1
        cumulative += remaining
        remaining = r1 - cumulative // acts_per_window
        if remaining <= 0:
            break
    return rounds + 1  # final round: all activations on the target


def feinting_target_acts(r1: int, acts_per_window: int) -> int:
    """Equation (4): activations to the target row for a given R1.

    One activation per non-final round plus the full final window.
    """
    rounds = attack_rounds(r1, acts_per_window)
    return (rounds - 1) + acts_per_window


def optimal_r1_with_reset(config: DramConfig, tb_window: float) -> int:
    """Equation (5): optimal pool size under tREFW counter reset."""
    acts = acts_per_tb_window(config, tb_window)
    return max(1, max_acts_per_trefw(config, tb_window) // acts)


@dataclass(frozen=True)
class FeintingResult:
    """Outcome of the worst-case analysis for one TB-Window."""

    tb_window: float         # ns
    tb_window_trefi: float   # in units of tREFI
    with_reset: bool
    optimal_r1: int
    attack_rounds: int
    tmax: int                # max activations to the target row

    def secure_for(self, nbo: int) -> bool:
        """True iff no ABO can fire: TMAX < N_BO (Equation 1)."""
        return self.tmax < nbo


def feinting_tmax(
    config: DramConfig,
    tb_window: float,
    with_reset: bool = True,
    r1_candidates: Optional[Sequence[int]] = None,
) -> FeintingResult:
    """Worst-case TMAX for a TB-Window under either reset regime."""
    acts = acts_per_tb_window(config, tb_window)
    if with_reset:
        best_r1 = optimal_r1_with_reset(config, tb_window)
        best_tmax = feinting_target_acts(best_r1, acts)
    else:
        if r1_candidates is None:
            r1_candidates = _default_r1_grid(config.organization.rows_per_bank)
        best_r1, best_tmax = 1, 0
        for r1 in r1_candidates:
            tmax = feinting_target_acts(r1, acts)
            if tmax > best_tmax:
                best_r1, best_tmax = r1, tmax
    return FeintingResult(
        tb_window=tb_window,
        tb_window_trefi=tb_window / config.timing.tREFI,
        with_reset=with_reset,
        optimal_r1=best_r1,
        attack_rounds=attack_rounds(best_r1, acts),
        tmax=best_tmax,
    )


def _default_r1_grid(max_rows: int) -> List[int]:
    """Log-spaced R1 candidates up to ``max_rows``.

    TACT is monotone non-decreasing in R1 (more decoys -> more rounds),
    so a coarse grid that includes ``max_rows`` suffices; the dense
    sweep of the paper lands on the same optimum.
    """
    grid = set()
    value = 1
    while value < max_rows:
        grid.add(value)
        value = max(value + 1, int(value * 1.3))
    grid.add(max_rows)
    return sorted(grid)


def tmax_sweep(
    config: Optional[DramConfig] = None,
    tb_windows_trefi: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 2.0, 4.0),
) -> Dict[str, List[FeintingResult]]:
    """Figure 7: TMAX across TB-Windows, with and without counter reset."""
    config = config or ddr5_8000b()
    trefi = config.timing.tREFI
    out: Dict[str, List[FeintingResult]] = {"with_reset": [], "without_reset": []}
    for multiple in tb_windows_trefi:
        window = multiple * trefi
        out["with_reset"].append(feinting_tmax(config, window, with_reset=True))
        out["without_reset"].append(feinting_tmax(config, window, with_reset=False))
    return out
