"""Performance metrics: weighted speedup and normalization helpers.

The paper measures performance as *weighted speedup* — the sum over
cores of IPC_shared / IPC_alone — and reports it normalized to the
PRAC-enabled baseline without ABO.  Values below 1.0 are slowdowns.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def weighted_speedup(
    shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]
) -> float:
    """Sum of per-core IPC_shared / IPC_alone."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("per-core IPC lists must have equal length")
    if not shared_ipcs:
        raise ValueError("need at least one core")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += shared / alone
    return total


def normalized_performance(value: float, baseline: float) -> float:
    """value / baseline; < 1.0 means slowdown relative to the baseline."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return value / baseline


def slowdown_percent(normalized: float) -> float:
    """Convert normalized performance (e.g. 0.966) to slowdown % (3.4)."""
    return (1.0 - normalized) * 100.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; standard for normalized performance aggregation."""
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("values must be positive")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def summarize_by_group(
    per_workload: Dict[str, float], groups: Dict[str, str]
) -> Dict[str, float]:
    """Geomean per workload group (e.g. SPEC2K6 / SPEC2K17 / CloudSuite)."""
    buckets: Dict[str, list] = {}
    for name, value in per_workload.items():
        group = groups.get(name, "other")
        buckets.setdefault(group, []).append(value)
    return {group: geometric_mean(vals) for group, vals in buckets.items()}
