"""BENCH_<rev>.json persistence, baseline lookup, regression checks.

A bench *trajectory* is a directory of ``BENCH_<rev>.json`` files, one
per measured revision, committed to the repository so every future PR
can compare itself against the history.  The comparison is **soft**: a
slower run prints warnings (and records them in its own file) but never
fails the bench — wall-clock noise on shared CI runners must not break
builds; humans read the warning and judge.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.analysis.storage import atomic_write_json

PathLike = Union[str, Path]

#: events/sec drop beyond this fraction of baseline triggers a warning
REGRESSION_THRESHOLD = 0.20


def bench_filename(rev: str) -> str:
    """``BENCH_<rev>.json`` with path-hostile characters mangled."""
    safe = "".join(c if (c.isalnum() or c in "._+-") else "-" for c in rev)
    return f"BENCH_{safe}.json"


def write_report(report: Dict[str, Any], out_dir: PathLike) -> Path:
    """Atomically persist a report under its revision name."""
    out_root = Path(out_dir)
    out_root.mkdir(parents=True, exist_ok=True)
    path = out_root / bench_filename(report["rev"])
    atomic_write_json(path, report)
    return path


def load_report(path: PathLike) -> Dict[str, Any]:
    """Read one persisted BENCH document."""
    return json.loads(Path(path).read_text())


def find_baseline(
    trajectory_dir: PathLike, exclude_rev: Optional[str] = None
) -> Optional[Dict[str, Any]]:
    """The most recent committed BENCH report (by embedded timestamp).

    ``exclude_rev`` skips the current revision so a re-run compares
    against history rather than itself.
    """
    doc, _ = find_baseline_with_path(trajectory_dir, exclude_rev=exclude_rev)
    return doc


def find_baseline_with_path(
    trajectory_dir: PathLike, exclude_rev: Optional[str] = None
) -> "tuple[Optional[Dict[str, Any]], Optional[Path]]":
    """Like :func:`find_baseline`, also returning the file actually
    read — callers that report which baseline they compared against
    must name the real file, not reconstruct it from the embedded rev.
    """
    root = Path(trajectory_dir)
    if not root.is_dir():
        return None, None
    best: Optional[Dict[str, Any]] = None
    best_path: Optional[Path] = None
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(doc, dict) or "workloads" not in doc:
            continue
        if exclude_rev is not None and doc.get("rev") == exclude_rev:
            continue
        if best is None or doc.get("timestamp", 0) > best.get("timestamp", 0):
            best = doc
            best_path = path
    return best, best_path


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = REGRESSION_THRESHOLD,
) -> Dict[str, Any]:
    """Per-workload throughput ratios vs a baseline report.

    Returns ``{"baseline_rev", "ratios": {workload: ratio}, "warnings":
    [...]}`` where ratio is current/baseline events-per-second (falling
    back to the workload's units/sec when it reports no events, e.g.
    the scheduler microbench).
    """
    ratios: Dict[str, float] = {}
    warnings: List[str] = []
    for name, block in current.get("workloads", {}).items():
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        key = "events_per_sec" if "events_per_sec" in block else "units_per_sec"
        if key not in base or not base[key]:
            continue
        ratio = block[key] / base[key]
        ratios[name] = ratio
        if ratio < 1.0 - threshold:
            warnings.append(
                f"{name}: {key} {block[key]:,.0f} is {1 - ratio:.0%} below "
                f"baseline {base[key]:,.0f} (rev {baseline.get('rev')})"
            )
    return {
        "baseline_rev": baseline.get("rev"),
        "baseline_timestamp": baseline.get("timestamp"),
        "ratios": ratios,
        "warnings": warnings,
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of one bench report (+ comparison)."""
    lines = [
        f"bench rev={report.get('rev')}  python={report.get('python')}  "
        f"version={report.get('version')}"
    ]
    workloads = report.get("workloads", {})
    width = max((len(n) for n in workloads), default=0)
    for name, block in workloads.items():
        rate = block.get("events_per_sec")
        detail = (
            f"{rate:>12,.0f} events/s"
            if rate
            else f"{block['units_per_sec']:>12,.0f} {block['unit']}/s"
        )
        sim = block.get("sim_ns_per_sec")
        sim_part = f"  {sim:>12,.0f} sim-ns/s" if sim else ""
        mark = " *" if block.get("acceptance") else "  "
        lines.append(
            f"{mark}{name:<{width}}  {detail}{sim_part}  "
            f"(best of {block['reps']}, {block['wall_seconds_best'] * 1e3:.1f} ms)"
        )
    comparison = report.get("comparison")
    if comparison:
        for name, ratio in comparison.get("ratios", {}).items():
            lines.append(
                f"  {name:<{width}}  {ratio:.2f}x vs baseline "
                f"rev {comparison.get('baseline_rev')}"
            )
        for warning in comparison.get("warnings", []):
            lines.append(f"  WARNING: {warning}")
        if not comparison.get("warnings"):
            lines.append(
                f"  no regression vs rev {comparison.get('baseline_rev')} "
                f"(threshold {REGRESSION_THRESHOLD:.0%})"
            )
    lines.append("  (* = acceptance workload)")
    return "\n".join(lines)
