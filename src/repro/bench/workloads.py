"""Pinned benchmark workloads.

Every workload here is **pinned**: fixed traces, fixed seeds, fixed
request budgets, fixed device config.  Numbers from different revisions
are comparable only because nothing about the simulated work is allowed
to drift — change a workload and you must rename it.

Workloads:

* ``perf_multi_core`` — the paper's performance configuration (4-core
  homogeneous 433.milc under TPRAC at N_RH=1024, the Figure 10 shape).
  This is the acceptance workload for kernel-throughput comparisons.
* ``perf_single_core`` — the same device with a single 433.milc core;
  isolates per-event cost without bank-level parallelism pressure.
* ``perf_multi_channel`` — the multi-core shape on a 2-channel device
  (one controller + TPRAC instance per channel, cache lines striped
  across channels); tracks the cost of the multi-channel wake/dispatch
  machinery.
* ``perf_cached`` — the multi-core shape issued through the L1/L2
  cache hierarchy and a fixed-latency interconnect
  (``SystemConfig(cache="l1l2", interconnect="fixed")``); tracks the
  event-driven cache front-end's per-request cost.
* ``perf_batched`` — the ``perf_multi_core`` shape executed by the
  ``batched`` engine backend (``SystemConfig(engine="batched")``, the
  folded serve loop; see :mod:`repro.controller.batched`).  Same pinned
  work as ``perf_multi_core``, so the two wall times divide into the
  backend's speedup.  The batched backend elides re-examination wakes,
  so its ``events``/``events_per_sec`` are **not** comparable to the
  event backend's — compare ``wall_seconds_best`` over the pinned work.
* ``perf_parallel`` — a 16-core, 4-channel shape under the ``sharded``
  engine backend (one worker process per channel, epoch barriers); and
  ``perf_parallel_event`` — the identical shape on the reference
  backend, committed alongside so the worker-parallel speedup (or, on
  starved hosts, overhead) is auditable from one trajectory file.
* ``campaign_smoke`` — one pinned Monte Carlo ``perf`` trial through
  :func:`repro.campaigns.runners.run_trial` (the campaign engine's
  whole code path: scenario validation, policy construction, paired
  baseline/mitigated systems).
* ``scheduler_pick`` family — microbenchmark of ``pick`` / ``enqueue``
  over a replayed queue mix (row hits, misses, cap resets), one pinned
  workload **per registered scheduler** (``scheduler_pick`` is the
  historical FR-FCFS point; ``scheduler_pick_<name>`` covers every
  other entry of :data:`repro.controller.scheduler.SCHEDULERS`);
  reported in picks/sec, not events/sec.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List

#: Default repetitions / warmup per workload (CLI can override).
DEFAULT_REPS = 5
DEFAULT_WARMUP = 2


@dataclass(frozen=True)
class Measurement:
    """One timed repetition of a bench workload."""

    wall_seconds: float
    events: int            # engine events fired (0 when not applicable)
    sim_ns: float          # simulated nanoseconds covered (0 when n/a)
    work_units: int        # workload-specific unit (requests, picks...)
    unit: str              # name of the workload-specific unit
    engine: str = "event"  # execution backend that produced the numbers


def _system_measurement(
    cores: int, requests: int, channels: int = 1, **system_axes: object
) -> Measurement:
    from repro.config import SystemConfig
    from repro.experiments.common import DesignPoint, build_system, homogeneous_traces

    traces = homogeneous_traces(
        "433.milc", cores=cores, num_accesses=requests, seed=0
    )
    system = build_system(
        DesignPoint(design="tprac", nrh=1024),
        traces,
        system=SystemConfig(channels=channels, **system_axes),  # type: ignore[arg-type]
    )
    started = time.perf_counter()
    result = system.run()
    wall = time.perf_counter() - started
    return Measurement(
        wall_seconds=wall,
        events=system.engine.events_fired,
        sim_ns=result.elapsed_ns,
        work_units=result.dram_requests,
        unit="requests",
        engine=str(system_axes.get("engine", "event")),
    )


def _perf_multi_core() -> Measurement:
    """4-core homogeneous 433.milc, TPRAC @ N_RH=1024 (Figure 10 shape)."""
    return _system_measurement(cores=4, requests=800)


def _perf_single_core() -> Measurement:
    """1-core 433.milc, TPRAC @ N_RH=1024."""
    return _system_measurement(cores=1, requests=1500)


def _perf_multi_channel() -> Measurement:
    """4-core 433.milc across 2 channels, TPRAC @ N_RH=1024 per channel."""
    return _system_measurement(cores=4, requests=800, channels=2)


def _perf_cached() -> Measurement:
    """The multi-core shape behind the L1/L2 hierarchy + fixed link.

    Tracks the event-driven cache front-end's cost: every request pays
    an L1 (and usually L2 + MSHR) traversal before DRAM, so regressions
    in the hierarchy's hot path show up here and nowhere else.
    """
    return _system_measurement(
        cores=4, requests=800, cache="l1l2", interconnect="fixed"
    )


def _perf_batched() -> Measurement:
    """The ``perf_multi_core`` shape on the batched engine backend.

    Byte-identical results to ``perf_multi_core`` by construction (the
    backends are byte-compared in tests and scripts/abcompare.sh); what
    this point tracks is the folded serve loop's wall-clock win.  The
    pure-Python fold runs regardless of numpy availability.
    """
    return _system_measurement(
        cores=4, requests=800, engine="batched", engine_params={"numpy": False}
    )


def _perf_parallel() -> Measurement:
    """16-core, 4-channel shape on the sharded engine backend."""
    return _system_measurement(
        cores=16, requests=800, channels=4, engine="sharded"
    )


def _perf_parallel_event() -> Measurement:
    """The ``perf_parallel`` shape on the reference event backend."""
    return _system_measurement(cores=16, requests=800, channels=4)


def _campaign_smoke() -> Measurement:
    """One pinned campaign ``perf`` trial (baseline + mitigated systems)."""
    from repro.campaigns import runners
    from repro.campaigns.scenario import Scenario

    scenario = Scenario(
        attack="perf",
        mitigation="tprac",
        workload="433.milc",
        nbo=1024,
        params={"cores": 2, "requests_per_core": 600},
    )
    telemetry = {"events": 0, "sim_ns": 0.0, "requests": 0}

    def probe(system) -> None:
        telemetry["events"] += system.engine.events_fired
        telemetry["sim_ns"] += system.engine.now
        telemetry["requests"] += system.controller.stats.requests_served

    previous = runners.system_probe
    runners.system_probe = probe
    try:
        started = time.perf_counter()
        runners.run_trial(scenario, seed=0)
        wall = time.perf_counter() - started
    finally:
        runners.system_probe = previous
    return Measurement(
        wall_seconds=wall,
        events=telemetry["events"],
        sim_ns=telemetry["sim_ns"],
        work_units=telemetry["requests"],
        unit="requests",
    )


def _scheduler_pick(scheduler_name: str = "fr_fcfs") -> Measurement:
    """Pick/enqueue microbenchmark over a pinned queue mix.

    The same replayed mix (row hits, misses, cap/batch resets) is run
    through whichever registered scheduler ``scheduler_name`` selects,
    so the per-policy trajectory points are directly comparable.
    """
    from repro.controller.request import MemRequest
    from repro.controller.scheduler import make_scheduler
    from repro.dram.address import DramAddress
    from repro.dram.bank import Bank
    from repro.dram.config import ddr5_8000b

    config = ddr5_8000b()
    bank = Bank(config, bank_id=0)
    rounds = 2000
    depth = 8
    # Deterministic row pattern: interleaved hits and conflicts so pick
    # exercises the scan, the cap logic, and the streak reset.
    rows = [0, 0, 7, 0, 3, 0, 0, 5]
    requests = [
        MemRequest(
            phys_addr=0,
            addr=DramAddress(
                channel=0, rank=0, bank_group=0, bank=0, row=rows[i % len(rows)],
                column=0,
            ),
        )
        for i in range(depth)
    ]
    bank.open_row = 0
    scheduler = make_scheduler(scheduler_name, num_banks=1)
    started = time.perf_counter()
    picks = 0
    for _ in range(rounds):
        for request in requests:
            scheduler.enqueue(request, 0)
        while scheduler.pending(0):
            scheduler.pick(0, bank)
            picks += 1
    wall = time.perf_counter() - started
    return Measurement(
        wall_seconds=wall, events=0, sim_ns=0.0, work_units=picks, unit="picks"
    )


@dataclass(frozen=True)
class BenchWorkload:
    """A named, pinned benchmark workload."""

    name: str
    title: str
    run: Callable[[], Measurement]
    #: acceptance workloads gate kernel-throughput regression checks
    acceptance: bool = False


WORKLOADS: Dict[str, BenchWorkload] = {
    w.name: w
    for w in (
        BenchWorkload(
            name="perf_multi_core",
            title="4-core 433.milc, TPRAC@1024 (fig10 shape; pinned perf workload)",
            run=_perf_multi_core,
            acceptance=True,
        ),
        BenchWorkload(
            name="perf_single_core",
            title="1-core 433.milc, TPRAC@1024",
            run=_perf_single_core,
        ),
        BenchWorkload(
            name="perf_multi_channel",
            title="4-core 433.milc, 2 channels, TPRAC@1024 per channel",
            run=_perf_multi_channel,
        ),
        BenchWorkload(
            name="perf_cached",
            title="4-core 433.milc, L1/L2 hierarchy + fixed link, TPRAC@1024",
            run=_perf_cached,
        ),
        BenchWorkload(
            name="perf_batched",
            title="4-core 433.milc, TPRAC@1024, batched engine (serve-loop fold)",
            run=_perf_batched,
        ),
        BenchWorkload(
            name="perf_parallel",
            title="16-core 433.milc, 4 channels, TPRAC@1024, sharded engine",
            run=_perf_parallel,
        ),
        BenchWorkload(
            name="perf_parallel_event",
            title="16-core 433.milc, 4 channels, TPRAC@1024, event engine",
            run=_perf_parallel_event,
        ),
        BenchWorkload(
            name="campaign_smoke",
            title="pinned campaign perf trial (2-core, baseline+mitigated)",
            run=_campaign_smoke,
        ),
        BenchWorkload(
            name="scheduler_pick",
            title="FrFcfsScheduler pick/enqueue microbench",
            run=_scheduler_pick,
        ),
    )
}


def _register_scheduler_picks() -> None:
    """One ``scheduler_pick_<name>`` workload per registered scheduler.

    ``fr_fcfs`` keeps the historical ``scheduler_pick`` name (renaming
    a pinned workload would orphan its trajectory); every other
    registry entry — including ones future PRs register — gets its own
    pinned point automatically.
    """
    from functools import partial

    from repro.controller.scheduler import SCHEDULERS

    for name in SCHEDULERS.available():
        if name == "fr_fcfs":
            continue
        WORKLOADS[f"scheduler_pick_{name}"] = BenchWorkload(
            name=f"scheduler_pick_{name}",
            title=f"{name} scheduler pick/enqueue microbench",
            run=partial(_scheduler_pick, name),
        )


_register_scheduler_picks()


def workload_names() -> List[str]:
    """Registered bench workload names, stable order."""
    return list(WORKLOADS)


def get_workload(name: str) -> BenchWorkload:
    """Look up one workload; raises KeyError with the known names."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown bench workload {name!r}; have {workload_names()}"
        ) from None
