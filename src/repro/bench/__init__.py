"""The ``repro bench`` performance harness.

Measures the simulation kernel's throughput (events/sec, simulated
ns/sec) on pinned workloads and persists ``BENCH_<rev>.json`` files
forming a committed trajectory, so regressions are visible PR-to-PR.
See :mod:`repro.bench.workloads` for the pinned workload inventory and
``docs/performance.md`` for how to read the output.
"""

from repro.bench.harness import (
    measure_workload,
    run_bench,
    detect_revision,
)
from repro.bench.report import (
    REGRESSION_THRESHOLD,
    bench_filename,
    compare,
    find_baseline,
    find_baseline_with_path,
    format_report,
    load_report,
    write_report,
)
from repro.bench.workloads import (
    DEFAULT_REPS,
    DEFAULT_WARMUP,
    BenchWorkload,
    Measurement,
    get_workload,
    workload_names,
)

__all__ = [
    "BenchWorkload",
    "DEFAULT_REPS",
    "DEFAULT_WARMUP",
    "Measurement",
    "REGRESSION_THRESHOLD",
    "bench_filename",
    "compare",
    "detect_revision",
    "find_baseline",
    "find_baseline_with_path",
    "format_report",
    "get_workload",
    "load_report",
    "measure_workload",
    "run_bench",
    "workload_names",
    "write_report",
]
