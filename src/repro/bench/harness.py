"""The measurement harness: warmup, repetitions, rate derivation.

A bench run executes each selected workload ``warmup`` times untimed,
then ``reps`` timed repetitions, and derives rates from the **best**
repetition (throughput benchmarks report the least-interfered run; the
median and every raw wall time are kept alongside for noise auditing).
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Any, Dict, Iterable, Optional

from repro import __version__
from repro.bench.workloads import (
    DEFAULT_REPS,
    DEFAULT_WARMUP,
    get_workload,
    workload_names,
)


def measure_workload(
    name: str, reps: int = DEFAULT_REPS, warmup: int = DEFAULT_WARMUP
) -> Dict[str, Any]:
    """Run one workload; returns its JSON-able result block."""
    if reps <= 0:
        raise ValueError("reps must be positive")
    workload = get_workload(name)
    for _ in range(warmup):
        workload.run()
    measurements = [workload.run() for _ in range(reps)]
    walls = sorted(m.wall_seconds for m in measurements)
    best = min(measurements, key=lambda m: m.wall_seconds)
    block: Dict[str, Any] = {
        "title": workload.title,
        "acceptance": workload.acceptance,
        "reps": reps,
        "warmup": warmup,
        "unit": best.unit,
        "engine": best.engine,
        "work_units": best.work_units,
        "events": best.events,
        "sim_ns": best.sim_ns,
        "wall_seconds_best": walls[0],
        "wall_seconds_median": walls[len(walls) // 2],
        "wall_seconds_all": [m.wall_seconds for m in measurements],
        "units_per_sec": best.work_units / best.wall_seconds,
    }
    if best.events:
        block["events_per_sec"] = best.events / best.wall_seconds
    if best.sim_ns:
        block["sim_ns_per_sec"] = best.sim_ns / best.wall_seconds
    return block


def run_bench(
    names: Optional[Iterable[str]] = None,
    reps: int = DEFAULT_REPS,
    warmup: int = DEFAULT_WARMUP,
    rev: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the selected (default: all) workloads into one report dict."""
    selected = list(names) if names is not None else workload_names()
    report: Dict[str, Any] = {
        "schema": "repro-bench-v1",
        "rev": rev or detect_revision(),
        "git": git_describe(),
        "version": __version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp": time.time(),
        "workloads": {name: measure_workload(name, reps, warmup) for name in selected},
    }
    return report


# ----------------------------------------------------------------------
def git_describe() -> Optional[str]:
    """Short git revision of the working tree, or None outside git."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    dirty = subprocess.run(
        ["git", "status", "--porcelain"], capture_output=True, text=True, timeout=10
    )
    if dirty.returncode == 0 and dirty.stdout.strip():
        rev += "-dirty"
    return rev or None


def detect_revision() -> str:
    """Label for the BENCH file name: git revision or package version."""
    return git_describe() or f"v{__version__}"
