"""PRAC protocol machinery: Alert Back-Off and mitigation queues.

Per-row activation counters live on :class:`repro.dram.bank.Bank`; this
package adds the protocol layer on top of them:

* :mod:`repro.prac.abo` — the Alert Back-Off state machine that asserts
  Alert when any counter reaches the Back-Off threshold (N_BO) and
  drives the controller to issue RFMab commands.
* :mod:`repro.prac.mitigation_queue` — in-DRAM mitigation queue
  designs: the single-entry frequency queue TPRAC proposes, a FIFO
  queue (shown insecure by prior work), and a QPRAC-style priority
  queue.
"""

from repro.prac.abo import AboProtocol, AboState
from repro.prac.mitigation_queue import (
    FifoMitigationQueue,
    MitigationQueue,
    PriorityMitigationQueue,
    SingleEntryFrequencyQueue,
    make_queue,
)

__all__ = [
    "AboProtocol",
    "AboState",
    "FifoMitigationQueue",
    "MitigationQueue",
    "PriorityMitigationQueue",
    "SingleEntryFrequencyQueue",
    "make_queue",
]
