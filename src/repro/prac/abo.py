"""The Alert Back-Off (ABO) protocol state machine.

When any row's PRAC counter reaches the Back-Off threshold (N_BO), the
DRAM asserts the Alert pin.  The memory controller may issue up to
``ABO_ACT`` more activations (bounded by tABOACT = 180 ns), then must
enter the mitigation period and issue ``N_mit`` (the "PRAC level": 1, 2
or 4) RFMab commands, each blocking the channel for tRFMab = 350 ns.
After the RFMs, a new Alert cannot fire until ``ABO_delay`` (= N_mit)
further activations have occurred.

This state machine is device-side: it watches bank activations and
tells the memory controller *when an RFM burst is due*.  The controller
(:mod:`repro.controller.controller`) performs the actual blocking and
asks the mitigation policy which rows to mitigate.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.dram.bank import Bank
from repro.dram.config import DramConfig
from repro.dram.rank import Channel


class AboState(enum.Enum):
    """Protocol phases."""

    IDLE = "idle"              # no Alert pending
    ALERTED = "alerted"        # Alert asserted; grace ACTs allowed
    RECOVERY = "recovery"      # RFMs done; ABO_delay ACTs before re-Alert


class AboProtocol:
    """Watches all banks; raises Alert when a counter reaches N_BO."""

    def __init__(
        self,
        config: DramConfig,
        channel: Channel,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config
        self.channel = channel
        self._clock = clock
        self.state = AboState.IDLE
        self.alert_time: Optional[float] = None
        self.alerting_bank: Optional[int] = None
        self.alerting_row: Optional[int] = None
        self.grace_acts_left = 0
        self.recovery_acts_left = 0
        self.alert_count = 0
        # Maintained flags (plain attributes, not properties): the
        # controller reads these once per wake and per serve, so they
        # are updated at each state transition instead of recomputed.
        #: True while the Alert pin is asserted (state is ALERTED)
        self.alert_pending = False
        #: True once the grace activations are exhausted
        self.must_mitigate_now = False
        #: controller registers a callback fired when Alert asserts:
        #: f(time, bank_id, row)
        self.on_alert: List[Callable[[float, int, int], None]] = []
        #: fired when the controller reports the RFM burst done and the
        #: protocol leaves ALERTED: f(time)
        self.on_mitigated: List[Callable[[float], None]] = []
        self._pending_alert_time: Optional[float] = None
        for bank in channel:
            bank.on_activate(self._observe_activation)

    # ------------------------------------------------------------------
    def _observe_activation(self, bank: Bank, row: int, count: int) -> None:
        prac = self.config.prac
        if self.state is AboState.ALERTED:
            self.grace_acts_left -= 1
            if self.grace_acts_left <= 0:
                self.must_mitigate_now = True
            return
        if self.state is AboState.RECOVERY:
            self.recovery_acts_left -= 1
            if self.recovery_acts_left <= 0:
                self.state = AboState.IDLE
            else:
                return
        if count >= prac.nbo:
            self._assert_alert(bank.bank_id, row)

    def _assert_alert(self, bank_id: int, row: int) -> None:
        prac = self.config.prac
        self.state = AboState.ALERTED
        self.alerting_bank = bank_id
        self.alerting_row = row
        self.grace_acts_left = prac.abo_act
        self.alert_pending = True
        self.must_mitigate_now = prac.abo_act <= 0
        self.alert_count += 1
        for hook in self.on_alert:
            hook(self._now(), bank_id, row)

    def _now(self) -> float:
        """Current simulation time, or 0.0 when used clocklessly."""
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Controller-side notifications
    # ------------------------------------------------------------------
    def rfm_burst_size(self) -> int:
        """Number of RFMab commands the controller must issue (N_mit)."""
        return self.config.prac.prac_level

    def mitigation_done(self) -> None:
        """Controller finished the N_mit RFMabs for the current Alert."""
        if self.state is not AboState.ALERTED:
            raise RuntimeError("mitigation_done() without a pending Alert")
        self.state = AboState.RECOVERY
        self.recovery_acts_left = self.config.prac.abo_delay
        self.alerting_bank = None
        self.alerting_row = None
        self.alert_pending = False
        self.must_mitigate_now = False
        for hook in self.on_mitigated:
            hook(self._now())

    def reset(self) -> None:
        """Return to IDLE (used on tREFW counter resets in some designs)."""
        self.state = AboState.IDLE
        self.grace_acts_left = 0
        self.recovery_acts_left = 0
        self.alerting_bank = None
        self.alerting_row = None
        self.alert_pending = False
        self.must_mitigate_now = False
