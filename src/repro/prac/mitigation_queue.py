"""In-DRAM mitigation queue designs.

The PRAC specification leaves the mitigation queue implementation to
vendors; the paper (Section 2.3, 4.1) notes that this choice decides
both security and performance.  Three designs are provided:

* :class:`SingleEntryFrequencyQueue` — TPRAC's proposal: one entry per
  bank tracking the most-activated row (address + count), replaced
  whenever a newly activated row exceeds the stored count.  Section
  4.2.3 argues this matches the security of idealized PRAC.
* :class:`PriorityMitigationQueue` — a QPRAC-style multi-entry priority
  queue ordered by activation count.
* :class:`FifoMitigationQueue` — a FIFO of rows that crossed a
  threshold; prior work showed plain FIFOs are attackable, included
  here as a baseline for the ablation benches.

All queues share one interface: ``observe(row, count)`` on each
activation, ``pop_victim()`` when an RFM arrives, ``reset(row)`` after
mitigation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional, Tuple


class MitigationQueue:
    """Interface for per-bank mitigation queues."""

    def observe(self, row: int, count: int) -> None:
        """Notify the queue that ``row`` was activated (new ``count``)."""
        raise NotImplementedError

    def pop_victim(self) -> Optional[int]:
        """Return the row to mitigate at this RFM, removing it."""
        raise NotImplementedError

    def peek(self) -> Optional[Tuple[int, int]]:
        """Return (row, count) of the next victim without removing it."""
        raise NotImplementedError

    def drop(self, row: int) -> None:
        """Forget ``row`` (its counter was reset by another mechanism)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Forget everything (tREFW-aligned counter reset)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class SingleEntryFrequencyQueue(MitigationQueue):
    """TPRAC's single-entry frequency-based queue (Section 4.1).

    Stores only the (row, count) of the most heavily activated row seen
    since the last mitigation; a newly activated row replaces the entry
    when its count exceeds the stored one.  Ties keep the incumbent,
    matching the paper's Figure 8 example where Row C (in the queue
    first) is mitigated while Row T at an equal count is not.
    """

    def __init__(self) -> None:
        self._row: Optional[int] = None
        self._count: int = 0

    def observe(self, row: int, count: int) -> None:
        if self._row == row:
            self._count = count
        elif count > self._count:
            self._row, self._count = row, count

    def pop_victim(self) -> Optional[int]:
        row = self._row
        self._row, self._count = None, 0
        return row

    def peek(self) -> Optional[Tuple[int, int]]:
        if self._row is None:
            return None
        return (self._row, self._count)

    def drop(self, row: int) -> None:
        if self._row == row:
            self._row, self._count = None, 0

    def clear(self) -> None:
        self._row, self._count = None, 0

    def __len__(self) -> int:
        return 0 if self._row is None else 1


class PriorityMitigationQueue(MitigationQueue):
    """QPRAC-style multi-entry queue ordered by activation count.

    Keeps up to ``capacity`` distinct rows; on overflow the
    lowest-count entry is evicted (so the heaviest hitters survive).
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: dict[int, int] = {}

    def observe(self, row: int, count: int) -> None:
        if row in self._entries:
            self._entries[row] = count
            return
        if len(self._entries) < self.capacity:
            self._entries[row] = count
            return
        weakest = min(self._entries, key=lambda r: (self._entries[r], r))
        if count > self._entries[weakest]:
            del self._entries[weakest]
            self._entries[row] = count

    def pop_victim(self) -> Optional[int]:
        if not self._entries:
            return None
        victim = max(self._entries, key=lambda r: (self._entries[r], -r))
        del self._entries[victim]
        return victim

    def peek(self) -> Optional[Tuple[int, int]]:
        if not self._entries:
            return None
        victim = max(self._entries, key=lambda r: (self._entries[r], -r))
        return (victim, self._entries[victim])

    def drop(self, row: int) -> None:
        self._entries.pop(row, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class FifoMitigationQueue(MitigationQueue):
    """Insertion-ordered queue of rows that crossed ``threshold``.

    Included as the insecure baseline: targeted attacks can flush the
    FIFO with decoys so the true aggressor is never at the head.
    """

    def __init__(self, capacity: int = 4, threshold: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.threshold = threshold
        self._fifo: "OrderedDict[int, int]" = OrderedDict()

    def observe(self, row: int, count: int) -> None:
        if count < self.threshold:
            return
        if row in self._fifo:
            self._fifo[row] = count
            return
        if len(self._fifo) >= self.capacity:
            return  # full FIFO drops new entries — the exploitable flaw
        self._fifo[row] = count

    def pop_victim(self) -> Optional[int]:
        if not self._fifo:
            return None
        row, _ = self._fifo.popitem(last=False)
        return row

    def peek(self) -> Optional[Tuple[int, int]]:
        if not self._fifo:
            return None
        row = next(iter(self._fifo))
        return (row, self._fifo[row])

    def drop(self, row: int) -> None:
        self._fifo.pop(row, None)

    def clear(self) -> None:
        self._fifo.clear()

    def __len__(self) -> int:
        return len(self._fifo)


def make_queue(name: str, **kwargs: Any) -> MitigationQueue:
    """Factory: ``single``, ``priority`` or ``fifo``."""
    factories = {
        "single": SingleEntryFrequencyQueue,
        "priority": PriorityMitigationQueue,
        "fifo": FifoMitigationQueue,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(f"unknown mitigation queue {name!r}") from None
    return factory(**kwargs)
