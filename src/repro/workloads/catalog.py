"""The 50-workload catalog (paper Table 4).

Every workload the paper evaluates appears here with a synthetic-trace
parameterization: target RBMPKI (row-buffer misses per kilo
instruction), row-buffer locality, memory footprint and write fraction.
RBMPKI values are chosen inside each workload's published category
(High >= 10, Medium 1-10, Low < 1), graded so that known
memory-monsters (mcf, lbm, milc) sit at the top.  433.milc is given the
lowest row locality, mirroring its role as the paper's worst case
(8.3% slowdown via extra row-buffer misses, Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class WorkloadSpec:
    """Synthetic-trace parameters for one named workload."""

    name: str
    suite: str            # spec2006 / spec2017 / cloudsuite
    category: str         # H / M / L
    rbmpki: float         # target row-buffer misses per kilo instruction
    row_locality: float   # probability the next access stays in-row
    footprint_rows: int   # how many distinct DRAM rows the workload touches
    write_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.category not in ("H", "M", "L"):
            raise ValueError("category must be H, M or L")
        if not 0 <= self.row_locality < 1:
            raise ValueError("row_locality must be in [0, 1)")
        if self.rbmpki <= 0:
            raise ValueError("rbmpki must be positive")


def _spec(name, suite, category, rbmpki, locality, rows, writes=0.25):
    return WorkloadSpec(
        name=name,
        suite=suite,
        category=category,
        rbmpki=rbmpki,
        row_locality=locality,
        footprint_rows=rows,
        write_fraction=writes,
    )


#: The paper's Table 4, one entry per workload (duplicates in the table
#: collapsed to single entries; the count stays at 50).
CATALOG: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        # ---- High intensity (RBMPKI >= 10) ---------------------------
        _spec("nutch", "cloudsuite", "H", 14.0, 0.35, 4096, 0.30),
        _spec("cassandra", "cloudsuite", "H", 12.0, 0.40, 4096, 0.35),
        _spec("classification", "cloudsuite", "H", 16.0, 0.30, 4096, 0.20),
        _spec("cloud9", "cloudsuite", "H", 11.0, 0.40, 4096, 0.30),
        _spec("433.milc", "spec2006", "H", 26.0, 0.08, 8192, 0.30),
        _spec("410.bwaves", "spec2006", "H", 20.0, 0.55, 6144, 0.20),
        _spec("470.lbm", "spec2006", "H", 32.0, 0.50, 8192, 0.45),
        _spec("471.omnetpp", "spec2006", "H", 21.0, 0.25, 6144, 0.30),
        _spec("483.xalancbmk", "spec2006", "H", 23.0, 0.25, 6144, 0.20),
        _spec("519.lbm", "spec2017", "H", 34.0, 0.50, 8192, 0.45),
        _spec("520.omnetpp", "spec2017", "H", 19.0, 0.25, 6144, 0.30),
        _spec("649.fotonik3d", "spec2017", "H", 18.0, 0.55, 6144, 0.25),
        _spec("450.soplex", "spec2006", "H", 17.0, 0.40, 6144, 0.20),
        _spec("619.lbm", "spec2017", "H", 36.0, 0.50, 8192, 0.45),
        _spec("429.mcf", "spec2006", "H", 38.0, 0.15, 8192, 0.20),
        _spec("654.roms", "spec2017", "H", 13.0, 0.55, 6144, 0.25),
        _spec("605.mcf", "spec2017", "H", 30.0, 0.15, 8192, 0.20),
        _spec("482.sphinx3", "spec2006", "H", 12.0, 0.45, 4096, 0.10),
        _spec("437.leslie3d", "spec2006", "H", 15.0, 0.55, 6144, 0.25),
        _spec("627.cam4", "spec2017", "H", 11.0, 0.45, 4096, 0.25),
        _spec("620.omnetpp", "spec2017", "H", 18.0, 0.25, 6144, 0.30),
        _spec("628.pop2", "spec2017", "H", 10.5, 0.45, 4096, 0.25),
        _spec("607.cactuBSSN", "spec2017", "H", 12.5, 0.50, 6144, 0.30),
        _spec("436.cactusADM", "spec2006", "H", 11.5, 0.50, 6144, 0.30),
        _spec("459.GemsFDTD", "spec2006", "H", 16.5, 0.55, 6144, 0.25),
        # ---- Medium intensity (1 <= RBMPKI < 10) ---------------------
        _spec("401.bzip2", "spec2006", "M", 3.5, 0.50, 2048, 0.25),
        _spec("657.xz", "spec2017", "M", 4.0, 0.45, 2048, 0.30),
        _spec("602.gcc", "spec2017", "M", 2.5, 0.50, 2048, 0.25),
        _spec("473.astar", "spec2006", "M", 5.0, 0.35, 2048, 0.20),
        _spec("623.xalancbmk", "spec2017", "M", 6.0, 0.30, 2048, 0.20),
        _spec("464.h264ref", "spec2006", "M", 1.5, 0.60, 1024, 0.25),
        _spec("481.wrf", "spec2006", "M", 2.0, 0.55, 2048, 0.25),
        # ---- Low intensity (RBMPKI < 1) ------------------------------
        _spec("631.deepsjeng", "spec2017", "L", 0.60, 0.50, 512, 0.25),
        _spec("458.sjeng", "spec2006", "L", 0.50, 0.50, 512, 0.25),
        _spec("456.hmmer", "spec2006", "L", 0.30, 0.60, 512, 0.20),
        _spec("625.x264", "spec2017", "L", 0.45, 0.60, 512, 0.25),
        _spec("403.gcc", "spec2006", "L", 0.70, 0.50, 512, 0.25),
        _spec("444.namd", "spec2006", "L", 0.25, 0.60, 512, 0.20),
        _spec("603.bwaves", "spec2017", "L", 0.80, 0.60, 1024, 0.20),
        _spec("638.imagick", "spec2017", "L", 0.15, 0.65, 512, 0.25),
        _spec("644.nab", "spec2017", "L", 0.35, 0.60, 512, 0.25),
        _spec("600.perlbench", "spec2017", "L", 0.40, 0.55, 512, 0.25),
        _spec("621.wrf", "spec2017", "L", 0.55, 0.60, 1024, 0.25),
        _spec("465.tonto", "spec2006", "L", 0.20, 0.60, 512, 0.20),
        _spec("447.dealII", "spec2006", "L", 0.30, 0.60, 512, 0.20),
        _spec("435.gromacs", "spec2006", "L", 0.45, 0.55, 512, 0.25),
        _spec("641.leela", "spec2017", "L", 0.10, 0.55, 256, 0.20),
        _spec("454.calculix", "spec2006", "L", 0.25, 0.60, 512, 0.20),
        _spec("445.gobmk", "spec2006", "L", 0.50, 0.50, 512, 0.25),
        _spec("453.povray", "spec2006", "L", 0.05, 0.60, 256, 0.20),
        _spec("416.gamess", "spec2006", "L", 0.08, 0.60, 256, 0.20),
        _spec("648.exchange2", "spec2017", "L", 0.05, 0.55, 256, 0.15),
    ]
}


def workload_names(category: Optional[str] = None, suite: Optional[str] = None) -> List[str]:
    """Names filtered by category (H/M/L) and/or suite."""
    names = []
    for name, spec in CATALOG.items():
        if category is not None and spec.category != category:
            continue
        if suite is not None and spec.suite != suite:
            continue
        names.append(name)
    return names


def by_category() -> Dict[str, List[str]]:
    """Mapping H/M/L -> workload names."""
    out: Dict[str, List[str]] = {"H": [], "M": [], "L": []}
    for name, spec in CATALOG.items():
        out[spec.category].append(name)
    return out


def get_workload(name: str) -> WorkloadSpec:
    """Look up a catalog entry by name; raises KeyError with guidance."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; see repro.workloads.workload_names()"
        ) from None
