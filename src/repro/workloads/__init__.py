"""Workload substrate: the paper's 50-workload evaluation set.

The paper evaluates SPEC2006/SPEC2017/CloudSuite traces categorized by
row-buffer misses per kilo-instruction (RBMPKI): High (>= 10), Medium
(1-10), Low (< 1).  Binary traces are not redistributable, so this
package provides a deterministic synthetic generator per workload,
calibrated to each workload's published memory-intensity class (see
DESIGN.md's substitution table).
"""

from repro.workloads.catalog import (
    CATALOG,
    WorkloadSpec,
    by_category,
    get_workload,
    workload_names,
)
from repro.workloads.synthetic import SyntheticWorkload, generate_trace

__all__ = [
    "CATALOG",
    "SyntheticWorkload",
    "WorkloadSpec",
    "by_category",
    "generate_trace",
    "get_workload",
    "workload_names",
]
