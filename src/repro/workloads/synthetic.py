"""Deterministic synthetic trace generation per workload spec.

Each workload is modelled as a mixture of sequential streaming (which
the Minimalist-Open-Page mapping turns into row-buffer hits striped
across banks) and random jumps within the workload's footprint (which
become row misses/conflicts).  The access density is calibrated so the
trace's row-buffer misses per kilo-instruction land at the spec's
RBMPKI, the paper's categorization variable.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional

from repro.cpu.trace import TraceRecord
from repro.dram.config import DramConfig, ddr5_8000b
from repro.workloads.catalog import WorkloadSpec, get_workload

CACHELINE = 64
ROW_BYTES = 8 * 1024


class SyntheticWorkload:
    """Address-stream generator for one workload spec."""

    def __init__(
        self,
        spec: WorkloadSpec,
        seed: int = 0,
        core_offset: int = 0,
        config: Optional[DramConfig] = None,
    ) -> None:
        self.spec = spec
        self.config = config or ddr5_8000b()
        # crc32, not hash(): str hashing is salted per process
        # (PYTHONHASHSEED), and campaign trials must reproduce bit-for-bit
        # across pool workers given the same seed.
        self._rng = random.Random(
            (zlib.crc32(spec.name.encode()) & 0xFFFF) * 31 + seed
        )
        # Each core's footprint is disjoint so cores do not share rows.
        footprint_bytes = spec.footprint_rows * ROW_BYTES
        self.base = core_offset * footprint_bytes
        self.footprint_bytes = footprint_bytes
        self._position = self.base
        # DRAM accesses per kilo-instruction: misses/(1-locality) misses
        # of the stream are row misses, so scale the density accordingly.
        self.accesses_per_ki = spec.rbmpki / max(1e-6, (1.0 - spec.row_locality))
        self.mean_gap = max(1, int(1000.0 / self.accesses_per_ki))

    # ------------------------------------------------------------------
    def _next_address(self) -> int:
        if self._rng.random() < self.spec.row_locality:
            self._position += CACHELINE
            if self._position >= self.base + self.footprint_bytes:
                self._position = self.base
        else:
            line = self._rng.randrange(self.footprint_bytes // CACHELINE)
            self._position = self.base + line * CACHELINE
        return self._position

    def _next_gap(self) -> int:
        # Geometric-ish gap with the right mean, bounded for stability.
        gap = int(self._rng.expovariate(1.0 / self.mean_gap))
        return min(gap, self.mean_gap * 8)

    def generate(self, num_accesses: int) -> List[TraceRecord]:
        """``num_accesses`` DRAM requests worth of trace."""
        records = []
        for _ in range(num_accesses):
            records.append(
                TraceRecord(
                    gap_insts=self._next_gap(),
                    phys_addr=self._next_address(),
                    is_write=self._rng.random() < self.spec.write_fraction,
                )
            )
        return records


def generate_trace(
    name: str,
    num_accesses: int,
    seed: int = 0,
    core_offset: int = 0,
) -> List[TraceRecord]:
    """Convenience: generate a trace for a catalog workload by name."""
    spec = get_workload(name)
    return SyntheticWorkload(spec, seed=seed, core_offset=core_offset).generate(
        num_accesses
    )


def homogeneous_traces(
    name: str, cores: int, num_accesses: int, seed: int = 0
) -> List[List[TraceRecord]]:
    """Four-core homogeneous mix (the paper's SPEC methodology)."""
    return [
        generate_trace(name, num_accesses, seed=seed + core, core_offset=core)
        for core in range(cores)
    ]
