"""Heterogeneous workload mixes.

The paper runs SPEC workloads as 4-core *homogeneous* mixes but
CloudSuite with a *distinct thread per core*.  This module builds both,
plus named heterogeneous mixes (one workload per intensity class) used
by the fairness-flavoured extension studies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cpu.trace import TraceRecord
from repro.workloads.catalog import get_workload, workload_names
from repro.workloads.synthetic import SyntheticWorkload


def heterogeneous_traces(
    names: Sequence[str], num_accesses: int, seed: int = 0
) -> List[List[TraceRecord]]:
    """One trace per name; each core gets a disjoint footprint."""
    if not names:
        raise ValueError("need at least one workload name")
    traces = []
    for core, name in enumerate(names):
        spec = get_workload(name)
        generator = SyntheticWorkload(spec, seed=seed + core, core_offset=core)
        traces.append(generator.generate(num_accesses))
    return traces


def cloudsuite_mix(num_accesses: int, seed: int = 0) -> List[List[TraceRecord]]:
    """The paper's CloudSuite methodology: 4 distinct threads."""
    return heterogeneous_traces(
        sorted(workload_names(suite="cloudsuite")), num_accesses, seed=seed
    )


#: Named mixes spanning the intensity classes.
NAMED_MIXES: Dict[str, List[str]] = {
    "mix_hhll": ["429.mcf", "433.milc", "453.povray", "416.gamess"],
    "mix_hmml": ["470.lbm", "401.bzip2", "473.astar", "444.namd"],
    "mix_hhhh": ["429.mcf", "433.milc", "470.lbm", "519.lbm"],
    "mix_llll": ["453.povray", "416.gamess", "444.namd", "641.leela"],
    "cloudsuite": sorted(workload_names(suite="cloudsuite")),
}


def named_mix(name: str, num_accesses: int, seed: int = 0) -> List[List[TraceRecord]]:
    """Build a named heterogeneous mix by key from :data:`NAMED_MIXES`."""
    try:
        names = NAMED_MIXES[name]
    except KeyError:
        raise KeyError(f"unknown mix {name!r}; options: {sorted(NAMED_MIXES)}") from None
    return heterogeneous_traces(names, num_accesses, seed=seed)
