"""Seeded fault plans and the env-gated injection hooks.

A :class:`FaultPlan` is a list of :class:`FaultRule` records, each
naming an *action*, an ``fnmatch`` *pattern* over the canonical task id
(worker-boundary actions) or file name (storage-boundary ``corrupt``),
and — for worker actions — the explicit *attempt numbers* the fault
fires on.  Matching is purely structural: no wall-clock, no
per-process counters, no unseeded randomness, so a plan injects the
same faults regardless of pool width, scheduling, or host.

Actions
-------
``raise``
    Raise :class:`InjectedFault` (a
    :class:`repro.core.executor.TransientError` — retried by the
    supervisor) or, with ``"transient": false``, :class:`InjectedBug`
    (deterministic — recorded, never retried).
``hang``
    Sleep ``seconds`` (default 3600) before running the task — long
    enough to blow any sane deadline, so the supervisor's timeout path
    kills the worker and rebuilds the pool.
``crash``
    ``os._exit(23)``: the worker process dies without cleanup,
    breaking the process pool — the supervisor's rebuild/requeue path.
``delay``
    Sleep ``seconds`` (default 0.05) and then run normally — delayed
    completion without failure (reordering stress).
``corrupt``
    Storage-boundary action: mangle the serialized JSON document
    before it reaches disk (``mode``: ``truncate`` / ``garble`` /
    ``zero``) for files whose *name* matches the pattern — feeds the
    resume-time corruption-quarantine machinery.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.executor import FAULT_PLAN_ENV, TransientError

__all__ = [
    "FAULT_ACTIONS",
    "FAULT_PLAN_ENV",
    "CORRUPT_MODES",
    "FaultPlan",
    "FaultRule",
    "InjectedBug",
    "InjectedFault",
    "active_plan",
    "clear_plan_cache",
    "fire",
    "mangle_output",
]

#: Worker-boundary actions (matched on task id + attempt) and the
#: storage-boundary one (matched on file name).
WORKER_ACTIONS = ("raise", "hang", "crash", "delay")
FAULT_ACTIONS = WORKER_ACTIONS + ("corrupt",)

CORRUPT_MODES = ("truncate", "garble", "zero")

#: Exit status used by the ``crash`` action — distinctive in waitpid
#: logs, meaningless to the supervisor (any hard death breaks the pool).
CRASH_EXIT_STATUS = 23


class InjectedFault(TransientError):
    """A plan-injected *transient* failure (supervisor retries it)."""


class InjectedBug(RuntimeError):
    """A plan-injected *deterministic* failure (never retried)."""


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: action + pattern + firing attempts."""

    action: str
    match: str = "*"
    attempts: Tuple[int, ...] = (0,)
    seconds: Optional[float] = None
    transient: bool = True
    mode: str = "truncate"

    def validate(self) -> "FaultRule":
        """Check every knob, returning ``self`` for chaining."""
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; have {list(FAULT_ACTIONS)}"
            )
        if not self.match:
            raise ValueError("fault rule needs a non-empty match pattern")
        if any(a < 0 for a in self.attempts):
            raise ValueError("fault rule attempts must be >= 0")
        if self.seconds is not None and self.seconds < 0:
            raise ValueError("fault rule seconds must be >= 0")
        if self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"unknown corrupt mode {self.mode!r}; have {list(CORRUPT_MODES)}"
            )
        return self

    @property
    def sleep_seconds(self) -> float:
        if self.seconds is not None:
            return self.seconds
        return 3600.0 if self.action == "hang" else 0.05

    def matches_task(self, task_id: str, attempt: int) -> bool:
        """True when this worker-side rule fires for (task, attempt)."""
        return (
            self.action in WORKER_ACTIONS
            and attempt in self.attempts
            and fnmatchcase(task_id, self.match)
        )

    def matches_file(self, name: str) -> bool:
        """True when this corrupt rule fires for the output file name."""
        return self.action == "corrupt" and fnmatchcase(name, self.match)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialize to the JSON rule shape, omitting defaults."""
        doc: Dict[str, Any] = {"action": self.action, "match": self.match}
        if self.action in WORKER_ACTIONS:
            doc["attempts"] = list(self.attempts)
        if self.seconds is not None:
            doc["seconds"] = self.seconds
        if not self.transient:
            doc["transient"] = False
        if self.action == "corrupt" and self.mode != "truncate":
            doc["mode"] = self.mode
        return doc

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultRule":
        known = {"action", "match", "attempts", "seconds", "transient", "mode"}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(
                f"unknown fault rule keys: {unknown}; have {sorted(known)}"
            )
        if "action" not in spec:
            raise ValueError("fault rule needs an 'action' key")
        attempts = spec.get("attempts", (0,))
        if isinstance(attempts, int):
            attempts = (attempts,)
        return cls(
            action=str(spec["action"]),
            match=str(spec.get("match", "*")),
            attempts=tuple(int(a) for a in attempts),
            seconds=(
                float(spec["seconds"]) if spec.get("seconds") is not None else None
            ),
            transient=bool(spec.get("transient", True)),
            mode=str(spec.get("mode", "truncate")),
        ).validate()


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules (plus a seed reserved for future
    probabilistic rules; everything today is structurally matched)."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def validate(self) -> "FaultPlan":
        """Validate every rule, returning ``self`` for chaining."""
        for rule in self.rules:
            rule.validate()
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to the JSON plan shape, omitting defaults."""
        doc: Dict[str, Any] = {"rules": [r.to_dict() for r in self.rules]}
        if self.seed:
            doc["seed"] = self.seed
        return doc

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultPlan":
        known = {"rules", "seed"}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(
                f"unknown fault plan keys: {unknown}; have {sorted(known)}"
            )
        rules = spec.get("rules", ())
        if not isinstance(rules, (list, tuple)):
            raise ValueError("fault plan 'rules' must be a list")
        return cls(
            rules=tuple(FaultRule.from_dict(r) for r in rules),
            seed=int(spec.get("seed", 0)),
        ).validate()

    @classmethod
    def loads(cls, source: str) -> "FaultPlan":
        """Parse a plan from inline JSON or a JSON file path."""
        text = source
        if not source.lstrip().startswith("{"):
            text = Path(source).read_text()
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise ValueError("fault plan must be a JSON object")
        return cls.from_dict(spec)

    # ------------------------------------------------------------------
    def worker_rules(self, task_id: str, attempt: int) -> List[FaultRule]:
        """Worker-side rules that fire for (task, attempt), in order."""
        return [r for r in self.rules if r.matches_task(task_id, attempt)]

    def file_rules(self, name: str) -> List[FaultRule]:
        """Corrupt rules that fire for the output file name, in order."""
        return [r for r in self.rules if r.matches_file(name)]


# ----------------------------------------------------------------------
# Env-gated hook points
# ----------------------------------------------------------------------
#: (env value -> parsed plan) cache; one parse per process per value.
_plan_cache: Dict[str, FaultPlan] = {}


def clear_plan_cache() -> None:
    """Drop the parsed-plan cache (tests that rewrite the env/plan)."""
    _plan_cache.clear()


def active_plan() -> Optional[FaultPlan]:
    """The plan named by ``REPRO_FAULT_PLAN``, or None when unset."""
    source = os.environ.get(FAULT_PLAN_ENV)
    if not source:
        return None
    plan = _plan_cache.get(source)
    if plan is None:
        plan = FaultPlan.loads(source)
        _plan_cache[source] = plan
    return plan


def fire(task_id: str, attempt: int) -> None:
    """Worker-boundary hook: apply every matching worker rule in order.

    ``raise``/``crash`` terminate the attempt outright; ``hang`` and
    ``delay`` sleep and fall through to the next rule (and ultimately
    the real task).
    """
    plan = active_plan()
    if plan is None:
        return
    for rule in plan.worker_rules(task_id, attempt):
        if rule.action == "raise":
            message = f"injected fault ({task_id} attempt {attempt})"
            if rule.transient:
                raise InjectedFault(message)
            raise InjectedBug(message)
        if rule.action == "crash":
            os._exit(CRASH_EXIT_STATUS)
        if rule.action in ("hang", "delay"):
            time.sleep(rule.sleep_seconds)


def mangle_output(name: str, text: str) -> str:
    """Storage-boundary hook: corrupt serialized output per the plan.

    Called by the atomic JSON writer with the destination *file name*
    and the serialized document; returns the (possibly mangled) bytes
    to persist.  Identity when no ``corrupt`` rule matches.
    """
    plan = active_plan()
    if plan is None:
        return text
    for rule in plan.file_rules(name):
        if rule.mode == "truncate":
            text = text[: max(0, len(text) // 2)]
        elif rule.mode == "garble":
            text = text[:-2] + "#corrupt#" if len(text) > 2 else "#corrupt#"
        elif rule.mode == "zero":
            text = ""
    return text
