"""Deterministic fault injection for the orchestration layers.

The resilience machinery in :mod:`repro.core.executor` — retries,
deadlines, pool rebuilds, quarantine — is only trustworthy if it is
exercised by *real* faults: workers that raise, hang, die with
``os._exit``, or corrupt what they persist.  This package turns those
faults into declarative, seeded **fault plans** injected at two
env-gated hook points:

* the **worker boundary** — :func:`fire`, called by the supervisor's
  worker wrapper with the task's canonical id and attempt number
  before the real work runs;
* the **storage boundary** — :func:`mangle_output`, called by
  :func:`repro.analysis.storage.atomic_write_json` with the file name
  and serialized bytes before they hit disk.

Both hooks are dormant unless the ``REPRO_FAULT_PLAN`` environment
variable names a plan (a JSON file path, or inline JSON starting with
``{``), so production runs pay one ``os.environ`` lookup and nothing
else.  Plans are deterministic by construction: rules match on stable
task ids (``fnmatch`` patterns) and explicit attempt numbers, never on
wall-clock or per-process counters, so a chaos run injects the same
faults wherever its tasks execute.

Example plan — every scenario's trial 0 raises a transient fault once,
trial 1 kills its worker process once, trial 2 hangs into the deadline
once::

    {"rules": [
        {"action": "raise", "match": "*:0", "attempts": [0]},
        {"action": "crash", "match": "*:1", "attempts": [0]},
        {"action": "hang",  "match": "*:2", "attempts": [0], "seconds": 60}
    ]}

Under ``supervise_tasks(policy=RetryPolicy(retries=2, timeout=2))``
such a campaign converges — retries and pool rebuilds recover every
trial — and its scenario aggregates are byte-identical to a fault-free
run (the chaos leg in ``scripts/verify.sh`` asserts exactly that).
"""

from repro.faults.plan import (
    FAULT_ACTIONS,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    InjectedBug,
    InjectedFault,
    active_plan,
    clear_plan_cache,
    fire,
    mangle_output,
)

__all__ = [
    "FAULT_ACTIONS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultRule",
    "InjectedBug",
    "InjectedFault",
    "active_plan",
    "clear_plan_cache",
    "fire",
    "mangle_output",
]
