"""Grid expansion: axis lists -> concrete scenario instances.

A *grid* is a mapping of axis name to the list of values to sweep,
e.g. ``{"attack": ["aes_side_channel"], "mitigation": ["abo_only",
"tprac"], "nbo": [128, 256]}``.  :func:`expand_grid` takes the
cartesian product and returns validated :class:`Scenario` instances in
deterministic order.  Axis names that are not scenario fields become
per-scenario ``params`` entries, so attack tuning knobs (``symbols``,
``encryptions``, ``crash_seeds``…) sweep exactly like first-class axes.

:func:`parse_grid_tokens` turns CLI tokens (``nbo=128,256``) into such
a mapping, coercing ints/floats/bools while leaving names as strings.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Sequence

from repro.campaigns.scenario import Scenario

#: First-class scenario fields an axis can address directly.
SCENARIO_AXES = (
    "attack", "mitigation", "workload", "dram", "nbo", "prac_level", "channels",
    "scheduler", "mapping", "refresh", "cache", "interconnect", "engine",
    "sanitize", "trace", "metrics",
)


def expand_grid(axes: Mapping[str, Sequence[Any]]) -> List[Scenario]:
    """Cartesian-product the axes into validated scenarios.

    Order is deterministic: axes iterate in their given (insertion)
    order, values in their given order — so a grid expands to the same
    scenario list on every run, which keeps content-hash IDs stable and
    diffs readable.  Duplicate scenarios (identical specs reached by
    different axis spellings) raise.
    """
    if "attack" not in axes:
        raise ValueError("a grid needs an 'attack' axis")
    names = list(axes)
    value_lists = []
    for name in names:
        values = list(axes[name])
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        value_lists.append(values)

    scenarios: List[Scenario] = []
    seen: Dict[str, str] = {}
    for combo in itertools.product(*value_lists):
        point = dict(zip(names, combo))
        spec = {k: v for k, v in point.items() if k in SCENARIO_AXES}
        spec["params"] = {k: v for k, v in point.items() if k not in SCENARIO_AXES}
        scenario = Scenario.from_dict(spec)
        sid = scenario.scenario_id
        if sid in seen:
            raise ValueError(
                f"duplicate scenario {scenario.label!r} (id {sid}) in grid"
            )
        seen[sid] = scenario.label
        scenarios.append(scenario)
    return scenarios


def _coerce(token: str) -> Any:
    """CLI string -> int/float/bool where it parses, else the string."""
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token


def parse_grid_tokens(tokens: Sequence[str]) -> Dict[str, List[Any]]:
    """``["nbo=128,256", "mitigation=tprac"]`` -> axis mapping.

    Each token is ``axis=v1,v2,...``; values are type-coerced
    individually.  Repeating an axis raises (silently keeping the last
    spelling would make sweeps lie about their size).
    """
    axes: Dict[str, List[Any]] = {}
    for token in tokens:
        name, eq, rest = token.partition("=")
        name = name.strip()
        if not eq or not name or not rest.strip():
            raise ValueError(
                f"bad grid token {token!r}; expected axis=value[,value...]"
            )
        if name in axes:
            raise ValueError(f"axis {name!r} given twice")
        axes[name] = [_coerce(part) for part in rest.split(",") if part != ""]
        if not axes[name]:
            raise ValueError(f"axis {name!r} has no values")
    return axes
