"""Per-kind trial implementations behind the campaign engine.

:func:`run_trial` maps one (:class:`Scenario`, seed) pair onto the
repository's simulators and returns a flat ``{metric: number}`` dict:

* ``perf`` — no attacker: the scenario's workload runs under the named
  mitigation vs the PRAC-without-ABO baseline; the metric is the
  paper's normalized-performance figure of merit.  With the
  ``channels`` axis > 1 the systems run the full multi-channel memory
  model (one controller + policy instance per channel) and the metrics
  gain per-channel ``requests_chN`` / ``rfms_chN`` breakdowns; the
  ``scheduler`` / ``mapping`` / ``refresh`` axes pick the registered
  controller components for baseline and mitigated systems alike.
* ``covert_activity`` / ``covert_count`` — the PRACLeak covert
  channels, run against the named mitigation (the registry policy is
  injected into the channel's controller) with a seeded message and,
  optionally, background workload traffic as scheduling noise.
* ``aes_side_channel`` — the AES T-table key-recovery attack with a
  seeded key; ``mitigation`` selects undefended (ABO-Only) vs TPRAC.
* ``feinting`` — the executed worst-case Feinting attack against
  TPRAC; checks the analytical bound holds.
* ``selftest`` — a microsecond-scale deterministic kind used by smoke
  grids and the fault-injection tests; ``crash_seeds`` makes chosen
  trials raise (deterministic failure) and ``flaky_seeds`` makes them
  raise :class:`~repro.core.executor.TransientError` (retried, then
  quarantined), so campaigns can prove both their per-trial isolation
  and the supervisor's retry/quarantine pipeline.

Every kind derives all randomness from the trial seed, so a scenario
trial is bit-for-bit reproducible in any worker process.
"""

from __future__ import annotations

import random
import zlib
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.controller import MemoryController
    from repro.core.engine import Engine

from repro.campaigns.scenario import NO_WORKLOAD, Scenario
from repro.mitigations import make_policy
from repro.mitigations.acb_rfm import AcbRfmPolicy
from repro.mitigations.base import MitigationPolicy

TrialFn = Callable[[Scenario, int], Dict[str, float]]

_TRIAL_KINDS: Dict[str, TrialFn] = {}

#: Optional observer called with every :class:`~repro.cpu.system.System`
#: a ``perf`` trial runs (baseline and mitigated, in that order).  The
#: bench harness (:mod:`repro.bench`) uses it to read engine telemetry
#: (events fired, simulated ns) without altering trial metric payloads.
system_probe: Optional[Callable[[Any], None]] = None

#: Directory (str path) that perf trials export per-trial telemetry
#: into when the scenario carries the ``trace``/``metrics`` axes.  Set
#: by the campaign worker (:func:`repro.campaigns.trials._execute_trial`)
#: around each trial; a module global because the ``(scenario, seed) ->
#: metrics`` trial signature is the reproducibility contract.
telemetry_dir: Optional[str] = None


def _kind(name: str) -> Callable[[TrialFn], TrialFn]:
    def register(fn: TrialFn) -> TrialFn:
        _TRIAL_KINDS[name] = fn
        return fn
    return register


def run_trial(scenario: Scenario, seed: int) -> Dict[str, float]:
    """Run one seeded Monte Carlo trial; returns numeric metrics."""
    scenario.validate()
    return _TRIAL_KINDS[scenario.attack](scenario, seed)


# ----------------------------------------------------------------------
# Policy construction shared by the trial kinds
# ----------------------------------------------------------------------
def build_policy(scenario: Scenario, seed: int = 0) -> MitigationPolicy:
    """Instantiate the scenario's mitigation, solving config-dependent
    parameters (TB-Window, BAT) from the scenario's device config."""
    name = scenario.mitigation
    if name in ("tprac", "rfmpb"):
        from repro.analysis.tb_window import required_tb_window

        window = required_tb_window(scenario.dram_config(), scenario.nbo)
        return make_policy(name, tb_window=window)
    if name == "abo_acb":
        return make_policy(name, bat=AcbRfmPolicy.bat_for_threshold(scenario.nbo))
    if name == "obfuscation":
        return make_policy(name, seed=seed)
    return make_policy(name)


# ----------------------------------------------------------------------
# perf: mitigation overhead on a workload (no attacker)
# ----------------------------------------------------------------------
@_kind("perf")
def _perf_trial(scenario: Scenario, seed: int) -> Dict[str, float]:
    from repro.cpu.system import System
    from repro.workloads.synthetic import homogeneous_traces

    if scenario.workload == NO_WORKLOAD:
        raise ValueError("perf scenarios need a workload axis")
    params = scenario.params
    cores = int(params.get("cores", 2))
    requests = int(params.get("requests_per_core", 600))
    traces = homogeneous_traces(
        scenario.workload, cores=cores, num_accesses=requests, seed=seed
    )
    config = scenario.dram_config()
    system_config = scenario.system_config()
    baseline_system = System(
        traces,
        config=config,
        policy_factory=lambda: make_policy("none"),
        enable_abo=False,
        system=system_config,
    )
    baseline = baseline_system.run()
    # Mitigation state is strictly per-channel: the factory gives every
    # controller its own policy instance, each with a distinct seed so
    # stochastic policies (obfuscation) inject independent noise per
    # channel.  Channel 0 keeps the bare trial seed, so single-channel
    # scenarios reproduce the historical policy exactly.
    mitigated_system = System(
        traces,
        config=config,
        policy_factory=lambda channel_id: build_policy(
            scenario, seed=seed + 100_003 * channel_id
        ),
        enable_abo=scenario.mitigation != "none",
        system=system_config,
    )
    mitigated = mitigated_system.run()
    if system_probe is not None:
        system_probe(baseline_system)
        system_probe(mitigated_system)
    memory = mitigated_system.memory
    if telemetry_dir is not None and (
        memory.recorder is not None or memory.sampler is not None
    ):
        from repro.obs.export import export_system_telemetry

        export_system_telemetry(
            memory,
            telemetry_dir,
            stem=f"{scenario.scenario_id}-s{seed}",
            meta={"scenario": scenario.label, "seed": seed},
        )
    metrics = {
        "normalized_perf": mitigated.total_ipc / baseline.total_ipc,
        "ipc": mitigated.total_ipc,
        "baseline_ipc": baseline.total_ipc,
        "rfms": float(mitigated.rfm_total),
    }
    if config.organization.channels > 1:
        for slice_ in mitigated.per_channel:
            metrics[f"rfms_ch{slice_.channel}"] = float(slice_.rfms)
            metrics[f"requests_ch{slice_.channel}"] = float(slice_.requests)
    # The cache / interconnect axes surface their counters as metrics,
    # so sweeps see hit-rate and occupancy next to normalized perf.
    if mitigated.cache is not None:
        cache = mitigated.cache
        metrics["l1_hit_rate"] = cache["l1"]["hit_rate"]
        metrics["l2_hit_rate"] = cache["l2"]["hit_rate"]
        metrics["cache_writebacks"] = float(cache["dram_writebacks"])
        metrics["mshr_merges"] = float(cache["mshr_merges"])
        metrics["mshr_stalls"] = float(cache["mshr_stalls"])
    if mitigated.interconnect is not None:
        icn = mitigated.interconnect
        metrics["interconnect_transfers"] = float(icn["transfers"])
        metrics["interconnect_queued"] = float(icn["queued"])
        metrics["interconnect_occupancy"] = icn["occupancy"]
    return metrics


# ----------------------------------------------------------------------
# Covert channels (optionally with background workload noise)
# ----------------------------------------------------------------------
def _covert_noise_setup(
    scenario: Scenario, seed: int, total_ns: float
) -> Optional[Callable[["Engine", "MemoryController"], None]]:
    """A ``run(setup=...)`` hook scheduling workload requests as noise,
    or None when the scenario carries no background workload."""
    accesses = int(scenario.params.get("noise_accesses", 200))
    if scenario.workload == NO_WORKLOAD or accesses <= 0:
        return None

    def setup(engine: "Engine", controller: "MemoryController") -> None:
        from repro.controller.request import MemRequest
        from repro.workloads.catalog import get_workload
        from repro.workloads.synthetic import SyntheticWorkload

        spec = get_workload(scenario.workload)
        # core_offset pushes the noise footprint away from the attack rows.
        trace = SyntheticWorkload(spec, seed=seed, core_offset=8).generate(
            accesses
        )
        spacing = total_ns / (accesses + 1)
        for index, record in enumerate(trace):
            engine.schedule(
                (index + 1) * spacing,
                lambda r=record: controller.enqueue(
                    MemRequest(
                        phys_addr=r.phys_addr, is_write=r.is_write, core_id=3
                    )
                ),
                label="workload-noise",
            )

    return setup


def _covert_metrics(result: Any) -> Dict[str, float]:
    return {
        "error_rate": result.error_rate,
        "bitrate_kbps": result.bitrate_kbps,
        "period_us": result.period_us,
        "symbols": float(result.symbols),
    }


@_kind("covert_activity")
def _covert_activity_trial(scenario: Scenario, seed: int) -> Dict[str, float]:
    from repro.attacks.covert import ActivityChannel

    rng = random.Random(seed)
    symbols = int(scenario.params.get("symbols", 8))
    channel = ActivityChannel(
        nbo=scenario.nbo,
        prac_level=scenario.prac_level,
        message=[rng.randrange(2) for _ in range(symbols)],
        config=scenario.dram_config().with_prac(abo_act=0),
        policy_factory=lambda: build_policy(scenario, seed=seed),
    )
    setup = _covert_noise_setup(scenario, seed, symbols * channel.window_ns)
    return _covert_metrics(channel.run(setup=setup))


@_kind("covert_count")
def _covert_count_trial(scenario: Scenario, seed: int) -> Dict[str, float]:
    from repro.attacks.covert import ActivationCountChannel

    rng = random.Random(seed)
    symbols = int(scenario.params.get("symbols", 4))
    channel = ActivationCountChannel(
        nbo=scenario.nbo,
        prac_level=scenario.prac_level,
        values=[rng.randrange(scenario.nbo) for _ in range(symbols)],
        config=scenario.dram_config().with_prac(abo_act=0),
        policy_factory=lambda: build_policy(scenario, seed=seed),
    )
    setup = _covert_noise_setup(scenario, seed, symbols * channel.window_ns)
    return _covert_metrics(channel.run(setup=setup))


# ----------------------------------------------------------------------
# AES side channel
# ----------------------------------------------------------------------
@_kind("aes_side_channel")
def _aes_trial(scenario: Scenario, seed: int) -> Dict[str, float]:
    from repro.attacks.side_channel import AesSideChannelAttack

    defense_by_mitigation: Dict[str, Optional[str]] = {
        "none": None,
        "abo_only": None,
        "tprac": "tprac",
    }
    if scenario.mitigation not in defense_by_mitigation:
        raise ValueError(
            "aes_side_channel supports mitigation in "
            f"{sorted(defense_by_mitigation)}, not {scenario.mitigation!r}"
        )
    rng = random.Random(seed)
    key = bytes(rng.randrange(256) for _ in range(16))
    attack = AesSideChannelAttack(
        key,
        nbo=scenario.nbo,
        prac_level=scenario.prac_level,
        encryptions=int(scenario.params.get("encryptions", 150)),
        defense=defense_by_mitigation[scenario.mitigation],
        seed=seed,
    )
    result = attack.run_single(
        int(scenario.params.get("target_byte", 0)),
        int(scenario.params.get("fixed_value", 0)),
    )
    return {
        "success": 1.0 if result.success else 0.0,
        "recovered": 0.0 if result.recovered_nibble is None else 1.0,
        "attacker_acts_on_trigger": float(result.attacker_acts_on_trigger),
    }


# ----------------------------------------------------------------------
# Eviction-set covert channel through the shared L2
# ----------------------------------------------------------------------
@_kind("eviction_set")
def _eviction_set_trial(scenario: Scenario, seed: int) -> Dict[str, float]:
    """Prime+probe over the shared L2 of the cache hierarchy.

    Core 0 (victim) keeps one line resident; core 1 (attacker) transmits
    a 1 by walking an eviction set — ``l2_ways + 2`` lines that map to
    the victim's L2 set — and a 0 by staying idle.  Between symbols the
    victim self-evicts its private-L1 copy (conflicting same-L1-set
    lines), then re-probes and times the access: above
    ``threshold_ns`` means the line came from DRAM, i.e. the attacker
    spoke.  Every address is derived arithmetically from the seeded RNG
    via the cache's own set/tag geometry, so the trial exercises
    set-index round-tripping end to end.
    """
    from repro.controller.memory_system import MemorySystem
    from repro.controller.request import MemRequest
    from repro.core.engine import Engine

    rng = random.Random(seed)
    params = scenario.params
    symbols = int(params.get("symbols", 16))
    message = [rng.randrange(2) for _ in range(symbols)]
    sysconf = scenario.system_config().validate()
    engine = Engine()
    memory = MemorySystem(
        engine,
        scenario.dram_config(),
        policy_factory=lambda: build_policy(scenario, seed=seed),
        enable_refresh=False,
        system=sysconf,
    )
    interconnect = sysconf.make_interconnect()
    hierarchy = sysconf.make_cache(
        engine, memory, num_cores=2, interconnect=interconnect
    )
    assert hierarchy is not None  # validate() enforced cache != "none"
    l1, l2 = hierarchy.l1s[0], hierarchy.l2
    threshold = float(
        params.get(
            "threshold_ns",
            hierarchy.l1_latency_ns + 2 * hierarchy.l2_latency_ns + 10.0,
        )
    )
    # Victim line plus an eviction set: distinct tags, same L2 set.
    l2_set = rng.randrange(l2.num_sets)
    victim_tag = rng.randrange(256)
    victim_addr = l2.line_addr(l2_set, victim_tag)
    eviction_addrs = [
        l2.line_addr(l2_set, victim_tag + 1 + i) for i in range(l2.ways + 2)
    ]
    # L1 self-eviction fillers: same L1 set as the victim line, but
    # kept out of the victim's L2 set so they never evict it themselves.
    victim_line = victim_addr // l1.line_bytes
    fillers: List[int] = []
    step = l1.num_sets
    line = victim_line + step
    while len(fillers) < l1.ways + 1:
        if line % l2.num_sets != l2_set:
            fillers.append(line * l1.line_bytes)
        line += step

    steps: List[Any] = []
    for bit in message:
        steps.append(("access", victim_addr, 0, None))
        if bit:
            for addr in eviction_addrs:
                steps.append(("access", addr, 1, None))
        for addr in fillers:
            steps.append(("access", addr, 0, None))
        steps.append(("probe", victim_addr, 0, bit))
    stepper = iter(steps)
    decoded: List[int] = []
    probe_latency_total = [0.0]

    def advance() -> None:
        try:
            kind, addr, core, _bit = next(stepper)
        except StopIteration:
            engine.request_stop()
            return
        start = engine.now

        def done(req: Any, kind: str = kind, start: float = start) -> None:
            if kind == "probe":
                latency = engine.now - start
                probe_latency_total[0] += latency
                decoded.append(1 if latency > threshold else 0)
            engine.schedule(engine.now, advance, 0, "evset")

        hierarchy.enqueue(
            MemRequest(phys_addr=addr, core_id=core, on_complete=done)
        )

    engine.schedule(0.0, advance, 0, "evset")
    engine.run(max_events=5_000_000)
    errors = sum(1 for got, sent in zip(decoded, message) if got != sent)
    elapsed_ns = engine.now
    metrics = {
        "error_rate": errors / symbols if symbols else 0.0,
        "symbols": float(symbols),
        "bitrate_kbps": (
            symbols / elapsed_ns * 1e6 if elapsed_ns > 0 else 0.0
        ),
        "mean_probe_ns": (
            probe_latency_total[0] / len(decoded) if decoded else 0.0
        ),
        "l2_hit_rate": l2.stats.hit_rate,
        "dram_reads": float(hierarchy.dram_reads),
        "cache_writebacks": float(hierarchy.dram_writebacks),
    }
    if interconnect is not None:
        metrics["interconnect_occupancy"] = interconnect.occupancy(elapsed_ns)
    return metrics


# ----------------------------------------------------------------------
# Executed Feinting attack
# ----------------------------------------------------------------------
@_kind("feinting")
def _feinting_trial(scenario: Scenario, seed: int) -> Dict[str, float]:
    from repro.attacks.feinting_sim import FeintingAttack

    if scenario.mitigation != "tprac":
        raise ValueError("feinting scenarios attack TPRAC; set mitigation=tprac")
    result = FeintingAttack(
        pool_size=int(scenario.params.get("pool_size", 16)),
        nbo=scenario.nbo,
    ).run()
    return {
        "defense_held": 1.0 if result.defense_held else 0.0,
        "within_bound": 1.0 if result.within_bound else 0.0,
        "target_peak": float(result.target_peak),
        "alerts": float(result.alerts),
    }


# ----------------------------------------------------------------------
# selftest: deterministic, microsecond-scale, crashable on demand
# ----------------------------------------------------------------------
def _crash_seeds(raw: Any) -> List[int]:
    if raw is None:
        return []
    if isinstance(raw, (list, tuple)):
        return [int(v) for v in raw]
    if isinstance(raw, str):
        return [int(v) for v in raw.split("+") if v]
    return [int(raw)]


@_kind("selftest")
def _selftest_trial(scenario: Scenario, seed: int) -> Dict[str, float]:
    if seed in _crash_seeds(scenario.params.get("crash_seeds")):
        raise RuntimeError(f"injected selftest crash (seed {seed})")
    if seed in _crash_seeds(scenario.params.get("flaky_seeds")):
        from repro.core.executor import TransientError

        # Transient, and persistently so: the supervisor retries it
        # until the attempt budget runs out and then quarantines —
        # exercising the whole retry/quarantine pipeline from a grid.
        raise TransientError(f"injected selftest flake (seed {seed})")
    rng = random.Random(
        seed * 1_000_003 + zlib.crc32(scenario.scenario_id.encode())
    )
    return {"value": rng.random()}
