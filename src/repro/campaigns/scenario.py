"""The declarative scenario spec: one attack×defense×workload point.

A :class:`Scenario` names everything one Monte Carlo trial needs —
which attacker runs (:mod:`repro.attacks`), which mitigation defends
(by registry name, :func:`repro.mitigations.get`), which workload mix
drives the memory system (:mod:`repro.workloads.catalog`), which
DRAM device variant hosts it all (:data:`repro.dram.config.PRESETS`
plus the PRAC knobs ``nbo`` / ``prac_level``), and how the controller
itself is assembled — ``channels``, ``scheduler``, ``mapping`` and
``refresh`` are registry-backed structural axes that project onto a
:class:`repro.config.SystemConfig` (:meth:`Scenario.system_config`).
Free-form ``params`` carry per-attack tuning (symbol counts,
encryption budgets, pool sizes).

Scenarios are plain data: they round-trip through dicts/JSON, cross
process-pool boundaries by value, and are identified by a stable
content hash of their spec (:attr:`Scenario.scenario_id`), which is
what makes campaign results cacheable and resumable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping

from repro import mitigations
from repro.analysis.storage import content_key
from repro.config import (
    DEFAULT_CACHE,
    DEFAULT_ENGINE,
    DEFAULT_INTERCONNECT,
    DEFAULT_MAPPING,
    DEFAULT_REFRESH,
    DEFAULT_SCHEDULER,
    SystemConfig,
)
from repro.dram.config import PRESETS, DramConfig
from repro.workloads.catalog import CATALOG

#: Attack kinds the trial dispatcher knows how to run.  ``perf`` is the
#: "no attacker" point (pure mitigation overhead); ``selftest`` is the
#: engine's own cheap deterministic kind, used by smoke grids and the
#: fault-injection tests.
ATTACK_KINDS = (
    "perf",
    "covert_activity",
    "covert_count",
    "aes_side_channel",
    "eviction_set",
    "feinting",
    "selftest",
)

#: Workload value meaning "no background workload drives the system".
NO_WORKLOAD = "none"


@dataclass(frozen=True)
class Scenario:
    """One fully specified victim × attacker × mitigation × device point."""

    attack: str
    mitigation: str = "abo_only"
    workload: str = NO_WORKLOAD
    dram: str = "ddr5_8000b"
    nbo: int = 256
    prac_level: int = 1
    channels: int = 1
    scheduler: str = DEFAULT_SCHEDULER
    mapping: str = DEFAULT_MAPPING
    refresh: str = DEFAULT_REFRESH
    cache: str = DEFAULT_CACHE
    interconnect: str = DEFAULT_INTERCONNECT
    engine: str = DEFAULT_ENGINE
    sanitize: bool = False
    trace: bool = False
    metrics: bool = False
    params: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def validate(self) -> "Scenario":
        """Raise ValueError on any unknown/inconsistent axis value."""
        if self.attack not in ATTACK_KINDS:
            raise ValueError(
                f"unknown attack {self.attack!r}; have {list(ATTACK_KINDS)}"
            )
        if self.mitigation not in mitigations.available():
            raise ValueError(
                f"unknown mitigation {self.mitigation!r}; "
                f"have {mitigations.available()}"
            )
        if self.workload != NO_WORKLOAD and self.workload not in CATALOG:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"see repro.workloads.workload_names()"
            )
        if self.dram not in PRESETS:
            raise ValueError(
                f"unknown DRAM preset {self.dram!r}; have {sorted(PRESETS)}"
            )
        if self.nbo <= 0:
            raise ValueError("nbo must be positive")
        if self.prac_level not in (1, 2, 4):
            raise ValueError("prac_level must be 1, 2 or 4")
        # The structural axes delegate to SystemConfig.validate: the
        # same channels check and registry lookups (whose errors name
        # the field and list the valid spellings) as every other
        # construction path.
        system = self.system_config().validate()
        if self.attack == "eviction_set":
            # The eviction-set covert trial times L2 conflicts, so it
            # needs a hierarchy; beyond cache/interconnect it drives the
            # same hard-wired controller as the other attack harnesses.
            if system.cache == DEFAULT_CACHE:
                raise ValueError(
                    "eviction_set scenarios need a cache hierarchy; "
                    "set cache (e.g. cache='l1l2')"
                )
            extra = sorted(set(system.to_dict()) - {"cache", "interconnect"})
            if extra:
                raise ValueError(
                    f"non-default {'/'.join(extra)} is not modeled for "
                    "eviction_set scenarios; only the cache/interconnect "
                    "axes apply"
                )
        elif self.attack != "perf" and not system.is_default():
            changed = sorted(system.to_dict())
            raise ValueError(
                f"non-default {'/'.join(changed)} is only modeled for "
                "perf scenarios; the attack harnesses drive a single "
                "hard-wired controller"
            )
        if not isinstance(self.params, Mapping):
            raise ValueError("params must be a mapping")
        return self

    # ------------------------------------------------------------------
    def dram_config(self) -> DramConfig:
        """The concrete device config (preset + this scenario's PRAC and
        channel knobs)."""
        config = PRESETS[self.dram].with_prac(
            nbo=self.nbo, prac_level=self.prac_level
        )
        # Structural projection (channel count) is owned by SystemConfig
        # so perf and attack trials can never disagree on the device.
        return self.system_config().apply_to(config)

    def system_config(self) -> SystemConfig:
        """The declarative system assembly for this scenario
        (:class:`repro.config.SystemConfig`): channels + scheduler +
        mapping + refresh, defaults elsewhere."""
        return SystemConfig(
            channels=self.channels,
            scheduler=self.scheduler,
            mapping=self.mapping,
            refresh=self.refresh,
            cache=self.cache,
            interconnect=self.interconnect,
            engine=self.engine,
            sanitize=self.sanitize,
            trace=self.trace,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    # Identity & serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-able; params copied).

        The structural axes (``channels``, ``scheduler``, ``mapping``,
        ``refresh``) are emitted only when they differ from their
        defaults: default scenarios keep the exact spec dict (and
        therefore the exact content-hash :attr:`scenario_id`) they had
        before each axis existed, so persisted campaign results stay
        resumable.
        """
        spec: Dict[str, Any] = {
            "attack": self.attack,
            "mitigation": self.mitigation,
            "workload": self.workload,
            "dram": self.dram,
            "nbo": self.nbo,
            "prac_level": self.prac_level,
            "params": dict(self.params),
        }
        # Default omission delegates to SystemConfig.to_dict so the
        # structural defaults live in exactly one place (repro.config).
        spec.update(self.system_config().to_dict())
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; rejects unknown keys, validates."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(f"unknown scenario keys: {unknown}; have {sorted(known)}")
        if "attack" not in spec:
            raise ValueError("scenario spec needs at least an 'attack' key")
        kwargs = dict(spec)
        kwargs["params"] = dict(kwargs.get("params") or {})
        return cls(**kwargs).validate()

    @property
    def scenario_id(self) -> str:
        """Stable content hash of the spec (results/cache identity)."""
        return content_key(self.to_dict())[:12]

    @property
    def label(self) -> str:
        """Human-readable one-line identity for tables and logs."""
        parts = [self.attack, self.mitigation]
        if self.workload != NO_WORKLOAD:
            parts.append(self.workload)
        parts.append(f"nbo{self.nbo}")
        if self.prac_level != 1:
            parts.append(f"lvl{self.prac_level}")
        if self.channels != 1:
            parts.append(f"{self.channels}ch")
        if self.scheduler != DEFAULT_SCHEDULER:
            parts.append(self.scheduler)
        if self.mapping != DEFAULT_MAPPING:
            parts.append(self.mapping)
        if self.refresh != DEFAULT_REFRESH:
            parts.append(self.refresh)
        if self.cache != DEFAULT_CACHE:
            parts.append(self.cache)
        if self.interconnect != DEFAULT_INTERCONNECT:
            parts.append(self.interconnect)
        if self.engine != DEFAULT_ENGINE:
            parts.append(self.engine)
        if self.sanitize:
            parts.append("sanitize")
        if self.trace:
            parts.append("trace")
        if self.metrics:
            parts.append("metrics")
        if self.dram != "ddr5_8000b":
            parts.append(self.dram)
        return "/".join(parts)

    def with_params(self, **extra: Any) -> "Scenario":
        """Copy with additional/overridden ``params`` entries."""
        merged = dict(self.params)
        merged.update(extra)
        return replace(self, params=merged)
