"""Built-in campaign grids.

* ``security`` — the paper's security scorecard expressed as one grid:
  both PRACLeak covert channels and the AES side channel, each against
  the insecure baseline (ABO-Only) and the paper's defense (TPRAC),
  across two Back-Off thresholds.  Twelve scenarios; the expected
  picture is error-free/high-success attacks on ``abo_only`` and
  degraded/blocked attacks on ``tprac``.
* ``perf`` — mitigation overhead: every registry mitigation over a
  small intensity-spanning workload set.
* ``smoke`` — a selftest grid (12 scenarios, microseconds per trial)
  used by CI and ``scripts/verify.sh`` to exercise the engine itself:
  pool fan-out, aggregation, persistence, resume.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.campaigns.grid import expand_grid
from repro.campaigns.scenario import Scenario


def security_axes() -> Dict[str, Sequence[Any]]:
    """The security-scorecard grid: 3 attacks x 2 mitigations x 2 N_BO."""
    return {
        "attack": ["covert_activity", "covert_count", "aes_side_channel"],
        "mitigation": ["abo_only", "tprac"],
        "nbo": [128, 256],
        # Per-attack tuning: small symbol/encryption budgets keep a
        # quick grid quick; the *_count channel reads only ``symbols``,
        # the AES attack only ``encryptions``.
        "symbols": [6],
        "encryptions": [150],
    }


def perf_axes() -> Dict[str, Sequence[Any]]:
    """Mitigation overhead across the registry on a spanning workload set."""
    return {
        "attack": ["perf"],
        "mitigation": ["abo_only", "abo_acb", "qprac", "tprac"],
        "workload": ["433.milc", "401.bzip2", "453.povray"],
        "nbo": [1024],
        "requests_per_core": [600],
    }


def smoke_axes() -> Dict[str, Sequence[Any]]:
    """A fast engine-exercising grid: 12 scenarios, trivial trials."""
    return {
        "attack": ["selftest"],
        "mitigation": ["abo_only", "tprac", "qprac", "rfmpb"],
        "nbo": [64, 128, 256],
    }


BUILTIN_CAMPAIGNS = {
    "security": security_axes,
    "perf": perf_axes,
    "smoke": smoke_axes,
}


def builtin_names() -> List[str]:
    """Sorted names of the built-in campaigns."""
    return sorted(BUILTIN_CAMPAIGNS)


def builtin_scenarios(name: str) -> List[Scenario]:
    """Expand a built-in campaign grid by name."""
    try:
        axes = BUILTIN_CAMPAIGNS[name]()
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r}; have {builtin_names()}"
        ) from None
    return expand_grid(axes)
