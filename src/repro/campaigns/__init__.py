"""Scenario campaign engine: declarative attack×defense sweeps.

The paper's claims are statistical — leakage, covert capacity,
mitigation overhead all depend on victim × attacker × mitigation ×
workload × device combinations.  This package turns those combinations
into first-class data:

* :mod:`~repro.campaigns.scenario` — the declarative :class:`Scenario`
  spec with dict/JSON round-trip and stable content-hash IDs;
* :mod:`~repro.campaigns.grid` — axis lists -> concrete scenarios
  (:func:`expand_grid`, :func:`parse_grid_tokens`);
* :mod:`~repro.campaigns.runners` — per-attack-kind trial
  implementations (:func:`run_trial`);
* :mod:`~repro.campaigns.trials` — the batched Monte Carlo engine
  (:func:`run_campaign`): process-pool fan-out, per-trial fault
  isolation, streaming Welford/bootstrap aggregation, resumable
  atomically-flushed results;
* :mod:`~repro.campaigns.builtin` — named grids (``security``,
  ``perf``, ``smoke``) including the paper's security scorecard.

CLI front-end: ``python -m repro.cli campaign --grid
attack=aes_side_channel mitigation=abo_only,tprac nbo=128,256
--trials 5 --jobs 8``.
"""

from repro.campaigns.builtin import (
    BUILTIN_CAMPAIGNS,
    builtin_names,
    builtin_scenarios,
)
from repro.campaigns.grid import expand_grid, parse_grid_tokens
from repro.campaigns.runners import run_trial
from repro.campaigns.scenario import ATTACK_KINDS, Scenario
from repro.campaigns.trials import (
    CampaignResult,
    load_campaign_index,
    load_scenario_result,
    run_campaign,
)

__all__ = [
    "ATTACK_KINDS",
    "BUILTIN_CAMPAIGNS",
    "CampaignResult",
    "Scenario",
    "builtin_names",
    "builtin_scenarios",
    "expand_grid",
    "load_campaign_index",
    "load_scenario_result",
    "parse_grid_tokens",
    "run_campaign",
    "run_trial",
]
