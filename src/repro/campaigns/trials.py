"""The Monte Carlo campaign engine: batched seeded trials per scenario.

``run_campaign`` executes N seeded trials for every scenario of a grid
on the shared process-pool executor (:mod:`repro.core.executor`) with
per-trial fault isolation: a crashing trial becomes a structured error
entry inside its scenario's result, and every other trial — including
the rest of that same scenario — still completes.

Results are **streamed** and **resumable**:

* each scenario owns one ``scenario-<id>.json`` document, atomically
  rewritten as its trials land (:func:`repro.analysis.storage.
  atomic_write_json`), carrying the spec, per-trial records, and
  streaming aggregates (Welford mean/variance + bootstrap CIs from
  :mod:`repro.analysis.stats_utils`);
* a ``campaign.json`` index (:class:`~repro.analysis.storage.
  SummaryIndex`) is flushed after every scenario completion;
* a re-run with ``resume=True`` skips any scenario whose persisted
  document matches its content-hash cache key (same spec, base seed,
  package version) and already covers the requested trial count.

Trial ``t`` of every scenario runs with seed ``base_seed + t``, so
scenarios are seed-paired (differences between grid points are not
noise-confounded) and any trial can be reproduced standalone via
:func:`repro.campaigns.runners.run_trial`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro import __version__
from repro.analysis.stats_utils import Welford, bootstrap_ci
from repro.analysis.storage import (
    CorruptResultError,
    PathLike,
    SummaryIndex,
    atomic_write_json,
    attach_checksum,
    content_key,
    load_checked_json,
    quarantine_corrupt,
)
from repro.core.executor import RetryPolicy, error_entry, supervise_tasks
from repro.campaigns import runners
from repro.campaigns.runners import run_trial
from repro.campaigns.scenario import Scenario
from repro.obs.heartbeat import HEARTBEAT_FILENAME, HeartbeatWriter
from repro.obs.log import get_logger

INDEX_FILENAME = "campaign.json"

#: campaign subdirectory receiving per-trial telemetry exports
OBS_SUBDIR = "obs"

#: ``run_campaign(on_event=...)`` subscriber signature: the renderer
#: (or any watcher) receives the heartbeat's (event, fields) pairs.
EventHook = Callable[[str, Dict[str, Any]], None]


class CampaignIndex(SummaryIndex):
    """The campaign directory's index; same machinery, its own file so a
    campaign and an artifact suite can share one results directory."""

    FILENAME = INDEX_FILENAME


# ----------------------------------------------------------------------
# Worker (crosses the process-pool boundary; module-level & picklable)
# ----------------------------------------------------------------------
def _execute_trial(
    spec: Dict[str, Any], seed: int, obs_dir: Optional[str] = None
) -> Dict[str, Any]:
    """Pool entry point: one seeded trial, exceptions folded to payloads.

    ``obs_dir`` (set only for scenarios with telemetry axes on) points
    the trial kinds' telemetry export at the campaign's ``obs/``
    subdirectory; it is plumbed through a module global because the
    trial functions' signature — ``(scenario, seed) -> metrics`` — is
    the reproducibility contract and telemetry must stay out of it.
    """
    started = time.perf_counter()
    runners.telemetry_dir = obs_dir
    try:
        metrics = run_trial(Scenario.from_dict(spec), seed)
        return {
            "status": "ok",
            "seed": seed,
            # advisory wall-clock, never part of result identity
            "elapsed_seconds": round(time.perf_counter() - started, 3),  # repro-lint: allow(float-format-drift)
            "metrics": {k: float(v) for k, v in metrics.items()},
        }
    except Exception as exc:  # isolation boundary; Ctrl-C still propagates
        return {"status": "error", "seed": seed, "error": error_entry(exc)}
    finally:
        runners.telemetry_dir = None


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def aggregate_metrics(
    trials: Iterable[Dict[str, Any]], ci_seed: int = 0
) -> Dict[str, Dict[str, Any]]:
    """Per-metric streaming summary over the ok trials.

    Returns ``metric -> {n, mean, stdev, ci95, bootstrap_ci95}`` where
    ``ci95`` is the t-interval from the Welford accumulator and
    ``bootstrap_ci95`` the seeded percentile bootstrap.
    """
    accumulators: Dict[str, Welford] = {}
    series: Dict[str, List[float]] = {}
    for trial in trials:
        if trial.get("status") != "ok":
            continue
        for name, value in trial.get("metrics", {}).items():
            accumulators.setdefault(name, Welford()).push(value)
            series.setdefault(name, []).append(value)
    out: Dict[str, Dict[str, Any]] = {}
    for name, acc in sorted(accumulators.items()):
        summary = acc.summary()
        out[name] = {
            "n": acc.n,
            "mean": acc.mean,
            "stdev": acc.stdev,
            "ci95": list(summary.ci95),
            "bootstrap_ci95": list(bootstrap_ci(series[name], seed=ci_seed)),
        }
    return out


# ----------------------------------------------------------------------
# Campaign state
# ----------------------------------------------------------------------
@dataclass
class ScenarioRun:
    """Accumulating state + persistence for one scenario's trials."""

    scenario: Scenario
    path: Path
    cache_key: str
    base_seed: int
    trials_requested: int
    trials: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def ok_count(self) -> int:
        return sum(1 for t in self.trials.values() if t["status"] == "ok")

    @property
    def error_count(self) -> int:
        return sum(1 for t in self.trials.values() if t["status"] == "error")

    @property
    def quarantined_count(self) -> int:
        return sum(
            1 for t in self.trials.values() if t["status"] == "quarantined"
        )

    @property
    def complete(self) -> bool:
        return len(self.trials) >= self.trials_requested

    @property
    def status(self) -> str:
        """ok / partial / error once complete (all, some, no trials ok)."""
        if self.error_count == 0 and self.quarantined_count == 0:
            return "ok"
        return "partial" if self.ok_count else "error"

    def payload(self) -> Dict[str, Any]:
        """The scenario's persistable result document (JSON-able)."""
        scenario = self.scenario
        doc: Dict[str, Any] = {
            "scenario_id": scenario.scenario_id,
            "label": scenario.label,
            "status": self.status,
            "spec": scenario.to_dict(),
            "base_seed": self.base_seed,
            "trials_requested": self.trials_requested,
            "trials_completed": len(self.trials),
            "trials_ok": self.ok_count,
            "trials_error": self.error_count,
            # Aggregate in trial order, not completion order, so pooled
            # and inline runs produce bit-identical statistics.
            "trials": [self.trials[t] for t in sorted(self.trials)],
            "metrics": aggregate_metrics(
                (self.trials[t] for t in sorted(self.trials)),
                ci_seed=self.base_seed,
            ),
        }
        if self.quarantined_count:
            doc["trials_quarantined"] = self.quarantined_count
        if self.complete:
            doc["cache_key"] = self.cache_key
        return doc

    def flush(self) -> None:
        """Atomically rewrite the scenario document with current state.

        The persisted document carries a content-checksum footer so a
        resume can tell post-write damage from a genuine result."""
        atomic_write_json(self.path, attach_checksum(self.payload()))


@dataclass
class CampaignResult:
    """What ``run_campaign`` hands back to callers (CLI, tests)."""

    output_dir: Path
    statuses: Dict[str, str]            # scenario_id -> ok/partial/error/cached
    labels: Dict[str, str]              # scenario_id -> label
    paths: Dict[str, Path]              # scenario_id -> result document
    trials_requested: int

    @property
    def scenarios_ok(self) -> int:
        return sum(1 for s in self.statuses.values() if s in ("ok", "cached"))

    @property
    def had_errors(self) -> bool:
        return any(s in ("partial", "error") for s in self.statuses.values())


# ----------------------------------------------------------------------
def _scenario_cache_key(scenario: Scenario, base_seed: int) -> str:
    return content_key(
        {
            "scenario": scenario.to_dict(),
            "base_seed": base_seed,
            "version": __version__,
        }
    )


def _resumable(path: Path, key: str, trials: int) -> bool:
    """Whether a persisted scenario document satisfies this request.

    Raises :class:`~repro.analysis.storage.CorruptResultError` for an
    unparseable or checksum-mismatched document — the caller
    quarantines the file and re-runs the scenario rather than trusting
    (or silently overwriting) damaged results.
    """
    if not path.exists():
        return False
    doc = load_checked_json(path)
    return (
        isinstance(doc, dict)
        and doc.get("cache_key") == key
        and doc.get("status") == "ok"
        and doc.get("trials_completed", 0) >= trials
    )


#: supervisor event -> campaign heartbeat event (trial-level naming)
_SUPERVISE_EVENTS = {
    "task.retry": "trial.retry",
    "task.timeout": "trial.timeout",
    "task.quarantined": "trial.quarantined",
    "pool.rebuild": "pool.rebuild",
}


def run_campaign(
    scenarios: Sequence[Scenario],
    output_dir: PathLike,
    *,
    trials: int = 3,
    jobs: Optional[int] = None,
    seed: int = 0,
    resume: bool = False,
    retries: int = 2,
    timeout: Optional[float] = None,
    on_event: Optional[EventHook] = None,
    heartbeat: bool = True,
) -> CampaignResult:
    """Run ``trials`` seeded Monte Carlo trials for every scenario.

    Parameters
    ----------
    scenarios:
        Concrete scenario instances (usually from
        :func:`repro.campaigns.grid.expand_grid`).  Duplicate IDs raise.
    output_dir:
        Results directory: one ``scenario-<id>.json`` per scenario plus
        the ``campaign.json`` index.
    trials / seed:
        Trial ``t`` runs with seed ``seed + t`` in every scenario.
    jobs:
        Pool width (default ``os.cpu_count()``); ``jobs=1`` runs inline.
    resume:
        Skip scenarios whose persisted document matches the cache key
        and trial count; they are reported as ``"cached"``.  Documents
        that fail validation (truncation, bad JSON, checksum mismatch)
        are moved to ``*.corrupt`` sidecars and their scenarios re-run.
    retries / timeout:
        Resilience knobs forwarded to the supervising executor
        (:class:`~repro.core.executor.RetryPolicy`): transient-failure
        retry budget per trial, and the per-attempt wall-clock deadline
        in seconds (pool mode only).
    on_event:
        Optional subscriber called with every lifecycle event the
        heartbeat records — ``(event, fields)`` pairs in completion
        order (the ``--progress`` renderer plugs in here).
    heartbeat:
        Append lifecycle events to ``heartbeat.jsonl`` in the campaign
        directory (append-only across attempts; see
        :mod:`repro.obs.heartbeat`).

    A ``KeyboardInterrupt`` mid-run aborts cleanly: the pool is torn
    down, an ``campaign.interrupted`` event is recorded, the index is
    flushed with everything that completed, and the interrupt
    re-raised (per-trial flushes mean every landed trial is already on
    disk).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    out_root = Path(output_dir)
    out_root.mkdir(parents=True, exist_ok=True)
    # Merge with any existing index so a subset/resumed run never erases
    # the record of previously completed scenarios.
    index = CampaignIndex.load(out_root)
    log = get_logger()

    hb_writer = (
        HeartbeatWriter(out_root / HEARTBEAT_FILENAME) if heartbeat else None
    )

    def emit(event: str, **fields: Any) -> None:
        if hb_writer is not None:
            hb_writer.emit(event, **fields)
        if on_event is not None:
            on_event(event, fields)

    runs: Dict[str, ScenarioRun] = {}
    statuses: Dict[str, str] = {}
    labels: Dict[str, str] = {}
    paths: Dict[str, Path] = {}
    try:
        emit(
            "campaign.start",
            scenarios=len(scenarios),
            trials=trials,
            resumed=bool(resume),
        )
        for scenario in scenarios:
            sid = scenario.scenario_id
            if sid in runs or sid in statuses:
                raise ValueError(f"duplicate scenario id {sid} ({scenario.label})")
            labels[sid] = scenario.label
            path = out_root / f"scenario-{sid}.json"
            paths[sid] = path
            key = _scenario_cache_key(scenario, seed)
            cached = False
            if resume:
                try:
                    cached = _resumable(path, key, trials)
                except CorruptResultError as exc:
                    sidecar = quarantine_corrupt(path)
                    emit(
                        "scenario.corrupt",
                        scenario_id=sid,
                        label=scenario.label,
                        reason=exc.reason,
                        sidecar=sidecar.name,
                    )
                    log.warning(
                        "campaign.corrupt_result",
                        scenario=scenario.label,
                        reason=exc.reason,
                        sidecar=sidecar.name,
                    )
            if cached:
                statuses[sid] = "cached"
                emit(
                    "scenario.cached",
                    scenario_id=sid,
                    label=scenario.label,
                    trials=trials,
                )
                index.record(
                    {
                        "experiment": sid,
                        "label": scenario.label,
                        "status": "cached",
                        "file": path.name,
                    },
                    flush=False,
                )
                continue
            runs[sid] = ScenarioRun(
                scenario=scenario,
                path=path,
                cache_key=key,
                base_seed=seed,
                trials_requested=trials,
            )
        index.flush()

        # Per-trial telemetry lands under obs/ for scenarios that carry
        # the trace/metrics axes; created up front so pool workers only
        # ever write into an existing directory.
        obs_dir: Optional[str] = None
        if any(r.scenario.trace or r.scenario.metrics for r in runs.values()):
            obs_path = out_root / OBS_SUBDIR
            obs_path.mkdir(parents=True, exist_ok=True)
            obs_dir = str(obs_path)

        for sid, run in runs.items():
            emit("scenario.start", scenario_id=sid, label=run.scenario.label)

        tasks = [
            (
                (sid, t),
                (
                    run.scenario.to_dict(),
                    seed + t,
                    obs_dir
                    if (run.scenario.trace or run.scenario.metrics)
                    else None,
                ),
            )
            for sid, run in runs.items()
            for t in range(trials)
        ]
        policy = RetryPolicy(retries=retries, timeout=timeout, seed=seed)

        def forward(event: str, fields: Dict[str, Any]) -> None:
            """Translate supervisor events into trial-level heartbeat ones."""
            fields = dict(fields)
            fields.pop("task", None)  # redundant with scenario_id/trial
            key = fields.pop("key", None)
            if isinstance(key, tuple) and len(key) == 2:
                fields["scenario_id"] = key[0]
                fields["trial"] = key[1]
            emit(_SUPERVISE_EVENTS.get(event, event), **fields)

        for (sid, t), payload in supervise_tasks(
            _execute_trial, tasks, jobs=jobs, policy=policy, on_event=forward
        ):
            run = runs[sid]
            payload.setdefault("seed", seed + t)
            run.trials[t] = payload
            run.flush()  # atomic: a kill mid-campaign leaves consistent docs
            emit(
                "trial.finish",
                scenario_id=sid,
                label=run.scenario.label,
                trial=t,
                seed=payload.get("seed", seed + t),
                status=payload.get("status", "?"),
            )
            log.debug(
                "campaign.trial",
                scenario=run.scenario.label,
                trial=t,
                status=payload.get("status", "?"),
                elapsed=payload.get("elapsed_seconds", 0.0),
            )
            if payload.get("status") in ("error", "quarantined"):
                error = payload.get("error", {})
                emit(
                    "trial.fault",
                    scenario_id=sid,
                    seed=payload.get("seed", seed + t),
                    error_type=error.get("type", "?"),
                    error=error.get("message", ""),
                )
            if run.complete:
                statuses[sid] = run.status
                emit(
                    "scenario.finish",
                    scenario_id=sid,
                    label=run.scenario.label,
                    status=run.status,
                )
                log.info(
                    "campaign.scenario",
                    scenario=run.scenario.label,
                    status=run.status,
                    trials_ok=run.ok_count,
                    trials_error=run.error_count,
                )
                entry: Dict[str, Any] = {
                    "experiment": sid,
                    "label": run.scenario.label,
                    "status": run.status,
                    "file": run.path.name,
                    "trials_ok": run.ok_count,
                    "trials_error": run.error_count,
                }
                if run.quarantined_count:
                    entry["trials_quarantined"] = run.quarantined_count
                if run.error_count or run.quarantined_count:
                    first_error = next(
                        run.trials[t].get("error", {})
                        for t in sorted(run.trials)
                        if run.trials[t]["status"] in ("error", "quarantined")
                    )
                    entry["error"] = {
                        "type": first_error.get("type", "?"),
                        "message": first_error.get("message", ""),
                    }
                index.record(entry)

        emit(
            "campaign.finish",
            scenarios=len(scenarios),
            cached=sum(1 for s in statuses.values() if s == "cached"),
            errors=sum(
                1 for s in statuses.values() if s in ("partial", "error")
            ),
        )
    except KeyboardInterrupt:
        # The supervisor's generator already tore the pool down on the
        # way out; every landed trial is flushed.  Record the abort and
        # persist the index of what completed before re-raising.
        emit(
            "campaign.interrupted",
            completed=len(statuses),
            total=len(scenarios),
        )
        index.flush()
        raise
    finally:
        if hb_writer is not None:
            hb_writer.close()

    return CampaignResult(
        output_dir=out_root,
        statuses=statuses,
        labels=labels,
        paths=paths,
        trials_requested=trials,
    )


def load_scenario_result(path: PathLike) -> Dict[str, Any]:
    """Read one persisted scenario document back."""
    return json.loads(Path(path).read_text())


def load_campaign_index(output_dir: PathLike) -> List[Dict[str, Any]]:
    """Read a campaign directory's ``campaign.json`` index."""
    return json.loads((Path(output_dir) / INDEX_FILENAME).read_text())
