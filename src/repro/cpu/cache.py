"""Set-associative cache model with LRU replacement and flush support.

Used by the AES side-channel experiments (the attacker flushes T-table
lines so the victim's lookups hit DRAM, as with ``clflush`` in the
paper) and available to the workload path.  The model tracks tags and
dirty bits only — data values never matter for timing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One cache level: ``size_bytes`` / ``ways`` / ``line_bytes``.

    ``access`` returns ``(hit, writeback_addr)``; a non-None writeback
    address means a dirty line was evicted and must be written to the
    next level (ultimately DRAM).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        latency_ns: float = 1.0,
    ) -> None:
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError(f"{name}: size must be divisible by ways*line")
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        self.latency_ns = latency_ns
        self.stats = CacheStats()
        # sets[i] maps tag -> dirty, in LRU order (first = LRU victim).
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    # ------------------------------------------------------------------
    def _locate(self, phys_addr: int) -> Tuple[int, int]:
        line = phys_addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, phys_addr: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Look up the line; fill on miss.  Returns (hit, writeback)."""
        set_index, tag = self._locate(phys_addr)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            self.stats.hits += 1
            dirty = cache_set.pop(tag) or is_write
            cache_set[tag] = dirty        # move to MRU
            return True, None
        self.stats.misses += 1
        writeback = None
        if len(cache_set) >= self.ways:
            victim_tag, victim_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                victim_line = victim_tag * self.num_sets + set_index
                writeback = victim_line * self.line_bytes
        cache_set[tag] = is_write
        return False, writeback

    def contains(self, phys_addr: int) -> bool:
        """Whether the line holding ``phys_addr`` is resident."""
        set_index, tag = self._locate(phys_addr)
        return tag in self._sets[set_index]

    def flush(self, phys_addr: int) -> bool:
        """clflush: evict the line if present; returns whether it was."""
        set_index, tag = self._locate(phys_addr)
        present = self._sets[set_index].pop(tag, None)
        self.stats.flushes += 1
        return present is not None

    def install_dirty(self, phys_addr: int) -> Optional[int]:
        """Install a written-back line from the level above, dirty.

        Not a demand access: hit/miss counters are untouched.  If the
        install displaces a dirty line, its address is returned so the
        caller can spill it one level further down.
        """
        set_index, tag = self._locate(phys_addr)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            cache_set.pop(tag)
            cache_set[tag] = True         # move to MRU, now dirty
            return None
        writeback = None
        if len(cache_set) >= self.ways:
            victim_tag, victim_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                victim_line = victim_tag * self.num_sets + set_index
                writeback = victim_line * self.line_bytes
        cache_set[tag] = True
        return writeback

    def invalidate_all(self) -> None:
        """Drop every line (power-on state)."""
        for cache_set in self._sets:
            cache_set.clear()


class CacheHierarchy:
    """Private L1/L2 plus a shared LLC reference (paper's Table 3 shape).

    ``access`` walks L1 -> L2 -> LLC and reports whether DRAM is needed
    plus the accumulated lookup latency and any dirty writeback that
    must go to memory.
    """

    def __init__(
        self,
        l1: Optional[Cache] = None,
        l2: Optional[Cache] = None,
        llc: Optional[Cache] = None,
    ) -> None:
        self.l1 = l1 or Cache("L1D", 48 * 1024, 12, latency_ns=1.25)
        self.l2 = l2 or Cache("L2", 512 * 1024, 8, latency_ns=2.5)
        self.llc = llc or Cache("LLC", 8 * 1024 * 1024, 16, latency_ns=5.0)
        self.levels = [self.l1, self.l2, self.llc]

    def access(self, phys_addr: int, is_write: bool = False):
        """Returns (needs_dram, latency_ns, writebacks).

        ``writebacks`` lists the physical addresses of dirty lines that
        fell out of the hierarchy entirely and must be written to DRAM.
        Dirty victims evicted from an inner level are installed in the
        next level down (write-back), which may displace further dirty
        lines — historically they were silently dropped unless they
        came from the last level.
        """
        latency = 0.0
        writebacks: List[int] = []
        for index, level in enumerate(self.levels):
            latency += level.latency_ns
            hit, wb = level.access(phys_addr, is_write)
            if wb is not None:
                writebacks.extend(self._spill(index + 1, wb))
            if hit:
                return False, latency, writebacks
        return True, latency, writebacks

    def _spill(self, level_index: int, victim_addr: int) -> List[int]:
        """Chase one dirty victim down from ``levels[level_index]``.

        Installs it in each level in turn; stops when an install sticks
        without displacing another dirty line.  Returns the addresses
        (at most one) that fell past the last level and belong to DRAM.
        """
        addr = victim_addr
        for level in self.levels[level_index:]:
            displaced = level.install_dirty(addr)
            if displaced is None:
                return []
            addr = displaced
        return [addr]

    def flush(self, phys_addr: int) -> None:
        """Flush a line from every level (models clflush)."""
        for level in self.levels:
            level.flush(phys_addr)
