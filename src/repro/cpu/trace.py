"""Memory trace records and helpers.

A trace is a sequence of :class:`TraceRecord`; each record says "the
core executes ``gap_insts`` non-memory instructions, then performs one
memory access at ``phys_addr``".  This is the same shape as the
Ramulator2 trace format the paper's artifact uses, and is produced both
by the synthetic workload generators and by the AES victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: ``gap_insts`` compute instructions, then a load/store."""

    gap_insts: int
    phys_addr: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.gap_insts < 0:
            raise ValueError("gap_insts must be non-negative")
        if self.phys_addr < 0:
            raise ValueError("phys_addr must be non-negative")


def synthesize_trace(
    addresses: Iterable[int],
    gap_insts: int = 0,
    write_every: Optional[int] = None,
) -> List[TraceRecord]:
    """Build a trace from a plain address stream.

    ``write_every=k`` marks every k-th access as a store; ``None``
    produces a read-only trace.
    """
    records = []
    for index, addr in enumerate(addresses):
        is_write = write_every is not None and (index + 1) % write_every == 0
        records.append(TraceRecord(gap_insts=gap_insts, phys_addr=addr, is_write=is_write))
    return records


class TraceCursor:
    """Replayable cursor over a trace, with optional looping."""

    def __init__(self, records: List[TraceRecord], loop: bool = False) -> None:
        self.records = records
        self.loop = loop
        self.position = 0
        self.laps = 0

    def __len__(self) -> int:
        return len(self.records)

    def next(self) -> Optional[TraceRecord]:
        """Return the next record, or None when exhausted."""
        if self.position >= len(self.records):
            if not self.loop or not self.records:
                return None
            self.position = 0
            self.laps += 1
        record = self.records[self.position]
        self.position += 1
        return record

    @property
    def exhausted(self) -> bool:
        return not self.loop and self.position >= len(self.records)


def total_instructions(records: List[TraceRecord]) -> int:
    """Instruction count a trace represents (gaps + 1 per memory op)."""
    return sum(r.gap_insts + 1 for r in records)
