"""Trace file I/O in a Ramulator-style text format.

One record per line::

    <gap_insts> <hex_phys_addr> [R|W]

Lines starting with ``#`` are comments.  The format lets generated
workload traces be saved, inspected and replayed (the artifact the
paper ships does the same with its Zenodo trace archive).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from repro.cpu.trace import TraceRecord

PathLike = Union[str, Path]


def _write_records(handle: TextIO, records: Iterable[TraceRecord]) -> int:
    handle.write("# repro trace v1: gap_insts phys_addr_hex R|W\n")
    count = 0
    for record in records:
        kind = "W" if record.is_write else "R"
        handle.write(f"{record.gap_insts} 0x{record.phys_addr:x} {kind}\n")
        count += 1
    return count


def dump_trace(records: Iterable[TraceRecord], destination: Union[PathLike, TextIO]) -> int:
    """Write records to a path or file object; returns the line count."""
    if not hasattr(destination, "write"):
        with open(destination, "w") as handle:
            return _write_records(handle, records)
    return _write_records(destination, records)


def _read_records(handle: TextIO) -> List[TraceRecord]:
    records: List[TraceRecord] = []
    for line_number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise ValueError(
                f"line {line_number}: expected 'gap addr [R|W]', got {line!r}"
            )
        gap = int(parts[0])
        addr = int(parts[1], 16) if parts[1].startswith("0x") else int(parts[1])
        is_write = len(parts) == 3 and parts[2].upper() == "W"
        if len(parts) == 3 and parts[2].upper() not in ("R", "W"):
            raise ValueError(
                f"line {line_number}: access kind must be R or W, got {parts[2]!r}"
            )
        records.append(
            TraceRecord(gap_insts=gap, phys_addr=addr, is_write=is_write)
        )
    return records


def load_trace(source: Union[PathLike, TextIO]) -> List[TraceRecord]:
    """Read records from a path or file object."""
    if not hasattr(source, "read"):
        with open(source) as handle:
            return _read_records(handle)
    return _read_records(source)


def roundtrip(records: List[TraceRecord]) -> List[TraceRecord]:
    """dump + load through memory (test/diagnostic helper)."""
    buffer = io.StringIO()
    dump_trace(records, buffer)
    buffer.seek(0)
    return load_trace(buffer)
