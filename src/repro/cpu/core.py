"""Trace-driven core with a ROB-window memory-level-parallelism model.

The core replays a trace of (compute gap, memory access) records.
Non-memory instructions retire at the pipeline's peak width; memory
accesses that miss the caches become DRAM requests.  The core may run
ahead of its *oldest* outstanding DRAM request by at most ``rob_size``
instructions — the same constraint a 352-entry reorder buffer imposes —
so memory-intensive traces naturally exhibit limited MLP and are slowed
by RFM-induced channel blocking exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Callable, Deque, Optional, TYPE_CHECKING

from repro.controller.request import MemRequest
from repro.cpu.cache import CacheHierarchy
from repro.cpu.trace import TraceCursor

if TYPE_CHECKING:  # pragma: no cover
    from typing import Protocol

    from repro.core.engine import Engine

    class MemoryTarget(Protocol):
        """Anything that accepts memory requests (controller or facade)."""

        def enqueue(self, request: MemRequest) -> None: ...


@dataclass(frozen=True)
class CoreParams:
    """Pipeline parameters (paper Table 3: 4 GHz, 6-issue, 352 ROB)."""

    freq_ghz: float = 4.0
    width: int = 4           # sustained retire width for the gap insts
    rob_size: int = 352
    max_outstanding: int = 64  # MSHRs toward DRAM

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


class TraceCore:
    """One core replaying a trace through optional caches to DRAM."""

    def __init__(
        self,
        engine: "Engine",
        memory: "MemoryTarget",
        cursor: TraceCursor,
        core_id: int,
        params: Optional[CoreParams] = None,
        caches: Optional[CacheHierarchy] = None,
        max_requests: Optional[int] = None,
    ) -> None:
        self.engine = engine
        #: request sink: a bare :class:`MemoryController` or the
        #: multi-channel :class:`~repro.controller.memory_system.MemorySystem`
        #: facade — the core only calls ``enqueue`` and lets the memory
        #: side route by physical address.
        self.memory = memory
        self.cursor = cursor
        self.core_id = core_id
        self.params = params or CoreParams()
        self.caches = caches
        self.max_requests = max_requests

        self.insts_retired = 0
        self.dram_requests = 0
        self.finished = False
        self.finish_time: Optional[float] = None
        #: optional hook fired once when the core finishes its trace
        self.on_finish: Optional[Callable[["TraceCore"], None]] = None
        #: inst numbers of outstanding DRAM requests, oldest first
        self._outstanding: Deque[int] = deque()
        self._stalled = False
        self._started = False
        # Hot-path caches: plain attribute loads instead of dataclass
        # attribute chains / properties inside _advance (identical values,
        # so timing results are bit-for-bit unchanged).
        params = self.params
        self._cycle_ns = params.cycle_ns
        self._width = params.width
        self._rob_size = params.rob_size
        self._max_outstanding = params.max_outstanding
        self._mem_label = f"core{core_id}-mem"
        self._budget = float("inf") if max_requests is None else max_requests

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin issuing; idempotent."""
        if self._started:
            return
        self._started = True
        self.engine.schedule(self.engine.now, self._advance, label=f"core{self.core_id}")

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the core's active lifetime."""
        end = self.finish_time if self.finish_time is not None else self.engine.now
        if end <= 0:
            return 0.0
        cycles = end / self.params.cycle_ns
        return self.insts_retired / cycles if cycles > 0 else 0.0

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Consume trace records until blocked or done."""
        if self.finished:
            return
        if self.dram_requests >= self._budget:
            record = None
        else:
            # Inline TraceCursor.next's common case (in-range, no loop).
            cursor = self.cursor
            records = cursor.records
            position = cursor.position
            if position < len(records):
                record = records[position]
                cursor.position = position + 1
            else:
                record = cursor.next()  # exhausted or looping trace
        if record is None:
            if not self._outstanding:
                self._finish()
            else:
                self._stalled = True  # drain remaining misses, then finish
            return

        # ROB window check: cannot run past the oldest miss + rob_size.
        outstanding = self._outstanding
        if outstanding:
            oldest = outstanding[0]
            if (
                self.insts_retired + record.gap_insts + 1 - oldest
                > self._rob_size
                or len(outstanding) >= self._max_outstanding
            ):
                self._stalled = True
                self.cursor.position = max(0, self.cursor.position - 1)
                return

        compute_ns = (record.gap_insts / self._width) * self._cycle_ns
        self.insts_retired += record.gap_insts + 1
        extra_ns = 0.0
        needs_dram = True
        is_write = record.is_write
        if self.caches is not None:
            needs_dram, lookup_ns, writebacks = self.caches.access(
                record.phys_addr, is_write
            )
            extra_ns += lookup_ns
            for writeback in writebacks:
                self._issue_dram(writeback, is_write=True, count_outstanding=False)
        engine = self.engine
        if needs_dram:
            engine.schedule(
                engine.now + compute_ns + extra_ns,
                partial(self._issue_dram, record.phys_addr, record.is_write),
                0,
                self._mem_label,
            )
        else:
            engine.schedule(engine.now + compute_ns + extra_ns, self._advance)

    def _issue_dram(
        self, phys_addr: int, is_write: bool, count_outstanding: bool = True
    ) -> None:
        self.dram_requests += 1
        inst_mark = self.insts_retired
        if count_outstanding:
            self._outstanding.append(inst_mark)
        request = MemRequest(
            phys_addr=phys_addr,
            is_write=is_write,
            core_id=self.core_id,
            on_complete=(
                (lambda req, mark=inst_mark: self._dram_done(mark))
                if count_outstanding
                else None
            ),
        )
        self.memory.enqueue(request)
        if count_outstanding:
            # Keep fetching ahead of the miss (the ROB check gates this).
            self.engine.schedule(self.engine.now, self._advance)

    def _dram_done(self, inst_mark: int) -> None:
        outstanding = self._outstanding
        try:
            if outstanding and outstanding[0] == inst_mark:
                outstanding.popleft()  # completions are mostly in order
            else:
                outstanding.remove(inst_mark)
        except ValueError:  # pragma: no cover - defensive
            pass
        if self._stalled:
            self._stalled = False
            self.engine.schedule(self.engine.now, self._advance)

    def _finish(self) -> None:
        if not self.finished:
            self.finished = True
            self.finish_time = self.engine.now
            if self.on_finish is not None:
                self.on_finish(self)
