"""Multicore system wiring: cores + caches + one memory controller.

This is the reproduction's ChampSim stand-in.  A :class:`System` builds
N trace-driven cores sharing one DDR5 channel, runs them to completion
(or a request budget) and reports per-core IPCs, from which the
experiments derive weighted speedup and normalized performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.controller.controller import MemoryController
from repro.core.engine import Engine
from repro.cpu.cache import CacheHierarchy
from repro.cpu.core import CoreParams, TraceCore
from repro.cpu.trace import TraceCursor, TraceRecord
from repro.dram.config import DramConfig, ddr5_8000b


@dataclass
class SystemResult:
    """Outcome of one system run."""

    ipcs: List[float]
    elapsed_ns: float
    dram_requests: int
    rfm_total: int
    rfm_by_provenance: Dict[str, int]
    row_hit_rate: float
    mean_latency_ns: float
    activations: int = 0
    refreshes: int = 0
    reads: int = 0
    writes: int = 0

    @property
    def total_ipc(self) -> float:
        return sum(self.ipcs)


class System:
    """N cores + one memory controller on a shared engine."""

    def __init__(
        self,
        traces: Sequence[List[TraceRecord]],
        config: Optional[DramConfig] = None,
        policy: Optional[object] = None,
        core_params: Optional[CoreParams] = None,
        use_caches: bool = False,
        enable_abo: bool = True,
        enable_refresh: bool = True,
        tref_per_trefi: float = 0.0,
        max_requests_per_core: Optional[int] = None,
        record_samples: bool = False,
    ) -> None:
        if not traces:
            raise ValueError("need at least one trace")
        self.engine = Engine()
        self.config = config or ddr5_8000b()
        self.controller = MemoryController(
            self.engine,
            self.config,
            policy=policy,
            enable_abo=enable_abo,
            enable_refresh=enable_refresh,
            tref_per_trefi=tref_per_trefi,
            record_samples=record_samples,
        )
        self.cores: List[TraceCore] = []
        for core_id, trace in enumerate(traces):
            caches = CacheHierarchy() if use_caches else None
            core = TraceCore(
                self.engine,
                self.controller,
                TraceCursor(trace),
                core_id=core_id,
                params=core_params,
                caches=caches,
                max_requests=max_requests_per_core,
            )
            core.on_finish = self._core_finished
            self.cores.append(core)
        self._unfinished = len(self.cores)

    def _core_finished(self, core: TraceCore) -> None:
        """Per-core finish hook: stop the engine once the last core is
        done — an O(1) counter instead of scanning every core per event."""
        self._unfinished -= 1
        if self._unfinished == 0:
            self.engine.request_stop()

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> SystemResult:
        """Run all cores to completion (or ``until``); gather results.

        The refresh/TB-RFM timers re-arm forever, so the run terminates
        on core completion rather than queue exhaustion.
        """
        for core in self.cores:
            core.start()
        if until is None:
            # Fast path: the engine's inlined loop runs the whole
            # simulation; the per-core finish hooks request a stop as the
            # last core completes — exactly where the scanning loop below
            # would have broken, with no O(cores) check per event.
            if self._unfinished > 0:
                self.engine.run(max_events=max_events)
        else:
            fired = 0
            while fired < max_events:
                if self.engine.now >= until:
                    break
                if self._unfinished == 0:
                    break
                if not self.engine.step():
                    break
                fired += 1
        stats = self.controller.stats
        provenance_counts: Dict[str, int] = {}
        for record in stats.rfm_records:
            key = record.provenance.value
            provenance_counts[key] = provenance_counts.get(key, 0) + 1
        return SystemResult(
            ipcs=[core.ipc for core in self.cores],
            elapsed_ns=self.engine.now,
            dram_requests=stats.requests_served,
            rfm_total=len(stats.rfm_records),
            rfm_by_provenance=provenance_counts,
            row_hit_rate=stats.row_hit_rate,
            mean_latency_ns=stats.mean_latency,
            activations=sum(b.stats.activations for b in self.controller.channel),
            refreshes=self.controller.refresh.refresh_count,
            reads=stats.reads,
            writes=stats.writes,
        )
