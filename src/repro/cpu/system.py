"""Multicore system wiring: cores + caches + the memory system.

This is the reproduction's ChampSim stand-in.  A :class:`System`
builds N trace-driven cores sharing a :class:`MemorySystem` — one
memory controller per configured DDR5 channel, with requests routed by
channel-interleaved physical address — runs them to completion (or a
request budget) and reports per-core IPCs, from which the experiments
derive weighted speedup and normalized performance.

With the default single-channel organization the memory system is a
zero-overhead alias for one controller and results are bit-for-bit
identical to the historical one-controller wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.config import DEFAULT_SYSTEM, SystemConfig
from repro.controller.controller import MemoryController
from repro.controller.memory_system import MemorySystem
from repro.core.engine import Engine
from repro.cpu.cache import CacheHierarchy
from repro.cpu.core import CoreParams, TraceCore
from repro.cpu.interconnect import InterconnectFront
from repro.cpu.trace import TraceCursor, TraceRecord
from repro.dram.config import DramConfig, ddr5_8000b


@dataclass
class ChannelResult:
    """Per-channel slice of one system run."""

    channel: int
    requests: int
    rfms: int
    row_hit_rate: float
    mean_latency_ns: float
    activations: int
    refreshes: int


@dataclass
class SystemResult:
    """Outcome of one system run (aggregated across channels)."""

    ipcs: List[float]
    elapsed_ns: float
    dram_requests: int
    rfm_total: int
    rfm_by_provenance: Dict[str, int]
    row_hit_rate: float
    mean_latency_ns: float
    activations: int = 0
    refreshes: int = 0
    reads: int = 0
    writes: int = 0
    per_channel: List[ChannelResult] = field(default_factory=list)
    #: cache-hierarchy counters (``SystemConfig(cache="l1l2")``):
    #: per-level hits/misses/hit-rate/writebacks plus MSHR accounting.
    #: ``None`` on the default direct-wired path.
    cache: Optional[Dict[str, Any]] = None
    #: interconnect counters (``SystemConfig(interconnect=...)``):
    #: transfers/queued/wait/occupancy.  ``None`` when direct-wired.
    interconnect: Optional[Dict[str, Any]] = None

    @property
    def total_ipc(self) -> float:
        return sum(self.ipcs)


class System:
    """N cores + a per-channel memory controller fleet on a shared engine."""

    def __init__(
        self,
        traces: Sequence[List[TraceRecord]],
        config: Optional[DramConfig] = None,
        policy: Optional[object] = None,
        policy_factory: Optional[Callable[[], object]] = None,
        core_params: Optional[CoreParams] = None,
        use_caches: bool = False,
        enable_abo: bool = True,
        enable_refresh: bool = True,
        tref_per_trefi: float = 0.0,
        max_requests_per_core: Optional[int] = None,
        record_samples: bool = False,
        system: Optional[SystemConfig] = None,
    ) -> None:
        if not traces:
            raise ValueError("need at least one trace")
        # The engine= axis picks the execution backend (event kernel,
        # batched controller loop, sharded channels); the backend then
        # decides the engine, the memory facade, and how run() drives
        # the simulation.  The default resolves to the historical
        # event kernel with identical construction order.
        self.backend = (
            system if system is not None else DEFAULT_SYSTEM
        ).validate().make_engine()
        self.engine = self.backend.make_engine()
        self.config = config or ddr5_8000b()
        self.memory = self.backend.make_memory(
            self.engine,
            self.config,
            policy=policy,
            policy_factory=policy_factory,
            enable_abo=enable_abo,
            enable_refresh=enable_refresh,
            tref_per_trefi=tref_per_trefi,
            record_samples=record_samples,
            system=system,
        )
        # The memory system may have projected the declarative system
        # (channel count) onto the device config; adopt its view.
        self.config = self.memory.config
        # Optional cache hierarchy / interconnect front-end between the
        # cores and the memory system.  On the default config both are
        # "none": nothing is constructed and the cores keep enqueueing
        # straight into the facade, byte-identical to the direct wiring.
        sysconf = self.memory.system
        self.interconnect = sysconf.make_interconnect()
        self.hierarchy = sysconf.make_cache(
            self.engine,
            self.memory,
            num_cores=len(traces),
            interconnect=self.interconnect,
            recorder=self.memory.recorder,
            metrics=self.memory.metrics,
        )
        front = self.memory
        if self.hierarchy is not None:
            front = self.hierarchy
        elif self.interconnect is not None:
            front = InterconnectFront(
                self.engine, self.memory, self.interconnect
            )
        self.front = front
        self.cores: List[TraceCore] = []
        for core_id, trace in enumerate(traces):
            caches = CacheHierarchy() if use_caches else None
            core = TraceCore(
                self.engine,
                front,
                TraceCursor(trace),
                core_id=core_id,
                params=core_params,
                caches=caches,
                max_requests=max_requests_per_core,
            )
            core.on_finish = self._core_finished
            self.cores.append(core)
        self._unfinished = len(self.cores)

    @property
    def controller(self) -> MemoryController:
        """The channel-0 controller.

        Kept for the large single-channel surface (attacks, energy,
        bench probes).  Multi-channel callers should aggregate via
        :attr:`memory` (``memory.stats``, ``memory.controllers``) or
        the per-channel slices on :class:`SystemResult`.
        """
        return self.memory.controllers[0]

    def _core_finished(self, core: TraceCore) -> None:
        """Per-core finish hook: stop the engine once the last core is
        done — an O(1) counter instead of scanning every core per event."""
        self._unfinished -= 1
        if self._unfinished == 0:
            self.engine.request_stop()

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> SystemResult:
        """Run all cores to completion (or ``until``); gather results.

        The refresh/TB-RFM timers re-arm forever, so the run terminates
        on core completion rather than queue exhaustion.
        """
        for core in self.cores:
            core.start()
        self.backend.run_system(self, until=until, max_events=max_events)
        return self._gather_result()

    # ------------------------------------------------------------------
    def _gather_result(self) -> SystemResult:
        """Aggregate per-channel controller state into one result.

        Single-channel sums degenerate to the lone controller's values,
        keeping historical outputs bit-identical.
        """
        memory = self.memory
        merged = memory.stats  # live object at 1 channel, merged snapshot at N
        provenance_counts: Dict[str, int] = {}
        for record in merged.rfm_records:
            key = record.provenance.value
            provenance_counts[key] = provenance_counts.get(key, 0) + 1
        per_channel: List[ChannelResult] = []
        for controller in memory.controllers:
            stats = controller.stats
            per_channel.append(
                ChannelResult(
                    channel=controller.channel_id,
                    requests=stats.requests_served,
                    rfms=len(stats.rfm_records),
                    row_hit_rate=stats.row_hit_rate,
                    mean_latency_ns=stats.mean_latency,
                    activations=sum(
                        b.stats.activations for b in controller.channel
                    ),
                    refreshes=controller.refresh.refresh_count,
                )
            )
        return SystemResult(
            ipcs=[core.ipc for core in self.cores],
            elapsed_ns=self.engine.now,
            dram_requests=merged.requests_served,
            rfm_total=len(merged.rfm_records),
            rfm_by_provenance=provenance_counts,
            row_hit_rate=merged.row_hit_rate,
            mean_latency_ns=merged.mean_latency,
            activations=sum(c.activations for c in per_channel),
            refreshes=memory.refresh_count,
            reads=merged.reads,
            writes=merged.writes,
            per_channel=per_channel,
            cache=(
                self.hierarchy.stats_dict(self.engine.now)
                if self.hierarchy is not None
                else None
            ),
            interconnect=(
                self.interconnect.stats(self.engine.now)
                if self.interconnect is not None
                else None
            ),
        )
