"""Event-driven cache hierarchy: private L1s, a shared banked L2, MSHRs.

This is the configurable front-end ROADMAP's top open item calls for:
per-core private L1 data caches and one shared, banked, write-back /
write-allocate L2 between the trace cores and the
:class:`~repro.controller.memory_system.MemorySystem` facade.  Unlike
the synchronous :class:`repro.cpu.cache.CacheHierarchy` (a lookup-cost
model kept for the AES experiments), this hierarchy lives on the
discrete-event engine: lookups take simulated time, the L2's banks
serialize concurrent probes, misses allocate MSHRs that merge
same-line requests into one DRAM fill, and dirty victims become real
DRAM write traffic — so cache behaviour composes with DRAM timing and
every scheduler/refresh/mitigation axis sees the filtered, bursty
request stream a real memory controller would.

Fill semantics are fill-at-completion: a missing line is installed
(L2, then each waiting core's L1) only when DRAM returns it, and every
request that missed on that line in the meantime has merged into the
MSHR.  When all MSHRs are busy, further misses wait in a FIFO stall
queue; each completed fill releases one stalled request.

Selection goes through :data:`CACHES` exactly like schedulers and
mappings: ``SystemConfig(cache="l1l2", cache_params={...})``.  The
``"none"`` spelling is the historical direct wiring (no hierarchy
object is constructed at all, keeping the default path byte-stable).
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.controller.request import MemRequest
from repro.cpu.cache import CacheStats
from repro.cpu.interconnect import Interconnect
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import Engine
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import TraceRecorder

#: Registry of cache hierarchies addressed by ``SystemConfig.cache`` /
#: the campaign ``cache`` axis.
CACHES = Registry("cache", "cache")

#: ``cache="none"`` — cores enqueue straight into the memory system.
#: Registered as a factory returning ``None`` so validation and
#: construction are uniform across every spelling of the axis.
CACHES.register("none", lambda *args, **kwargs: None)

#: Replacement policies :class:`SetAssocCache` understands.
REPLACEMENT_POLICIES = ("lru", "plru")


class SetAssocCache:
    """One set-associative cache level with pluggable replacement.

    Tags and dirty bits only — data never matters for timing.  Unlike
    :class:`repro.cpu.cache.Cache`, a miss does **not** fill the line:
    :meth:`access` only probes/updates, and the owner installs the line
    via :meth:`install` when the fill actually arrives, so MSHR-covered
    windows behave like real hardware.

    ``replacement`` is ``"lru"`` (exact, recency-stamped) or ``"plru"``
    (tree pseudo-LRU; requires a power-of-two way count).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        replacement: str = "lru",
    ) -> None:
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError(f"{name}: size must be divisible by ways*line")
        if replacement not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement {replacement!r} (cache param "
                f"'replacement'); have {sorted(REPLACEMENT_POLICIES)}"
            )
        if replacement == "plru" and ways & (ways - 1):
            raise ValueError(
                f"{name}: plru replacement needs a power-of-two way "
                f"count, got {ways}"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        self.replacement = replacement
        self.stats = CacheStats()
        sets = self.num_sets
        #: per-set tag -> way map for O(1) probes
        self._where: List[Dict[int, int]] = [dict() for _ in range(sets)]
        self._tags: List[List[Optional[int]]] = [
            [None] * ways for _ in range(sets)
        ]
        self._dirty: List[List[bool]] = [[False] * ways for _ in range(sets)]
        if replacement == "lru":
            self._stamp: List[List[int]] = [[0] * ways for _ in range(sets)]
            self._tick = 0
        else:
            self._tree: List[List[bool]] = [
                [False] * (ways - 1) for _ in range(sets)
            ]

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    def locate(self, phys_addr: int) -> Tuple[int, int]:
        """``phys_addr`` -> (set index, tag)."""
        line = phys_addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def line_addr(self, set_index: int, tag: int) -> int:
        """Inverse of :meth:`locate`: the line's base physical address."""
        return (tag * self.num_sets + set_index) * self.line_bytes

    # ------------------------------------------------------------------
    # Replacement bookkeeping
    # ------------------------------------------------------------------
    def _touch(self, set_index: int, way: int) -> None:
        if self.replacement == "lru":
            self._tick += 1
            self._stamp[set_index][way] = self._tick
        else:
            tree = self._tree[set_index]
            node, lo, hi = 0, 0, self.ways
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if way < mid:  # accessed left half -> victim on the right
                    tree[node] = True
                    node, hi = 2 * node + 1, mid
                else:
                    tree[node] = False
                    node, lo = 2 * node + 2, mid

    def _victim_way(self, set_index: int) -> int:
        tags = self._tags[set_index]
        for way, tag in enumerate(tags):  # invalid ways first
            if tag is None:
                return way
        if self.replacement == "lru":
            stamps = self._stamp[set_index]
            return min(range(self.ways), key=stamps.__getitem__)
        tree = self._tree[set_index]
        node, lo, hi = 0, 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if tree[node]:  # bit points right
                node, lo = 2 * node + 2, mid
            else:
                node, hi = 2 * node + 1, mid
        return lo

    # ------------------------------------------------------------------
    # Probing and filling
    # ------------------------------------------------------------------
    def contains(self, phys_addr: int) -> bool:
        """Whether the line holding ``phys_addr`` is resident (no touch)."""
        set_index, tag = self.locate(phys_addr)
        return tag in self._where[set_index]

    def access(self, phys_addr: int, is_write: bool = False) -> bool:
        """Demand probe: touch + dirty on hit, count a miss otherwise.

        Returns whether the line was resident.  Misses do **not** fill;
        call :meth:`install` when the line arrives.
        """
        set_index, tag = self.locate(phys_addr)
        way = self._where[set_index].get(tag)
        if way is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        if is_write:
            self._dirty[set_index][way] = True
        self._touch(set_index, way)
        return True

    def install(
        self, phys_addr: int, dirty: bool = False
    ) -> Optional[Tuple[int, bool]]:
        """Install (or re-mark) the line; returns the evicted victim.

        The return value is ``(victim_line_addr, victim_dirty)`` when an
        occupied way was displaced, else ``None``.  Installing a line
        that is already resident just ORs in ``dirty`` and touches it.
        """
        set_index, tag = self.locate(phys_addr)
        where = self._where[set_index]
        way = where.get(tag)
        if way is not None:
            if dirty:
                self._dirty[set_index][way] = True
            self._touch(set_index, way)
            return None
        way = self._victim_way(set_index)
        tags = self._tags[set_index]
        victim: Optional[Tuple[int, bool]] = None
        victim_tag = tags[way]
        if victim_tag is not None:
            self.stats.evictions += 1
            victim_dirty = self._dirty[set_index][way]
            if victim_dirty:
                self.stats.writebacks += 1
            victim = (self.line_addr(set_index, victim_tag), victim_dirty)
            del where[victim_tag]
        tags[way] = tag
        self._dirty[set_index][way] = dirty
        where[tag] = way
        self._touch(set_index, way)
        return victim

    def flush(self, phys_addr: int) -> bool:
        """clflush: drop the line if present; returns whether it was."""
        set_index, tag = self.locate(phys_addr)
        way = self._where[set_index].pop(tag, None)
        self.stats.flushes += 1
        if way is None:
            return False
        self._tags[set_index][way] = None
        self._dirty[set_index][way] = False
        return True


def _merge_stats(parts: List[CacheStats]) -> CacheStats:
    """Field-wise sum of per-core cache statistics."""
    merged = CacheStats()
    for part in parts:
        merged.hits += part.hits
        merged.misses += part.misses
        merged.evictions += part.evictions
        merged.writebacks += part.writebacks
        merged.flushes += part.flushes
    return merged


def _level_stats(stats: CacheStats) -> Dict[str, Any]:
    """JSON-able snapshot of one level's counters."""
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": stats.hit_rate,
        "evictions": stats.evictions,
        "writebacks": stats.writebacks,
    }


@CACHES.register("l1l2")
class MemoryHierarchy:
    """Per-core L1s + shared banked L2 + MSHRs, event-driven.

    Implements the one-method ``enqueue`` memory-target contract, so a
    :class:`~repro.cpu.core.TraceCore` issues through it unchanged.
    Requests are routed to the issuing core's private L1 by
    ``core_id``; L1 misses probe the shared L2 after ``l1_latency_ns``,
    serialized per L2 bank (``set index % l2_banks``); L2 misses
    allocate an MSHR (merging same-line misses) and fetch the line from
    DRAM through the optional interconnect.  Dirty victims write back
    level-by-level and ultimately become DRAM write requests.
    """

    def __init__(
        self,
        engine: "Engine",
        memory: Any,
        num_cores: int,
        l1_size: int = 32 * 1024,
        l1_ways: int = 8,
        l2_size: int = 1024 * 1024,
        l2_ways: int = 16,
        l2_banks: int = 4,
        line_bytes: int = 64,
        l1_latency_ns: float = 1.25,
        l2_latency_ns: float = 10.0,
        mshrs: int = 16,
        replacement: str = "lru",
        interconnect: Optional[Interconnect] = None,
        recorder: Optional["TraceRecorder"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if num_cores < 1:
            raise ValueError("hierarchy needs at least one core")
        if l2_banks < 1:
            raise ValueError("l2_banks must be positive")
        if mshrs < 1:
            raise ValueError("mshrs must be positive")
        self.engine = engine
        self.memory = memory
        self.num_cores = num_cores
        self.line_bytes = line_bytes
        self.l1_latency_ns = l1_latency_ns
        self.l2_latency_ns = l2_latency_ns
        self.l2_banks = l2_banks
        self.mshrs = mshrs
        self.interconnect = interconnect
        self.recorder = recorder
        self.l1s: List[SetAssocCache] = [
            SetAssocCache(
                f"L1-{core}", l1_size, l1_ways, line_bytes, replacement
            )
            for core in range(num_cores)
        ]
        self.l2 = SetAssocCache("L2", l2_size, l2_ways, line_bytes, replacement)
        self._bank_free: List[float] = [0.0] * l2_banks
        #: line address -> requests merged into the in-flight fill
        self._mshr: Dict[int, List[MemRequest]] = {}
        #: misses that found every MSHR busy, FIFO
        self._stalled: Deque[MemRequest] = deque()
        self.mshr_merges = 0
        self.mshr_stalls = 0
        self.dram_reads = 0
        self.dram_writebacks = 0
        if metrics is None:
            from repro.obs.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self._m_l1_hit = metrics.counter("cache.l1.hit")
        self._m_l1_miss = metrics.counter("cache.l1.miss")
        self._m_l2_hit = metrics.counter("cache.l2.hit")
        self._m_l2_miss = metrics.counter("cache.l2.miss")
        self._m_writeback = metrics.counter("cache.writeback")
        self._m_merge = metrics.counter("cache.mshr.merge")

    # ------------------------------------------------------------------
    # Memory-target contract
    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest) -> None:
        """Accept one core request; completion fires ``on_complete``."""
        engine = self.engine
        now = engine.now
        core = request.core_id % self.num_cores
        if self.l1s[core].access(request.phys_addr, request.is_write):
            self._m_l1_hit.inc()
            engine.schedule(
                now + self.l1_latency_ns,
                partial(self._complete, request),
                0,
                "cache-l1",
            )
            return
        self._m_l1_miss.inc()
        # L2 probe: after the L1 lookup, serialized on the set's bank.
        set_index, _ = self.l2.locate(request.phys_addr)
        bank = set_index % self.l2_banks
        start = now + self.l1_latency_ns
        if self._bank_free[bank] > start:
            start = self._bank_free[bank]
        self._bank_free[bank] = start + self.l2_latency_ns
        done = start + self.l2_latency_ns
        if self.l2.access(request.phys_addr, is_write=False):
            self._m_l2_hit.inc()
            engine.schedule(
                done, partial(self._l2_hit, request, core), 0, "cache-l2"
            )
        else:
            self._m_l2_miss.inc()
            if self.recorder is not None:
                from repro.obs.trace import CACHE_MISS

                self.recorder.record(CACHE_MISS, now, detail={"core": core})
            engine.schedule(
                done, partial(self._miss, request), 0, "cache-miss"
            )

    # ------------------------------------------------------------------
    # Hit/miss continuations
    # ------------------------------------------------------------------
    def _complete(self, request: MemRequest) -> None:
        request.complete(self.engine.now)

    def _l2_hit(self, request: MemRequest, core: int) -> None:
        """L2 returned the line: fill the core's L1, complete."""
        self._install_l1(core, request.phys_addr, dirty=request.is_write)
        request.complete(self.engine.now)

    def _miss(self, request: MemRequest) -> None:
        """L2 confirmed a miss: merge, stall, or allocate an MSHR."""
        line = request.phys_addr // self.line_bytes
        waiters = self._mshr.get(line)
        if waiters is not None:
            waiters.append(request)
            self.mshr_merges += 1
            self._m_merge.inc()
            return
        if len(self._mshr) >= self.mshrs:
            self.mshr_stalls += 1
            self._stalled.append(request)
            return
        self._mshr[line] = [request]
        self._issue_read(line, request.core_id)

    # ------------------------------------------------------------------
    # DRAM traffic
    # ------------------------------------------------------------------
    def _deliver(self, dram_request: MemRequest) -> None:
        """Hand one request to the memory system at its grant time."""
        engine = self.engine
        if self.interconnect is not None:
            departure = self.interconnect.grant(
                dram_request.phys_addr, engine.now
            )
            engine.schedule(
                departure,
                partial(self.memory.enqueue, dram_request),
                0,
                "icn",
            )
        else:
            self.memory.enqueue(dram_request)

    def _issue_read(self, line: int, core_id: int) -> None:
        self.dram_reads += 1
        self._deliver(
            MemRequest(
                phys_addr=line * self.line_bytes,
                is_write=False,
                core_id=core_id,
                on_complete=partial(self._fill, line),
            )
        )

    def _write_dram(self, phys_addr: int) -> None:
        """A dirty L2 victim becomes a DRAM write (fire and forget)."""
        self.dram_writebacks += 1
        self._m_writeback.inc()
        if self.recorder is not None:
            from repro.obs.trace import CACHE_WRITEBACK

            self.recorder.record(CACHE_WRITEBACK, self.engine.now)
        self._deliver(MemRequest(phys_addr=phys_addr, is_write=True))

    # ------------------------------------------------------------------
    # Install paths
    # ------------------------------------------------------------------
    def _install_l1(self, core: int, phys_addr: int, dirty: bool) -> None:
        """Fill a core's L1; dirty victims write back into the L2."""
        victim = self.l1s[core].install(phys_addr, dirty)
        if victim is not None and victim[1]:
            self._writeback_to_l2(victim[0])

    def _writeback_to_l2(self, phys_addr: int) -> None:
        """Install a dirty L1 victim into the L2 (write-back)."""
        victim = self.l2.install(phys_addr, dirty=True)
        if victim is not None and victim[1]:
            self._write_dram(victim[0])

    def _fill(self, line: int, dram_request: MemRequest) -> None:
        """DRAM returned the line: install everywhere, release waiters."""
        now = self.engine.now
        addr = line * self.line_bytes
        victim = self.l2.install(addr, dirty=False)
        if victim is not None and victim[1]:
            self._write_dram(victim[0])
        for waiter in self._mshr.pop(line):
            core = waiter.core_id % self.num_cores
            self._install_l1(core, waiter.phys_addr, dirty=waiter.is_write)
            waiter.complete(now)
        # One MSHR freed -> release exactly one stalled miss.  The full
        # re-lookup lets it hit if the line it wanted just arrived.
        if self._stalled and len(self._mshr) < self.mshrs:
            self.enqueue(self._stalled.popleft())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats_dict(self, elapsed_ns: float = 0.0) -> Dict[str, Any]:
        """JSON-able counter snapshot for results and reports."""
        return {
            "l1": _level_stats(_merge_stats([l1.stats for l1 in self.l1s])),
            "l2": _level_stats(self.l2.stats),
            "mshr_merges": self.mshr_merges,
            "mshr_stalls": self.mshr_stalls,
            "dram_reads": self.dram_reads,
            "dram_writebacks": self.dram_writebacks,
        }
