"""Contended interconnect models between the cache hierarchy and DRAM.

Two registered models sit between the last cache level (or, with
``cache="none"``, the cores) and the
:class:`~repro.controller.memory_system.MemorySystem` facade:

* ``fixed`` — :class:`FixedLatencyInterconnect`: every transfer is
  delayed by a constant ``latency_ns`` with unlimited bandwidth.  The
  cheapest way to model an on-chip network's pipeline depth without
  contention.
* ``crossbar`` — :class:`CrossbarInterconnect`: a banked crossbar with
  one FIFO queue per port.  Transfers hash to a port by line address,
  each occupies its port for ``occupancy_ns``, and a busy port delays
  later arrivals — so bursty eviction/writeback traffic contends
  exactly where a real memory-side NoC would serialize it.

Both are plain bookkeeping objects: they never schedule engine events
themselves.  :meth:`Interconnect.grant` maps an (address, time) pair to
the departure time, and the caller (the hierarchy or the
:class:`InterconnectFront` shim) schedules delivery.  Selection goes
through :data:`INTERCONNECTS` exactly like schedulers and mappings:
``SystemConfig(interconnect="crossbar", interconnect_params={...})``.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.controller.request import MemRequest
    from repro.core.engine import Engine

#: Registry of interconnect models addressed by
#: ``SystemConfig.interconnect`` / the campaign ``interconnect`` axis.
INTERCONNECTS = Registry("interconnect", "interconnect")

#: ``interconnect="none"`` — the historical direct wiring.  Registered
#: as a factory returning ``None`` so validation and construction are
#: uniform across every spelling of the axis.
INTERCONNECTS.register("none", lambda **kwargs: None)


class Interconnect:
    """Base interconnect: transfer accounting plus the grant contract.

    ``grant(phys_addr, time)`` reserves the resources a transfer needs
    and returns its departure (delivery) time; it must be monotone in
    ``time`` per port so per-port ordering is FIFO.
    """

    kind = "interconnect"

    def __init__(self, ports: int, latency_ns: float) -> None:
        if ports < 1:
            raise ValueError("interconnect needs at least one port")
        if latency_ns < 0:
            raise ValueError("latency_ns must be non-negative")
        self.ports = ports
        self.latency_ns = latency_ns
        self.transfers = 0
        self.queued = 0
        self.total_wait_ns = 0.0
        self.busy_ns = 0.0

    # ------------------------------------------------------------------
    def grant(self, phys_addr: int, time: float) -> float:
        """Reserve a slot for one transfer; returns the delivery time."""
        raise NotImplementedError

    def occupancy(self, elapsed_ns: float) -> float:
        """Mean fraction of aggregate port-time spent transferring."""
        if elapsed_ns <= 0:
            return 0.0
        return self.busy_ns / (elapsed_ns * self.ports)

    def stats(self, elapsed_ns: float = 0.0) -> Dict[str, Any]:
        """Counter snapshot (JSON-able) for results and reports."""
        return {
            "kind": self.kind,
            "ports": self.ports,
            "transfers": self.transfers,
            "queued": self.queued,
            "total_wait_ns": self.total_wait_ns,
            "mean_wait_ns": (
                self.total_wait_ns / self.transfers if self.transfers else 0.0
            ),
            "busy_ns": self.busy_ns,
            "occupancy": self.occupancy(elapsed_ns),
        }


@INTERCONNECTS.register("fixed")
class FixedLatencyInterconnect(Interconnect):
    """Uncontended link: every transfer arrives ``latency_ns`` later."""

    kind = "fixed"

    def __init__(self, latency_ns: float = 2.0) -> None:
        super().__init__(ports=1, latency_ns=latency_ns)

    def grant(self, phys_addr: int, time: float) -> float:
        self.transfers += 1
        return time + self.latency_ns


@INTERCONNECTS.register("crossbar")
class CrossbarInterconnect(Interconnect):
    """Banked crossbar with per-port FIFO queuing.

    A transfer hashes to ``(phys_addr // line_bytes) % ports``, waits
    for its port to free, holds it for ``occupancy_ns``, and arrives
    ``latency_ns`` after it starts.  ``queued`` / ``total_wait_ns``
    count the transfers that found their port busy and the time they
    spent waiting.
    """

    kind = "crossbar"

    def __init__(
        self,
        ports: int = 4,
        latency_ns: float = 4.0,
        occupancy_ns: float = 1.0,
        line_bytes: int = 64,
    ) -> None:
        super().__init__(ports=ports, latency_ns=latency_ns)
        if occupancy_ns <= 0:
            raise ValueError("occupancy_ns must be positive")
        if line_bytes < 1:
            raise ValueError("line_bytes must be positive")
        self.occupancy_ns = occupancy_ns
        self.line_bytes = line_bytes
        self._port_free: List[float] = [0.0] * ports

    def port_of(self, phys_addr: int) -> int:
        """The port a line-sized transfer of ``phys_addr`` serializes on."""
        return (phys_addr // self.line_bytes) % self.ports

    def grant(self, phys_addr: int, time: float) -> float:
        port = self.port_of(phys_addr)
        start = self._port_free[port]
        if start > time:
            self.queued += 1
            self.total_wait_ns += start - time
        else:
            start = time
        self._port_free[port] = start + self.occupancy_ns
        self.busy_ns += self.occupancy_ns
        self.transfers += 1
        return start + self.latency_ns


class InterconnectFront:
    """Memory front that routes raw core requests over an interconnect.

    Used when ``interconnect`` is set without a cache hierarchy: cores
    still see the one-method ``enqueue`` target, but each request is
    delivered to the memory system at the interconnect's grant time
    instead of immediately.
    """

    def __init__(
        self,
        engine: "Engine",
        memory: Any,
        interconnect: Interconnect,
    ) -> None:
        self.engine = engine
        self.memory = memory
        self.interconnect = interconnect

    def enqueue(self, request: "MemRequest") -> None:
        """Forward one request to memory at the interconnect grant time."""
        engine = self.engine
        departure = self.interconnect.grant(request.phys_addr, engine.now)
        engine.schedule(
            departure, partial(self.memory.enqueue, request), 0, "interconnect"
        )


def make_interconnect(name: str, **params: Any) -> Optional[Interconnect]:
    """Build a registered interconnect (``None`` for ``"none"``)."""
    return INTERCONNECTS.make(name, **params)
