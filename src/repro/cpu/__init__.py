"""CPU-side model: trace records, caches, trace-driven cores, system.

The reproduction does not need a full out-of-order pipeline — the
paper's performance deltas come from DRAM-side stalls.  Cores are
trace-driven with a ROB-window model: a core may run ahead of its
oldest outstanding DRAM miss by at most ``rob_size`` instructions,
which yields realistic memory-level parallelism (and hence realistic
sensitivity to RFM-induced channel blocking).
"""

from repro.cpu.cache import Cache, CacheHierarchy
from repro.cpu.core import CoreParams, TraceCore
from repro.cpu.hierarchy import CACHES, MemoryHierarchy, SetAssocCache
from repro.cpu.interconnect import (
    INTERCONNECTS,
    CrossbarInterconnect,
    FixedLatencyInterconnect,
    Interconnect,
)
from repro.cpu.system import System, SystemResult
from repro.cpu.trace import TraceRecord, synthesize_trace

__all__ = [
    "CACHES",
    "Cache",
    "CacheHierarchy",
    "CoreParams",
    "CrossbarInterconnect",
    "FixedLatencyInterconnect",
    "INTERCONNECTS",
    "Interconnect",
    "MemoryHierarchy",
    "SetAssocCache",
    "System",
    "SystemResult",
    "TraceCore",
    "TraceRecord",
    "synthesize_trace",
]
