"""A tiny generic name -> factory registry.

Every axis a scenario or :class:`~repro.config.SystemConfig` can
address by string — mitigation policies, request schedulers, address
mappings, refresh policies — goes through one of these registries, so

* ``available()`` is the single source of truth for what a sweep can
  spell, and
* an unknown name always fails the same way: a :class:`ValueError`
  naming the config field that was wrong **and** listing the names
  that would have worked.

The idiom mirrors (and now backs) ``repro.mitigations.get/available``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar, overload

F = TypeVar("F", bound=Callable[..., Any])


class Registry:
    """Name -> factory mapping with uniform lookup errors.

    Parameters
    ----------
    kind:
        Human noun for error messages, e.g. ``"scheduler"``.
    field:
        The config/scenario field a bad name came from, e.g.
        ``"scheduler"`` — registry errors cite it so a failing grid or
        JSON spec is diagnosable without a traceback dive.
    """

    def __init__(self, kind: str, field: str) -> None:
        self.kind = kind
        self.field = field
        self._factories: Dict[str, Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    @overload
    def register(self, name: str) -> Callable[[F], F]: ...

    @overload
    def register(self, name: str, factory: F) -> F: ...

    def register(
        self, name: str, factory: Optional[Callable[..., Any]] = None
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering a taken name raises: silent replacement would
        let an import-order accident swap a component everywhere.
        """
        if factory is None:
            def decorator(fn: F) -> F:
                self.register(name, fn)
                return fn
            return decorator
        if name in self._factories:
            raise ValueError(f"{self.kind} {name!r} already registered")
        self._factories[name] = factory
        return factory

    # ------------------------------------------------------------------
    def available(self) -> List[str]:
        """Sorted names of every registered factory."""
        return sorted(self._factories)

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``.

        Raises ``ValueError`` naming the config field and the valid
        names — the one error shape every registry in the repo shares.
        """
        try:
            return self._factories[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r} (config field "
                f"{self.field!r}); have {self.available()}"
            ) from None

    def make(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate ``name``'s factory with the given arguments."""
        return self.get(name)(*args, **kwargs)

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        return len(self._factories)
