"""The curated public facade of the reproduction.

Everything an experiment, test or downstream script needs to assemble
and sweep simulated systems is re-exported here under one stable,
deliberately small ``__all__``:

* **Assembly** — :class:`SystemConfig` (the declarative spec, with its
  :data:`COMPONENT_AXES` / :meth:`SystemConfig.component` uniform
  component accessors), :func:`build_system` (design point + traces ->
  ready :class:`~repro.cpu.system.System`) and :class:`DesignPoint`.
* **Sweeping** — :class:`Scenario`, :func:`expand_grid`,
  :func:`run_campaign`, :func:`run_trial`.
* **Registries** — :data:`SCHEDULERS`, :data:`MAPPINGS`,
  :data:`REFRESH_POLICIES`, :data:`CACHES`, :data:`INTERCONNECTS`,
  :data:`ENGINES` and :data:`MITIGATIONS`: the single source of truth
  for what each component axis can spell.

Import from here (``from repro.api import SystemConfig, build_system``)
instead of deep-importing construction internals; the internal module
layout may shift between revisions, this surface does not (see
``docs/api.md`` for the stability note).
"""

from __future__ import annotations

from repro.campaigns.grid import expand_grid, parse_grid_tokens
from repro.campaigns.runners import run_trial
from repro.campaigns.scenario import ATTACK_KINDS, Scenario
from repro.campaigns.trials import run_campaign
from repro.config import (
    COMPONENT_AXES,
    DEFAULT_SYSTEM,
    SystemConfig,
    component_registries,
)
from repro.controller.memory_system import MemorySystem
from repro.controller.scheduler import SCHEDULERS
from repro.core.engines import ENGINES
from repro.cpu.hierarchy import CACHES
from repro.cpu.interconnect import INTERCONNECTS
from repro.cpu.system import System, SystemResult
from repro.dram.address import MAPPINGS
from repro.dram.refresh import REFRESH_POLICIES
from repro.experiments.common import DesignPoint, build_system
from repro.mitigations import MITIGATIONS

__all__ = [
    # assembly
    "SystemConfig",
    "DEFAULT_SYSTEM",
    "COMPONENT_AXES",
    "component_registries",
    "DesignPoint",
    "build_system",
    "System",
    "SystemResult",
    "MemorySystem",
    # sweeping
    "Scenario",
    "ATTACK_KINDS",
    "expand_grid",
    "parse_grid_tokens",
    "run_trial",
    "run_campaign",
    # registries
    "SCHEDULERS",
    "MAPPINGS",
    "REFRESH_POLICIES",
    "CACHES",
    "INTERCONNECTS",
    "ENGINES",
    "MITIGATIONS",
]
