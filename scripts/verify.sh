#!/usr/bin/env bash
# Cheap regression net: tier-1 tests must collect cleanly and pass,
# and the parallel suite executor must complete a 2-artifact run.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo "== suite: 2-artifact parallel run =="
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
python -m repro.cli suite --jobs 2 --only fig7 fig8 --out "$out_dir" --no-cache

echo "== campaign: 12-scenario smoke grid (pool + resume) =="
camp_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir" "$camp_dir"' EXIT
python -m repro.cli campaign --campaign smoke --trials 3 --jobs 2 --out "$camp_dir"
# re-run with --resume: every scenario must be served from cache
resume_out="$(python -m repro.cli campaign --campaign smoke --trials 3 --jobs 2 \
    --out "$camp_dir" --resume)"
grep -q cached <<<"$resume_out"

echo "== bench: smoke run vs committed trajectory (soft) =="
# Single repetition against the newest committed BENCH_<rev>.json; a
# >20% events/sec drop prints a WARNING but never fails the build.
# Set BENCH_OUT to keep the result (CI uploads it as an artifact).
if [[ -n "${BENCH_OUT:-}" ]]; then
    bench_out="$BENCH_OUT"
else
    bench_out="$(mktemp -d)"
    trap 'rm -rf "$out_dir" "$camp_dir" "$bench_out"' EXIT
fi
python -m repro.cli bench --smoke --out "$bench_out" \
    --baseline benchmarks/trajectory

echo "verify: OK"
