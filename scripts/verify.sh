#!/usr/bin/env bash
# Cheap regression net: tier-1 tests must collect cleanly and pass,
# and the parallel suite executor must complete a 2-artifact run.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo "== suite: 2-artifact parallel run =="
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
python -m repro.cli suite --jobs 2 --only fig7 fig8 --out "$out_dir" --no-cache

echo "verify: OK"
