#!/usr/bin/env bash
# Cheap regression net: tier-1 tests must collect cleanly and pass,
# and the parallel suite executor must complete a 2-artifact run.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Single cleanup trap: successive `trap ... EXIT` lines REPLACE each
# other (only the last would fire), so every temp dir registers here
# and one handler removes them all.
cleanup_dirs=()
cleanup() {
    # Length guard: expanding an empty array under `set -u` errors on
    # bash < 4.4.
    if ((${#cleanup_dirs[@]})); then
        rm -rf "${cleanup_dirs[@]}"
    fi
}
trap cleanup EXIT

echo "== lint: no committed bytecode =="
# Bytecode must never be tracked (.gitignore covers the working tree;
# this guards the index so a force-add cannot slip through review).
if git ls-files -- '*.pyc' '*.pyo' '*__pycache__*' | grep .; then
    echo "error: compiled bytecode is tracked by git (see above)" >&2
    exit 1
fi

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo "== suite: 2-artifact parallel run =="
out_dir="$(mktemp -d)"
cleanup_dirs+=("$out_dir")
python -m repro.cli suite --jobs 2 --only fig7 fig8 --out "$out_dir" --no-cache

echo "== campaign: 12-scenario smoke grid (pool + resume) =="
camp_dir="$(mktemp -d)"
cleanup_dirs+=("$camp_dir")
python -m repro.cli campaign --campaign smoke --trials 3 --jobs 2 --out "$camp_dir"
# re-run with --resume: every scenario must be served from cache
resume_out="$(python -m repro.cli campaign --campaign smoke --trials 3 --jobs 2 \
    --out "$camp_dir" --resume)"
grep -q cached <<<"$resume_out"

echo "== campaign: channel-count sweep (multi-channel smoke) =="
chan_dir="$(mktemp -d)"
cleanup_dirs+=("$chan_dir")
python -m repro.cli campaign --grid channels=1,2,4 --trials 1 --jobs 2 \
    --out "$chan_dir"

echo "== campaign: scheduler x mapping sweep (registry smoke) =="
sched_dir="$(mktemp -d)"
cleanup_dirs+=("$sched_dir")
python -m repro.cli campaign --grid scheduler=fr_fcfs,fcfs \
    mapping=linear,mop --trials 1 --jobs 2 --out "$sched_dir"

echo "== campaign: cache x interconnect sweep (hierarchy smoke) =="
# Both links with and without the hierarchy: cache=none exercises the
# InterconnectFront shim, cache=l1l2 the full L1/L2 + MSHR front-end
# behind each link.
cache_dir="$(mktemp -d)"
cleanup_dirs+=("$cache_dir")
python -m repro.cli campaign --grid cache=none,l1l2 \
    interconnect=fixed,crossbar --trials 1 --jobs 2 --out "$cache_dir"

echo "== campaign: sanitized perf scenario (protocol-checker smoke) =="
# One perf scenario with the DRAM protocol sanitizer attached: a
# timing violation anywhere in the served command stream would raise
# ProtocolViolation and fail this leg.
san_dir="$(mktemp -d)"
cleanup_dirs+=("$san_dir")
python -m repro.cli campaign --grid sanitize=true --trials 1 --jobs 2 \
    --out "$san_dir"

echo "== campaign: traced perf scenario (telemetry smoke) =="
# One perf scenario with the full telemetry layer attached: the run
# must produce a loadable Chrome trace, a metrics time-series file and
# a heartbeat stream that `obs report` can summarize.
obs_dir="$(mktemp -d)"
cleanup_dirs+=("$obs_dir")
python -m repro.cli campaign --grid trace=true metrics=true --trials 1 \
    --jobs 2 --out "$obs_dir" --progress
ls "$obs_dir"/obs/trace-*.chrome.json "$obs_dir"/obs/metrics-*.json \
    "$obs_dir"/heartbeat.jsonl > /dev/null
python -c "import json, sys, glob
path = glob.glob(sys.argv[1] + '/obs/trace-*.chrome.json')[0]
doc = json.load(open(path))
assert doc['traceEvents'], 'empty Chrome trace'
" "$obs_dir"
obs_report="$(python -m repro.cli obs report "$obs_dir")"
grep -q 'heartbeat:' <<<"$obs_report"

echo "== campaign: chaos smoke (fault injection vs clean run) =="
# The same seeded selftest campaign twice: once clean, once under a
# fault plan that raises a transient error, crashes one worker
# (os._exit inside the pool) and hangs another into its --timeout
# deadline.  The chaos run must still exit 0 — retries, pool rebuild
# and the deadline kill absorb every fault — and its scenario metrics
# must be byte-identical to the clean run's, which is the whole
# robustness contract: recovery never changes results.
chaos_clean="$(mktemp -d)"
chaos_dir="$(mktemp -d)"
cleanup_dirs+=("$chaos_clean" "$chaos_dir")
chaos_grid=(--grid attack=selftest x=1,2,3 --trials 3 --jobs 2 --seed 0)
python -m repro.cli campaign "${chaos_grid[@]}" --out "$chaos_clean"
REPRO_FAULT_PLAN='{"rules": [
    {"action": "raise", "match": "*:0", "attempts": [0]},
    {"action": "crash", "match": "*:1", "attempts": [0]},
    {"action": "hang",  "match": "*:2", "attempts": [0], "seconds": 60}
]}' python -m repro.cli campaign "${chaos_grid[@]}" \
    --timeout 5 --retries 3 --out "$chaos_dir"
python - "$chaos_clean" "$chaos_dir" <<'PY'
import json, pathlib, sys
clean, chaos = (pathlib.Path(p) for p in sys.argv[1:3])
names = sorted(p.name for p in clean.glob("scenario-*.json"))
assert names and names == sorted(p.name for p in chaos.glob("scenario-*.json"))
for name in names:
    a = json.loads((clean / name).read_text())
    b = json.loads((chaos / name).read_text())
    assert a["metrics"] == b["metrics"], f"{name}: chaos changed metrics"
    assert b["trials_ok"] == len(b["trials"]), f"{name}: chaos trial failed"
print(f"chaos: {len(names)} scenarios recovered with identical metrics")
PY
# The recovery must also be visible: the chaos heartbeat records at
# least one retry and one pool rebuild, and obs report surfaces them.
chaos_report="$(python -m repro.cli obs report "$chaos_dir")"
grep -q 'health:' <<<"$chaos_report"
grep -q 'pool_rebuilds' <<<"$chaos_report"

echo "== engines: accelerated backends vs reference (byte-compare + sweep) =="
# The engine tier's acceptance gate.  REPRO_ENGINE forces a backend
# through build_system without touching any scenario spec or config
# hash, and abcompare.sh byte-diffs the resulting artifacts (plus the
# fig3/fig10 CLI renderings) against the reference event engine.
scripts/abcompare.sh event batched fig7 fig8 table2
scripts/abcompare.sh event sharded fig7 fig8 table2
# The engine= scenario axis must also sweep cleanly through the
# campaign runner.  --jobs 1 is deliberate: sharded scenarios fork
# their own per-channel workers, and nested forking from a daemonic
# pool worker is refused by design.
engine_dir="$(mktemp -d)"
cleanup_dirs+=("$engine_dir")
python -m repro.cli campaign \
    --grid attack=perf workload=433.milc engine=event,batched,sharded \
    channels=2 --trials 1 --jobs 1 --seed 0 --out "$engine_dir"
python - "$engine_dir" <<'PY'
import json, pathlib, sys
docs = [
    json.loads(p.read_text())
    for p in sorted(pathlib.Path(sys.argv[1]).glob("scenario-*.json"))
]
by_engine = {d["spec"].get("engine", "event"): d["metrics"] for d in docs}
assert set(by_engine) == {"event", "batched", "sharded"}, sorted(by_engine)
# batched is exact by contract; sharded only quantizes completion
# times, so its served-work metric must still agree with the reference.
assert by_engine["batched"] == by_engine["event"], "batched diverged"
print(f"engines: {len(docs)} perf scenarios swept; batched metrics exact")
PY

echo "== lints: custom invariant suite =="
python -m tools.repro_lints

echo "== bench: smoke run vs committed trajectory (hard acceptance gate) =="
# Short run against the newest committed BENCH_<rev>.json.  --strict
# fails the build when the acceptance workload (perf_multi_core)
# drops >20% below baseline; the other pinned workloads stay advisory
# warnings.  Warmup reps are required for the gate to be meaningful: a
# cold single rep measures ~25% below a warmed best-of-5
# (cache/allocator warmup), and even a warmed best-of-3 was observed
# ~23% below a best-of-9 baseline on a noisy 1-CPU host — inside the
# threshold on a bad day.  Two warmups + best-of-5 keeps the gate's
# own noise well under the 20% budget while staying ~30s.
# Set BENCH_OUT to keep the result (CI uploads it as an artifact).
if [[ -n "${BENCH_OUT:-}" ]]; then
    bench_out="$BENCH_OUT"
else
    bench_out="$(mktemp -d)"
    cleanup_dirs+=("$bench_out")
fi
# The bench CLI prints the resolved baseline file it compared against
# (`baseline: <path>`); require that line so the compare is auditable
# from the CI log.
bench_log="$(python -m repro.cli bench --smoke --reps 5 --warmup 2 \
    --out "$bench_out" \
    --baseline benchmarks/trajectory --strict | tee /dev/stderr)"
grep -q '^baseline: ' <<<"$bench_log"

echo "verify: OK"
