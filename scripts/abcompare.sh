#!/usr/bin/env bash
# A/B byte-compare: prove two execution backends produce identical
# artifacts on the unchanged experiment pipeline.
#
#   scripts/abcompare.sh EVENT_ENGINE OTHER_ENGINE [suite-artifact...]
#   scripts/abcompare.sh event batched            # full quick suite
#   scripts/abcompare.sh event sharded fig7 fig8  # subset
#
# Each side runs the quick suite (every registered artifact, or the
# given subset) plus the fig3/fig10 CLI renderings, with REPRO_ENGINE
# forcing the backend through repro.experiments.common.build_system —
# no scenario spec, config hash or CLI flag differs between the sides.
# The result trees are diffed byte-for-byte after dropping the two
# advisory wall-clock keys (elapsed_seconds, cache_key) that never
# participate in result identity.
#
# This is the acceptance harness for the engine tier: "batched" (and,
# on single-channel artifacts, "sharded") must be indistinguishable
# from the reference "event" backend here.  It is also the pre/post
# guard for the default path: comparing event vs event across two
# checkouts proves a refactor moved nothing.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

engine_a="${1:?usage: abcompare.sh ENGINE_A ENGINE_B [suite-artifact...]}"
engine_b="${2:?usage: abcompare.sh ENGINE_A ENGINE_B [suite-artifact...]}"
shift 2
only=("$@")

cleanup_dirs=()
cleanup() {
    if ((${#cleanup_dirs[@]})); then
        rm -rf "${cleanup_dirs[@]}"
    fi
}
trap cleanup EXIT

run_side() {
    local engine="$1" out="$2"
    local only_flag=()
    if ((${#only[@]})); then
        only_flag=(--only "${only[@]}")
    fi
    # --no-cache: both sides must recompute, or a shared cache would
    # make the compare vacuous.
    REPRO_ENGINE="$engine" python -m repro.cli suite --jobs 2 \
        --out "$out/suite" --no-cache "${only_flag[@]}" > /dev/null
    REPRO_ENGINE="$engine" python -m repro.cli fig3 > "$out/fig3.txt"
    REPRO_ENGINE="$engine" python -m repro.cli fig10 > "$out/fig10.txt"
}

strip_volatile() {
    # Drop advisory wall-clock metadata in place, normalizing key order
    # so the remaining content diffs byte-for-byte.
    python - "$1" <<'PY'
import json, pathlib, sys

VOLATILE = {"elapsed_seconds", "cache_key"}

def scrub(node):
    if isinstance(node, dict):
        return {k: scrub(v) for k, v in node.items() if k not in VOLATILE}
    if isinstance(node, list):
        return [scrub(item) for item in node]
    return node

for path in sorted(pathlib.Path(sys.argv[1]).rglob("*.json")):
    doc = scrub(json.loads(path.read_text()))
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
PY
    # The CLI renderings end with an advisory "---- <name> done in X.Xs"
    # wall-clock line; everything above it must match exactly.
    sed -i '/^---- .* done in [0-9.]*s$/d' "$1"/*.txt
}

dir_a="$(mktemp -d)"
dir_b="$(mktemp -d)"
cleanup_dirs+=("$dir_a" "$dir_b")

echo "abcompare: side A (engine=$engine_a)"
run_side "$engine_a" "$dir_a"
echo "abcompare: side B (engine=$engine_b)"
run_side "$engine_b" "$dir_b"

strip_volatile "$dir_a"
strip_volatile "$dir_b"

if ! diff -r "$dir_a" "$dir_b"; then
    echo "abcompare: FAIL — engine=$engine_b diverges from engine=$engine_a" >&2
    exit 1
fi
count="$(find "$dir_a" -type f | wc -l)"
echo "abcompare: OK — $count artifacts byte-identical ($engine_a vs $engine_b)"
