"""Tests for the energy model (Table 5 machinery)."""

import pytest

from repro.analysis.energy import EnergyBreakdown, EnergyModel
from repro.dram.config import ddr5_8000b


@pytest.fixture
def model():
    return EnergyModel(ddr5_8000b())


def test_from_counts_component_accounting(model):
    breakdown = model.from_counts(
        activations=100, reads=50, writes=50, refreshes=2, mitigations=3,
        elapsed_ns=1000.0,
    )
    p = model.params
    banks = model.config.organization.total_banks
    assert breakdown.activation_pj == pytest.approx(100 * p.act_pre_pj)
    assert breakdown.column_pj == pytest.approx(50 * p.rd_pj + 50 * p.wr_pj)
    assert breakdown.refresh_pj == pytest.approx(2 * banks * p.ref_per_bank_pj)
    assert breakdown.mitigation_pj == pytest.approx(
        3 * p.mitigation_acts * p.act_pre_pj
    )
    assert breakdown.total_pj > 0


def test_overhead_split_sums_to_total(model):
    base = model.from_counts(100, 50, 50, 2, 0, 1000.0)
    with_rfms = model.from_counts(100, 50, 50, 2, 5, 1100.0)
    overhead = with_rfms.overhead_vs(base)
    expected_total = (with_rfms.total_pj - base.total_pj) / base.total_pj * 100
    assert overhead.total_pct == pytest.approx(expected_total)
    assert overhead.mitigation_pct > 0
    assert overhead.non_mitigation_pct > 0


def test_overhead_against_zero_baseline_raises(model):
    empty = EnergyBreakdown()
    with pytest.raises(ValueError):
        model.from_counts(1, 1, 0, 0, 0, 1.0).overhead_vs(empty)


def test_more_rfms_cost_more_energy(model):
    low = model.from_counts(100, 50, 50, 2, 1, 1000.0)
    high = model.from_counts(100, 50, 50, 2, 10, 1000.0)
    assert high.total_pj > low.total_pj


def test_longer_execution_costs_background_energy(model):
    short = model.from_counts(100, 50, 50, 2, 0, 1000.0)
    long = model.from_counts(100, 50, 50, 2, 0, 2000.0)
    assert long.background_pj == pytest.approx(2 * short.background_pj)
