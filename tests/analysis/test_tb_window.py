"""Tests for the TB-Window solver."""

import pytest

from repro.analysis.feinting import feinting_tmax
from repro.analysis.tb_window import (
    required_tb_window,
    tb_window_for_nrh,
)
from repro.dram.config import ddr5_8000b

CONFIG = ddr5_8000b()


def test_solved_window_is_safe_and_maximal():
    nbo = 1024
    window = required_tb_window(CONFIG, nbo, with_reset=True)
    assert feinting_tmax(CONFIG, window, with_reset=True).tmax < nbo
    slightly_longer = window * 1.02
    assert feinting_tmax(CONFIG, slightly_longer, with_reset=True).tmax >= nbo


def test_nrh_1024_window_matches_paper_scale():
    """Paper: ~1.6 tREFI at N_RH=1024 (they keep margin; solver is exact)."""
    choice = tb_window_for_nrh(1024)
    assert 1.4 < choice.tb_window_trefi < 2.0
    assert choice.tmax < 1024


def test_window_shrinks_with_threshold():
    windows = [tb_window_for_nrh(n).tb_window for n in (128, 256, 512, 1024, 4096)]
    assert windows == sorted(windows)


def test_nrh_128_window_near_one_microsecond():
    """Paper Table 5: TB-RFMs every ~1 us at N_RH=128."""
    choice = tb_window_for_nrh(128)
    assert 700 < choice.tb_window < 1600


def test_no_reset_requires_shorter_window():
    with_reset = tb_window_for_nrh(512, with_reset=True)
    without = tb_window_for_nrh(512, with_reset=False)
    assert without.tb_window < with_reset.tb_window


def test_unachievable_threshold_raises():
    with pytest.raises(ValueError):
        required_tb_window(CONFIG, nbo=8, with_reset=True)


def test_custom_nbo_mapping():
    choice = tb_window_for_nrh(1024, nbo_of_nrh=lambda nrh: nrh // 2)
    assert choice.nbo == 512
    assert choice.tmax < 512
