"""Tests for multi-seed statistics helpers."""

import pytest

from repro.analysis.stats_utils import across_seeds, compare_designs, summarize


def test_summarize_basics():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary.n == 3
    assert summary.mean == pytest.approx(2.0)
    assert summary.stdev == pytest.approx(1.0)
    lo, hi = summary.ci95
    assert lo < 2.0 < hi


def test_single_value_has_zero_spread():
    summary = summarize([5.0])
    assert summary.stdev == 0.0
    assert summary.ci95 == (5.0, 5.0)


def test_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])
    with pytest.raises(ValueError):
        across_seeds(lambda s: 1.0, [])


def test_ci_narrows_with_more_samples():
    few = summarize([1.0, 2.0, 3.0])
    many = summarize([1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0, 2.0, 3.0])
    assert many.ci95_half_width < few.ci95_half_width


def test_overlap_detection():
    a = summarize([1.0, 1.1, 0.9])
    b = summarize([1.05, 1.15, 0.95])
    c = summarize([5.0, 5.1, 4.9])
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_across_seeds_invokes_per_seed():
    seen = []

    def measure(seed):
        seen.append(seed)
        return float(seed)

    summary = across_seeds(measure, [1, 2, 3])
    assert seen == [1, 2, 3]
    assert summary.mean == pytest.approx(2.0)


def test_compare_designs_shares_seeds():
    results = compare_designs(
        {"a": lambda s: float(s), "b": lambda s: 2.0 * s}, [1, 2]
    )
    assert results["a"].mean == pytest.approx(1.5)
    assert results["b"].mean == pytest.approx(3.0)


def test_multiseed_perf_spread_is_tight():
    """End-to-end: TPRAC's normalized perf varies little across seeds."""
    from repro.cpu.system import System
    from repro.mitigations import NoMitigationPolicy, TpracPolicy
    from repro.workloads.synthetic import homogeneous_traces

    def normalized(seed: int) -> float:
        traces = homogeneous_traces("433.milc", cores=2, num_accesses=800, seed=seed)
        base = System(traces, policy=NoMitigationPolicy(), enable_abo=False).run()
        tprac = System(traces, policy=TpracPolicy(tb_window=4000.0)).run()
        return tprac.total_ipc / base.total_ipc

    summary = across_seeds(normalized, [0, 1, 2])
    assert 0.8 < summary.mean < 1.0
    assert summary.stdev < 0.05


# ----------------------------------------------------------------------
# Streaming (Welford) accumulator and bootstrap CIs (campaign engine)
# ----------------------------------------------------------------------
def test_welford_matches_batch_summary():
    from repro.analysis.stats_utils import Welford, summarize

    values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    acc = Welford()
    for v in values:
        acc.push(v)
    batch = summarize(values)
    streamed = acc.summary()
    assert streamed.n == batch.n
    assert streamed.mean == pytest.approx(batch.mean)
    assert streamed.stdev == pytest.approx(batch.stdev)
    assert streamed.ci95_half_width == pytest.approx(batch.ci95_half_width)


def test_welford_edge_counts():
    from repro.analysis.stats_utils import Welford

    acc = Welford()
    with pytest.raises(ValueError):
        acc.summary()
    acc.push(3.5)
    assert acc.variance == 0.0
    assert acc.summary().ci95_half_width == 0.0


def test_bootstrap_ci_is_seeded_and_brackets_the_mean():
    from repro.analysis.stats_utils import bootstrap_ci

    values = [1.0, 2.0, 3.0, 4.0, 10.0]
    first = bootstrap_ci(values, seed=7)
    second = bootstrap_ci(values, seed=7)
    assert first == second                       # deterministic given seed
    assert first != bootstrap_ci(values, seed=8)
    lo, hi = first
    assert lo <= sum(values) / len(values) <= hi
    assert min(values) <= lo <= hi <= max(values)


def test_bootstrap_ci_degenerate_inputs():
    from repro.analysis.stats_utils import bootstrap_ci

    assert bootstrap_ci([5.0]) == (5.0, 5.0)
    assert bootstrap_ci([2.0, 2.0, 2.0]) == (2.0, 2.0)
    with pytest.raises(ValueError):
        bootstrap_ci([])
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], confidence=1.5)
