"""Tests for the Feinting worst-case analysis (paper Figure 7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.feinting import (
    acts_per_tb_window,
    attack_rounds,
    feinting_target_acts,
    feinting_tmax,
    max_acts_per_trefw,
    optimal_r1_with_reset,
    tmax_sweep,
    usable_window_time,
)
from repro.dram.config import ddr5_8000b

CONFIG = ddr5_8000b()
TREFI = CONFIG.timing.tREFI


class TestPaperFigure7Values:
    """The calibrated model reproduces the paper's numbers exactly
    (within one activation of rounding)."""

    @pytest.mark.parametrize(
        "trefi_multiple, expected",
        [(0.25, 105), (1.0, 572), (4.0, 2138)],
    )
    def test_with_reset(self, trefi_multiple, expected):
        result = feinting_tmax(CONFIG, trefi_multiple * TREFI, with_reset=True)
        assert abs(result.tmax - expected) <= 1

    @pytest.mark.parametrize(
        "trefi_multiple, expected",
        [(0.25, 118), (1.0, 736), (4.0, 3220)],
    )
    def test_without_reset(self, trefi_multiple, expected):
        result = feinting_tmax(CONFIG, trefi_multiple * TREFI, with_reset=False)
        assert abs(result.tmax - expected) <= 1


def test_acts_per_window_at_one_trefi():
    # (3900 - 410 - 350) / 52 = 60 activations.
    assert acts_per_tb_window(CONFIG, TREFI) == 60


def test_usable_window_rejects_degenerate_windows():
    with pytest.raises(ValueError):
        usable_window_time(CONFIG, 300.0)


def test_max_acts_per_trefw_near_550k():
    assert 450_000 < max_acts_per_trefw(CONFIG, TREFI) < 560_000


def test_optimal_r1_with_reset_matches_paper_scale():
    # Paper: ~8192 intervals fit in tREFW at 1-tREFI windows.
    r1 = optimal_r1_with_reset(CONFIG, TREFI)
    assert 7000 < r1 < 9000


def test_no_reset_tmax_dominates_reset():
    for multiple in (0.25, 0.5, 1.0, 2.0, 4.0):
        window = multiple * TREFI
        with_reset = feinting_tmax(CONFIG, window, with_reset=True).tmax
        without = feinting_tmax(CONFIG, window, with_reset=False).tmax
        assert without >= with_reset


def test_tmax_monotone_in_window():
    values = [
        feinting_tmax(CONFIG, m * TREFI, with_reset=True).tmax
        for m in (0.25, 0.5, 1.0, 2.0, 4.0)
    ]
    assert values == sorted(values)


def test_attack_rounds_terminates_and_validates():
    assert attack_rounds(1, 10) == 1 + 0 + 1 or attack_rounds(1, 10) >= 1
    with pytest.raises(ValueError):
        attack_rounds(0, 10)
    with pytest.raises(ValueError):
        attack_rounds(10, 0)


def test_figure8_example_matches_paper():
    """The paper's toy example (Figure 8): 40 acts/window, 4-row pool.

    Row T ends the final epoch at 83 activations in the figure; the
    recurrence gives the same: with a pool this small the target gets
    about one activation per window across ~(pool*epochs) rounds plus
    the whole final window."""
    assert feinting_target_acts(4, 40) == 83


def test_secure_for_threshold():
    result = feinting_tmax(CONFIG, TREFI, with_reset=True)
    assert result.secure_for(result.tmax + 1)
    assert not result.secure_for(result.tmax)


def test_sweep_returns_both_regimes_ordered():
    sweep = tmax_sweep(CONFIG, (0.5, 1.0))
    assert len(sweep["with_reset"]) == 2
    assert sweep["with_reset"][0].tb_window_trefi == pytest.approx(0.5)


@settings(max_examples=60, deadline=None)
@given(
    r1=st.integers(min_value=2, max_value=5000),
    acts=st.integers(min_value=2, max_value=500),
)
def test_target_acts_monotone_in_pool_size(r1, acts):
    """More decoys never hurt the attacker (Feinting property)."""
    assert feinting_target_acts(r1 + 1, acts) >= feinting_target_acts(r1, acts)


@settings(max_examples=60, deadline=None)
@given(
    r1=st.integers(min_value=1, max_value=3000),
    acts=st.integers(min_value=2, max_value=400),
)
def test_target_acts_at_least_one_window(r1, acts):
    assert feinting_target_acts(r1, acts) >= acts
