"""Tests for performance metrics helpers."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import (
    geometric_mean,
    normalized_performance,
    slowdown_percent,
    summarize_by_group,
    weighted_speedup,
)


def test_weighted_speedup_identity():
    assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)


def test_weighted_speedup_mixed():
    assert weighted_speedup([0.5, 1.0], [1.0, 2.0]) == pytest.approx(1.0)


def test_weighted_speedup_validation():
    with pytest.raises(ValueError):
        weighted_speedup([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        weighted_speedup([], [])
    with pytest.raises(ValueError):
        weighted_speedup([1.0], [0.0])


def test_normalized_performance_and_slowdown():
    norm = normalized_performance(96.6, 100.0)
    assert slowdown_percent(norm) == pytest.approx(3.4)
    with pytest.raises(ValueError):
        normalized_performance(1.0, 0.0)


def test_geometric_mean_basics():
    assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])


def test_summarize_by_group():
    per_workload = {"a": 1.0, "b": 4.0, "c": 9.0}
    groups = {"a": "g1", "b": "g1", "c": "g2"}
    summary = summarize_by_group(per_workload, groups)
    assert summary["g1"] == pytest.approx(2.0)
    assert summary["g2"] == pytest.approx(9.0)


def test_summarize_unknown_group_bucketed_as_other():
    summary = summarize_by_group({"a": 2.0}, {})
    assert summary == {"other": 2.0}


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
def test_geomean_between_min_and_max(values):
    gm = geometric_mean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9
