"""Tests for the storage-overhead accounting (paper Section 6.8)."""

from repro.dram.config import ddr5_8000b
from repro.analysis.storage import interval_register_bits, storage_overhead_bits


def test_interval_register_is_24_bits_for_paper_device():
    """Paper: a 24-bit register covers intervals up to ~tREFW/2."""
    bits = interval_register_bits(ddr5_8000b())
    assert bits == 26 or 24 <= bits <= 27


def test_controller_cost_is_a_few_bytes():
    overhead = storage_overhead_bits()
    assert overhead.controller_bytes <= 4


def test_queue_entry_fits_row_address_plus_counter():
    overhead = storage_overhead_bits()
    # 17 bits row address (128K rows) + ~10 bits count.
    assert 20 <= overhead.queue_bits_per_bank <= 40
    assert overhead.banks == 128
    assert overhead.dram_queue_bytes < 1024
