"""Tests for the storage-overhead accounting (paper Section 6.8)."""

from repro.dram.config import ddr5_8000b
from repro.analysis.storage import interval_register_bits, storage_overhead_bits


def test_interval_register_is_24_bits_for_paper_device():
    """Paper: a 24-bit register covers intervals up to ~tREFW/2."""
    bits = interval_register_bits(ddr5_8000b())
    assert bits == 26 or 24 <= bits <= 27


def test_controller_cost_is_a_few_bytes():
    overhead = storage_overhead_bits()
    assert overhead.controller_bytes <= 4


def test_queue_entry_fits_row_address_plus_counter():
    overhead = storage_overhead_bits()
    # 17 bits row address (128K rows) + ~10 bits count.
    assert 20 <= overhead.queue_bits_per_bank <= 40
    assert overhead.banks == 128
    assert overhead.dram_queue_bytes < 1024


# ----------------------------------------------------------------------
# SummaryIndex persistence regressions
# ----------------------------------------------------------------------
def test_summary_index_load_dedupes_duplicate_rows(tmp_path):
    """A writer killed between append and rewrite can leave duplicate
    rows on disk; loading must keep one entry (last wins) and flush()
    must not write the survivor twice."""
    import json

    from repro.analysis.storage import SummaryIndex

    rows = [
        {"experiment": "fig10", "status": "ok"},
        {"experiment": "fig10", "status": "error"},
        {"experiment": "fig11", "status": "ok"},
    ]
    (tmp_path / "summary.json").write_text(json.dumps(rows))

    index = SummaryIndex.load(tmp_path)
    assert index.order == ["fig10", "fig11"]
    assert index.entries["fig10"]["status"] == "error"

    index.flush()
    flushed = json.loads((tmp_path / "summary.json").read_text())
    assert [row["experiment"] for row in flushed] == ["fig10", "fig11"]


def test_storage_overhead_accepts_explicit_none():
    """``config=None`` (the annotated default) must fall back to the
    paper device, same as calling with no argument."""
    assert storage_overhead_bits(None) == storage_overhead_bits()


# ----------------------------------------------------------------------
# Checksum footers + corruption quarantine
# ----------------------------------------------------------------------
def test_checksum_roundtrip_and_tamper_detection():
    from repro.analysis.storage import attach_checksum, verify_checksum

    doc = attach_checksum({"a": 1, "nested": {"b": [1, 2.5]}})
    assert verify_checksum(doc) is True
    tampered = dict(doc, a=2)
    assert verify_checksum(tampered) is False
    # Footer-less (legacy) documents are neither valid nor invalid.
    assert verify_checksum({"a": 1}) is None
    assert verify_checksum([1, 2]) is None


def test_attach_checksum_is_idempotent():
    from repro.analysis.storage import attach_checksum

    once = attach_checksum({"x": 1})
    assert attach_checksum(once) == once


def test_load_checked_json_accepts_valid_and_legacy_files(tmp_path):
    from repro.analysis.storage import (
        atomic_write_json,
        attach_checksum,
        load_checked_json,
    )

    checked = tmp_path / "checked.json"
    atomic_write_json(checked, attach_checksum({"v": 1}))
    assert load_checked_json(checked)["v"] == 1
    legacy = tmp_path / "legacy.json"
    atomic_write_json(legacy, {"v": 2})
    assert load_checked_json(legacy)["v"] == 2


def test_load_checked_json_raises_on_damage(tmp_path):
    import json

    import pytest

    from repro.analysis.storage import (
        CorruptResultError,
        attach_checksum,
        load_checked_json,
    )

    bad = tmp_path / "bad.json"
    bad.write_text("{truncated")
    with pytest.raises(CorruptResultError, match="invalid JSON"):
        load_checked_json(bad)

    stale = attach_checksum({"v": 1})
    stale["v"] = 99  # mutate after checksumming
    mismatched = tmp_path / "mismatched.json"
    mismatched.write_text(json.dumps(stale))
    with pytest.raises(CorruptResultError, match="checksum mismatch"):
        load_checked_json(mismatched)

    with pytest.raises(FileNotFoundError):  # absence is not corruption
        load_checked_json(tmp_path / "missing.json")


def test_quarantine_corrupt_uniquifies_sidecars(tmp_path):
    from repro.analysis.storage import quarantine_corrupt

    target = tmp_path / "result.json"
    target.write_text("one")
    first = quarantine_corrupt(target)
    assert first.name == "result.json.corrupt" and first.read_text() == "one"
    target.write_text("two")
    second = quarantine_corrupt(target)
    assert second.name == "result.json.corrupt.1"
    assert not target.exists()


def test_summary_index_quarantines_corrupt_file(tmp_path):
    import json

    from repro.analysis.storage import SummaryIndex

    (tmp_path / "summary.json").write_text("{nope")
    index = SummaryIndex.load(tmp_path)
    assert index.entries == {}
    assert (tmp_path / "summary.json.corrupt").exists()
    # Wrong shape (an object, not a list) is quarantined too.
    (tmp_path / "summary.json").write_text(json.dumps({"experiment": "x"}))
    assert SummaryIndex.load(tmp_path).entries == {}
    assert (tmp_path / "summary.json.corrupt.1").exists()
