"""Tests for the storage-overhead accounting (paper Section 6.8)."""

from repro.dram.config import ddr5_8000b
from repro.analysis.storage import interval_register_bits, storage_overhead_bits


def test_interval_register_is_24_bits_for_paper_device():
    """Paper: a 24-bit register covers intervals up to ~tREFW/2."""
    bits = interval_register_bits(ddr5_8000b())
    assert bits == 26 or 24 <= bits <= 27


def test_controller_cost_is_a_few_bytes():
    overhead = storage_overhead_bits()
    assert overhead.controller_bytes <= 4


def test_queue_entry_fits_row_address_plus_counter():
    overhead = storage_overhead_bits()
    # 17 bits row address (128K rows) + ~10 bits count.
    assert 20 <= overhead.queue_bits_per_bank <= 40
    assert overhead.banks == 128
    assert overhead.dram_queue_bytes < 1024


# ----------------------------------------------------------------------
# SummaryIndex persistence regressions
# ----------------------------------------------------------------------
def test_summary_index_load_dedupes_duplicate_rows(tmp_path):
    """A writer killed between append and rewrite can leave duplicate
    rows on disk; loading must keep one entry (last wins) and flush()
    must not write the survivor twice."""
    import json

    from repro.analysis.storage import SummaryIndex

    rows = [
        {"experiment": "fig10", "status": "ok"},
        {"experiment": "fig10", "status": "error"},
        {"experiment": "fig11", "status": "ok"},
    ]
    (tmp_path / "summary.json").write_text(json.dumps(rows))

    index = SummaryIndex.load(tmp_path)
    assert index.order == ["fig10", "fig11"]
    assert index.entries["fig10"]["status"] == "error"

    index.flush()
    flushed = json.loads((tmp_path / "summary.json").read_text())
    assert [row["experiment"] for row in flushed] == ["fig10", "fig11"]


def test_storage_overhead_accepts_explicit_none():
    """``config=None`` (the annotated default) must fall back to the
    paper device, same as calling with no argument."""
    assert storage_overhead_bits(None) == storage_overhead_bits()
