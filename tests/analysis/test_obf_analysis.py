"""Tests for the obfuscation-leakage analysis (Section 7.1)."""

import pytest

from repro.analysis.obfuscation_analysis import analyze, sweep_injection_rates


def test_no_injection_is_fully_distinguishable():
    leak = analyze(windows=16, inject_prob=0.0, signal_rfms=1)
    assert leak.total_variation == pytest.approx(1.0)
    assert leak.classifier_accuracy == pytest.approx(1.0)
    assert leak.bits_leaked_bound == pytest.approx(1.0)


def test_no_signal_is_indistinguishable():
    leak = analyze(windows=16, inject_prob=0.5, signal_rfms=0)
    assert leak.total_variation == pytest.approx(0.0)
    assert leak.classifier_accuracy == pytest.approx(0.5)
    assert leak.bits_leaked_bound == pytest.approx(0.0)


def test_injection_reduces_but_does_not_eliminate_leakage():
    """The paper's Section 7.1 observation."""
    no_defense = analyze(windows=64, inject_prob=0.0, signal_rfms=1)
    defended = analyze(windows=64, inject_prob=0.5, signal_rfms=1)
    assert defended.total_variation < no_defense.total_variation
    assert defended.total_variation > 0.0
    assert 0.5 < defended.classifier_accuracy < 1.0


def test_more_signal_rfms_leak_more():
    one = analyze(windows=64, inject_prob=0.5, signal_rfms=1)
    four = analyze(windows=64, inject_prob=0.5, signal_rfms=4)
    assert four.total_variation > one.total_variation


def test_longer_observation_at_fixed_signal_dilutes():
    short = analyze(windows=16, inject_prob=0.5, signal_rfms=1)
    long = analyze(windows=256, inject_prob=0.5, signal_rfms=1)
    assert long.total_variation < short.total_variation


def test_sweep_orders_by_rate():
    curve = sweep_injection_rates([0.0, 0.25, 0.5], windows=32)
    assert [c.inject_prob for c in curve] == [0.0, 0.25, 0.5]
    tvs = [c.total_variation for c in curve]
    assert tvs == sorted(tvs, reverse=True)


def test_validation():
    with pytest.raises(ValueError):
        analyze(windows=0)
    with pytest.raises(ValueError):
        analyze(signal_rfms=-1)
