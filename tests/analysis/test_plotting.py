"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plotting import bar_chart, heatmap, latency_strip, line_plot


def test_bar_chart_scales_to_peak():
    chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10, unit="%")
    lines = chart.splitlines()
    assert lines[0].endswith("1%")
    assert lines[1].count("#") == 10
    assert lines[0].count("#") == 5


def test_bar_chart_label_alignment_and_title():
    chart = bar_chart(["x", "longer"], [1, 1], title="T")
    lines = chart.splitlines()
    assert lines[0] == "T"
    assert lines[1].index("|") == lines[2].index("|")


def test_bar_chart_validates_lengths():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_bar_chart_empty_returns_title():
    assert bar_chart([], [], title="empty") == "empty"


def test_line_plot_contains_all_series_glyphs():
    plot = line_plot(
        {"s1": [(0, 1), (1, 2)], "s2": [(0, 2), (1, 4)]}, width=20, height=6
    )
    assert "o" in plot and "x" in plot
    assert "o=s1" in plot and "x=s2" in plot


def test_line_plot_log_scale_annotated():
    plot = line_plot({"s": [(1, 10), (2, 1000)]}, logy=True)
    assert "(log y)" in plot


def test_line_plot_single_point_does_not_crash():
    assert line_plot({"s": [(1.0, 1.0)]})


def test_heatmap_peak_is_darkest():
    out = heatmap([[0.0, 1.0], [0.5, 0.25]], row_labels=["r0", "r1"])
    first_row = out.splitlines()[0]
    assert "@" in first_row          # the 1.0 cell
    assert first_row.startswith("r0")


def test_heatmap_empty_returns_title():
    assert heatmap([], title="none") == "none"


def test_latency_strip_marks_spikes():
    times = [0.0, 500.0, 1000.0, 1500.0]
    lats = [20.0, 20.0, 400.0, 20.0]
    strip = latency_strip(times, lats, buckets=8, title="probe")
    assert "^" in strip
    assert strip.splitlines()[0] == "probe"


def test_latency_strip_empty():
    assert latency_strip([], [], title="t") == "t"
