"""Tests for the declarative SystemConfig and the component registries.

Covers the contract the campaign/result machinery depends on:
dict/JSON round-trips, default-omission (the default config must
serialize to ``{}``), content-hash stability of pre-refactor scenario
IDs, registry error-message parity, and component construction.
"""

import json

import pytest

from repro.analysis.storage import content_key
from repro.campaigns.scenario import Scenario
from repro.config import DEFAULT_SYSTEM, SystemConfig
from repro.controller.scheduler import FcfsScheduler, FrFcfsScheduler
from repro.dram.address import LinearMapping, MopMapping
from repro.dram.config import ddr5_8000b
from repro.dram.refresh import RefreshScheduler, StaggeredRefreshScheduler


# ----------------------------------------------------------------------
# Round-trips and default omission
# ----------------------------------------------------------------------
def test_default_config_serializes_to_empty_dict():
    assert SystemConfig().to_dict() == {}
    assert DEFAULT_SYSTEM.is_default()
    assert SystemConfig.from_dict({}) == SystemConfig()


def test_round_trip_preserves_every_field():
    config = SystemConfig(
        channels=4,
        scheduler="fr_fcfs_cap",
        mapping="linear",
        refresh="staggered",
        page_policy="closed",
        scheduler_params={"batch": 4},
    )
    spec = config.to_dict()
    assert spec == {
        "channels": 4,
        "scheduler": "fr_fcfs_cap",
        "mapping": "linear",
        "refresh": "staggered",
        "page_policy": "closed",
        "scheduler_params": {"batch": 4},
    }
    assert SystemConfig.from_dict(spec) == config
    # JSON round-trip: the canonical dict must be JSON-able.
    assert SystemConfig.from_dict(json.loads(json.dumps(spec))) == config


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown system config keys"):
        SystemConfig.from_dict({"sched": "fcfs"})


def test_content_hash_is_stable_and_default_insensitive():
    # Spelling a field at its default must not move the hash: a config
    # built with explicit defaults hashes like the bare default.
    assert (
        SystemConfig(scheduler="fr_fcfs").content_hash
        == SystemConfig().content_hash
    )
    assert (
        SystemConfig(scheduler="fcfs").content_hash
        != SystemConfig().content_hash
    )
    # The hash is the content key of the canonical dict — process- and
    # interpreter-stable, like Scenario.scenario_id.
    assert SystemConfig().content_hash == content_key({})[:12]


def test_validate_rejects_unknown_components():
    for field, kwargs in (
        ("scheduler", {"scheduler": "round_robin"}),
        ("mapping", {"mapping": "hashed"}),
        ("refresh", {"refresh": "adaptive"}),
        ("page_policy", {"page_policy": "lazy"}),
    ):
        with pytest.raises(ValueError, match=f"'{field}'"):
            SystemConfig(**kwargs).validate()
    with pytest.raises(ValueError, match="channels"):
        SystemConfig(channels=0).validate()


# ----------------------------------------------------------------------
# Registry error-message parity (scheduler/mapping/refresh/mitigation)
# ----------------------------------------------------------------------
def test_registry_errors_share_one_shape():
    from repro import mitigations
    from repro.controller.scheduler import SCHEDULERS
    from repro.dram.address import MAPPINGS
    from repro.dram.refresh import REFRESH_POLICIES

    cases = [
        (SCHEDULERS, "scheduler", "fr_fcfs"),
        (MAPPINGS, "mapping", "mop"),
        (REFRESH_POLICIES, "refresh", "periodic"),
        (mitigations.MITIGATIONS, "mitigation", "tprac"),
    ]
    for registry, field, known in cases:
        with pytest.raises(ValueError) as excinfo:
            registry.get("definitely_not_registered")
        message = str(excinfo.value)
        assert f"(config field {field!r})" in message
        assert known in message  # lists the names that would have worked


def test_registry_rejects_double_registration():
    from repro.controller.scheduler import SCHEDULERS

    with pytest.raises(ValueError, match="already registered"):
        SCHEDULERS.register("fr_fcfs", FrFcfsScheduler)


# ----------------------------------------------------------------------
# Component construction
# ----------------------------------------------------------------------
def test_component_factories_build_the_named_components():
    org = ddr5_8000b().organization
    assert isinstance(SystemConfig().make_mapping(org), MopMapping)
    assert isinstance(
        SystemConfig(mapping="linear").make_mapping(org), LinearMapping
    )
    assert isinstance(SystemConfig().make_scheduler(4), FrFcfsScheduler)
    scheduler = SystemConfig(
        scheduler="fcfs", scheduler_params={"queue_depth": 8}
    ).make_scheduler(4)
    assert isinstance(scheduler, FcfsScheduler)
    assert scheduler.queue_depth == 8


def test_refresh_factory_and_staggered_phase():
    from repro.core.engine import Engine
    from repro.dram.rank import Channel

    config = ddr5_8000b()
    refresh = SystemConfig().make_refresh(Engine(), Channel(config), config)
    assert type(refresh) is RefreshScheduler
    multi = config.with_organization(channels=4)
    staggered = SystemConfig(channels=4, refresh="staggered").make_refresh(
        Engine(), Channel(multi, channel_id=2), multi
    )
    assert isinstance(staggered, StaggeredRefreshScheduler)


def test_staggered_refresh_matches_periodic_on_channel_zero():
    from repro.core.engine import Engine
    from repro.dram.rank import Channel

    config = ddr5_8000b()
    times = {}
    for name in ("periodic", "staggered"):
        engine = Engine()
        refresh = SystemConfig(refresh=name).make_refresh(
            engine, Channel(config), config
        )
        refresh.start()
        engine.run(until=5 * config.timing.tREFI)
        times[name] = refresh.refresh_count
    assert times["periodic"] == times["staggered"]


def test_apply_to_mirrors_the_channels_keyword():
    config = ddr5_8000b()
    assert SystemConfig().apply_to(config) is config
    assert SystemConfig(channels=2).apply_to(config).organization.channels == 2
    # The default never downgrades an explicitly multi-channel device.
    multi = config.with_organization(channels=4)
    assert SystemConfig().apply_to(multi).organization.channels == 4


# ----------------------------------------------------------------------
# Scenario integration: ID stability and the new axes
# ----------------------------------------------------------------------
def test_default_scenario_ids_match_pre_refactor_spec():
    # The canonical spec of a default-system scenario must stay exactly
    # the pre-refactor dict (no scheduler/mapping/refresh keys), so
    # persisted campaign results remain resumable.
    scenario = Scenario(attack="selftest", mitigation="tprac", nbo=128)
    pre_refactor_spec = {
        "attack": "selftest",
        "mitigation": "tprac",
        "workload": "none",
        "dram": "ddr5_8000b",
        "nbo": 128,
        "prac_level": 1,
        "params": {},
    }
    assert scenario.to_dict() == pre_refactor_spec
    assert scenario.scenario_id == content_key(pre_refactor_spec)[:12]


def test_scenario_axes_round_trip_and_move_the_id():
    base = Scenario(attack="perf", workload="433.milc")
    varied = Scenario(
        attack="perf", workload="433.milc", scheduler="fcfs", mapping="linear"
    )
    assert varied.scenario_id != base.scenario_id
    assert Scenario.from_dict(varied.to_dict()) == varied
    assert "fcfs" in varied.label and "linear" in varied.label
    system = varied.system_config()
    assert system.scheduler == "fcfs" and system.mapping == "linear"


def test_non_perf_scenarios_reject_structural_axes():
    with pytest.raises(ValueError, match="only modeled for"):
        Scenario(attack="selftest", scheduler="fcfs").validate()
    with pytest.raises(ValueError, match="only modeled for"):
        Scenario(attack="covert_count", mapping="linear").validate()


# ----------------------------------------------------------------------
# Cache / interconnect axes (PR 9) and the uniform component accessor
# ----------------------------------------------------------------------
def test_cache_axes_keep_default_dict_empty():
    # Adding the axes must not move any existing hash: the default
    # config still serializes to {} and explicit defaults are omitted.
    assert SystemConfig().to_dict() == {}
    assert (
        SystemConfig(cache="none", interconnect="none").content_hash
        == SystemConfig().content_hash
    )
    varied = SystemConfig(
        cache="l1l2",
        interconnect="crossbar",
        cache_params={"l1_ways": 4},
        interconnect_params={"ports": 8},
    )
    spec = varied.to_dict()
    assert spec == {
        "cache": "l1l2",
        "interconnect": "crossbar",
        "cache_params": {"l1_ways": 4},
        "interconnect_params": {"ports": 8},
    }
    assert SystemConfig.from_dict(json.loads(json.dumps(spec))) == varied


def test_component_accessor_is_uniform():
    from repro.config import COMPONENT_AXES

    config = SystemConfig(cache="l1l2", cache_params={"mshrs": 4})
    assert config.component("cache") == ("l1l2", {"mshrs": 4})
    assert config.component("scheduler") == ("fr_fcfs", {})
    for axis in COMPONENT_AXES:
        name, params = config.component(axis)
        assert isinstance(name, str) and isinstance(params, dict)
    with pytest.raises(ValueError, match="unknown component axis"):
        config.component("page_policy")


def test_component_registries_cover_every_axis():
    from repro.config import COMPONENT_AXES, component_registries

    registries = component_registries()
    assert set(registries) == set(COMPONENT_AXES)
    for axis, registry in registries.items():
        assert getattr(SystemConfig(), axis) in registry.available()


def test_validate_rejects_unknown_cache_and_interconnect():
    with pytest.raises(ValueError, match="'cache'"):
        SystemConfig(cache="l3").validate()
    with pytest.raises(ValueError, match="'interconnect'"):
        SystemConfig(interconnect="mesh").validate()
    with pytest.raises(ValueError, match="cache_params"):
        SystemConfig(cache_params=[1]).validate()  # type: ignore[arg-type]


def test_cache_and_interconnect_factories():
    from repro.core.engine import Engine
    from repro.cpu.hierarchy import MemoryHierarchy
    from repro.cpu.interconnect import CrossbarInterconnect

    assert SystemConfig().make_interconnect() is None
    bar = SystemConfig(
        interconnect="crossbar", interconnect_params={"ports": 2}
    ).make_interconnect()
    assert isinstance(bar, CrossbarInterconnect) and bar.ports == 2

    class _Memory:
        def enqueue(self, request):
            pass

    assert (
        SystemConfig().make_cache(Engine(), _Memory(), num_cores=1) is None
    )
    hierarchy = SystemConfig(
        cache="l1l2", cache_params={"mshrs": 4}
    ).make_cache(Engine(), _Memory(), num_cores=2, interconnect=bar)
    assert isinstance(hierarchy, MemoryHierarchy)
    assert hierarchy.mshrs == 4
    assert hierarchy.interconnect is bar


def test_eviction_set_scenarios_require_a_cache():
    with pytest.raises(ValueError, match="need a cache hierarchy"):
        Scenario(attack="eviction_set").validate()
    with pytest.raises(ValueError, match="only the cache/interconnect"):
        Scenario(
            attack="eviction_set", cache="l1l2", scheduler="fcfs"
        ).validate()
    scenario = Scenario(
        attack="eviction_set", cache="l1l2", interconnect="crossbar"
    )
    scenario.validate()
    assert "l1l2" in scenario.label and "crossbar" in scenario.label
    assert Scenario.from_dict(scenario.to_dict()) == scenario
