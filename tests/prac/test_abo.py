"""Unit tests for the Alert Back-Off protocol state machine."""

import pytest

from repro.dram.config import small_test_config
from repro.dram.rank import Channel
from repro.prac.abo import AboProtocol, AboState


def _setup(nbo=4, prac_level=1, abo_act=2):
    config = small_test_config(nbo=nbo).with_prac(
        nbo=nbo, prac_level=prac_level, abo_act=abo_act
    )
    channel = Channel(config)
    abo = AboProtocol(config, channel)
    return config, channel, abo


def test_alert_fires_at_nbo():
    config, channel, abo = _setup(nbo=4)
    bank = channel.bank(0)
    for _ in range(3):
        bank.activate(7, 0.0)
    assert abo.state is AboState.IDLE
    bank.activate(7, 0.0)
    assert abo.state is AboState.ALERTED
    assert abo.alerting_bank == 0
    assert abo.alerting_row == 7
    assert abo.alert_count == 1


def test_alert_callback_reports_bank_and_row():
    config, channel, abo = _setup(nbo=2)
    seen = []
    abo.on_alert.append(lambda t, bank, row: seen.append((bank, row)))
    channel.bank(3).activate(9, 0.0)
    channel.bank(3).activate(9, 0.0)
    assert seen == [(3, 9)]


def test_grace_activations_counted_during_alert():
    config, channel, abo = _setup(nbo=2, abo_act=2)
    bank = channel.bank(0)
    bank.activate(1, 0.0)
    bank.activate(1, 0.0)       # alert
    assert not abo.must_mitigate_now
    bank.activate(2, 0.0)
    bank.activate(2, 0.0)       # grace exhausted
    assert abo.must_mitigate_now


def test_zero_grace_means_immediate_mitigation():
    config, channel, abo = _setup(nbo=2, abo_act=0)
    bank = channel.bank(0)
    bank.activate(1, 0.0)
    bank.activate(1, 0.0)
    assert abo.must_mitigate_now


def test_rfm_burst_size_is_prac_level():
    config, channel, abo = _setup(prac_level=4)
    assert abo.rfm_burst_size() == 4


def test_mitigation_done_enters_recovery_then_idle():
    config, channel, abo = _setup(nbo=2, prac_level=2)
    bank = channel.bank(0)
    bank.activate(1, 0.0)
    bank.activate(1, 0.0)
    abo.mitigation_done()
    assert abo.state is AboState.RECOVERY
    # Drain the ABO_delay = 2 with single activations of fresh rows so
    # no counter reaches N_BO again.
    bank.activate(2, 0.0)
    assert abo.state is AboState.RECOVERY
    bank.activate(3, 0.0)
    assert abo.state is AboState.IDLE


def test_recovery_exit_activation_can_itself_alert():
    config, channel, abo = _setup(nbo=2, prac_level=1)
    bank = channel.bank(0)
    bank.activate(1, 0.0)
    bank.activate(1, 0.0)
    abo.mitigation_done()
    # Row 3 already warmed to NBO-1 through... build it fresh: one ACT
    # leaves recovery AND its count is checked in the same transition.
    bank.counters[3] = 1
    bank.activate(3, 0.0)       # count reaches 2 = NBO on recovery exit
    assert abo.state is AboState.ALERTED


def test_mitigation_done_without_alert_raises():
    config, channel, abo = _setup()
    with pytest.raises(RuntimeError):
        abo.mitigation_done()


def test_reset_returns_to_idle():
    config, channel, abo = _setup(nbo=2)
    bank = channel.bank(0)
    bank.activate(1, 0.0)
    bank.activate(1, 0.0)
    abo.reset()
    assert abo.state is AboState.IDLE
    assert abo.alerting_row is None


def test_clock_is_used_for_alert_time():
    config = small_test_config(nbo=2)
    channel = Channel(config)
    times = []
    abo = AboProtocol(config, channel, clock=lambda: 123.0)
    abo.on_alert.append(lambda t, b, r: times.append(t))
    channel.bank(0).activate(1, 0.0)
    channel.bank(0).activate(1, 0.0)
    assert times == [123.0]
