"""Package marker: gives test modules unique import names."""
