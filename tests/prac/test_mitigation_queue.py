"""Unit and property tests for the mitigation queue designs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.prac.mitigation_queue import (
    FifoMitigationQueue,
    PriorityMitigationQueue,
    SingleEntryFrequencyQueue,
    make_queue,
)


class TestSingleEntry:
    def test_tracks_most_activated_row(self):
        queue = SingleEntryFrequencyQueue()
        queue.observe(1, 5)
        queue.observe(2, 3)
        assert queue.peek() == (1, 5)

    def test_replaces_on_strictly_higher_count(self):
        queue = SingleEntryFrequencyQueue()
        queue.observe(1, 5)
        queue.observe(2, 6)
        assert queue.peek() == (2, 6)

    def test_tie_keeps_incumbent_like_paper_fig8(self):
        # Row C enters first at 43; Row T reaching 43 must NOT displace it.
        queue = SingleEntryFrequencyQueue()
        queue.observe(12, 43)   # Row C
        queue.observe(99, 43)   # Row T, equal count
        assert queue.peek() == (12, 43)

    def test_same_row_count_updates_in_place(self):
        queue = SingleEntryFrequencyQueue()
        queue.observe(1, 5)
        queue.observe(1, 6)
        assert queue.peek() == (1, 6)

    def test_pop_empties_queue(self):
        queue = SingleEntryFrequencyQueue()
        queue.observe(1, 5)
        assert queue.pop_victim() == 1
        assert queue.pop_victim() is None
        assert len(queue) == 0

    def test_drop_only_matching_row(self):
        queue = SingleEntryFrequencyQueue()
        queue.observe(1, 5)
        queue.drop(2)
        assert queue.peek() == (1, 5)
        queue.drop(1)
        assert queue.peek() is None

    def test_clear(self):
        queue = SingleEntryFrequencyQueue()
        queue.observe(1, 5)
        queue.clear()
        assert len(queue) == 0

    @settings(max_examples=100, deadline=None)
    @given(
        observations=st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 1000)), min_size=1
        )
    )
    def test_always_holds_a_maximal_count_seen(self, observations):
        """Invariant: the stored count is the max over current counts."""
        queue = SingleEntryFrequencyQueue()
        latest = {}
        for row, count in observations:
            # Counts per row must be non-decreasing like real counters.
            count = max(count, latest.get(row, 0) + 1)
            latest[row] = count
            queue.observe(row, count)
        stored = queue.peek()
        assert stored is not None
        assert stored[1] == max(latest.values())


class TestPriorityQueue:
    def test_pops_highest_count_first(self):
        queue = PriorityMitigationQueue(capacity=3)
        queue.observe(1, 10)
        queue.observe(2, 30)
        queue.observe(3, 20)
        assert queue.pop_victim() == 2
        assert queue.pop_victim() == 3
        assert queue.pop_victim() == 1
        assert queue.pop_victim() is None

    def test_overflow_evicts_weakest(self):
        queue = PriorityMitigationQueue(capacity=2)
        queue.observe(1, 10)
        queue.observe(2, 20)
        queue.observe(3, 15)   # evicts row 1 (count 10)
        assert sorted(r for r, _ in [queue.peek()]) == [2]
        queue.drop(2)
        assert queue.peek() == (3, 15)

    def test_overflow_ignores_weaker_newcomer(self):
        queue = PriorityMitigationQueue(capacity=2)
        queue.observe(1, 10)
        queue.observe(2, 20)
        queue.observe(3, 5)
        assert len(queue) == 2
        assert queue.pop_victim() == 2
        assert queue.pop_victim() == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PriorityMitigationQueue(capacity=0)


class TestFifoQueue:
    def test_insertion_order_pop(self):
        queue = FifoMitigationQueue(capacity=3)
        queue.observe(5, 1)
        queue.observe(6, 2)
        assert queue.pop_victim() == 5

    def test_full_fifo_drops_newcomers(self):
        """The exploitable flaw: decoys fill the FIFO, aggressor dropped."""
        queue = FifoMitigationQueue(capacity=2)
        queue.observe(1, 1)
        queue.observe(2, 1)
        queue.observe(99, 1000)   # the actual aggressor is ignored
        assert len(queue) == 2
        assert queue.pop_victim() == 1
        assert queue.pop_victim() == 2
        assert queue.pop_victim() is None

    def test_threshold_filters_light_rows(self):
        queue = FifoMitigationQueue(capacity=4, threshold=10)
        queue.observe(1, 9)
        assert len(queue) == 0
        queue.observe(1, 10)
        assert len(queue) == 1


def test_factory_builds_each_kind():
    assert isinstance(make_queue("single"), SingleEntryFrequencyQueue)
    assert isinstance(make_queue("priority", capacity=8), PriorityMitigationQueue)
    assert isinstance(make_queue("fifo"), FifoMitigationQueue)
    with pytest.raises(ValueError):
        make_queue("lru")
