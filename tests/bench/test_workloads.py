"""Unit tests for the pinned bench workload registry."""

import pytest

from repro import bench
from repro.bench.workloads import WORKLOADS


def test_registry_names_are_stable():
    assert bench.workload_names() == [
        "perf_multi_core",
        "perf_single_core",
        "perf_multi_channel",
        "perf_cached",
        "perf_batched",
        "perf_parallel",
        "perf_parallel_event",
        "campaign_smoke",
        "scheduler_pick",
        "scheduler_pick_fcfs",
        "scheduler_pick_fr_fcfs_cap",
    ]


def test_every_registered_scheduler_has_a_pick_workload():
    from repro.controller.scheduler import SCHEDULERS

    for name in SCHEDULERS.available():
        expected = (
            "scheduler_pick" if name == "fr_fcfs" else f"scheduler_pick_{name}"
        )
        assert expected in WORKLOADS


def test_scheduler_pick_variants_measure_picks():
    for name in ("scheduler_pick_fcfs", "scheduler_pick_fr_fcfs_cap"):
        measurement = bench.get_workload(name).run()
        assert measurement.unit == "picks"
        assert measurement.work_units > 0


def test_exactly_one_acceptance_workload_and_it_is_the_perf_shape():
    acceptance = [w for w in WORKLOADS.values() if w.acceptance]
    assert [w.name for w in acceptance] == ["perf_multi_core"]


def test_get_workload_unknown_raises_with_names():
    with pytest.raises(KeyError, match="perf_multi_core"):
        bench.get_workload("nope")


def test_scheduler_pick_microbench_measures_picks():
    measurement = bench.get_workload("scheduler_pick").run()
    assert measurement.unit == "picks"
    assert measurement.work_units > 0
    assert measurement.wall_seconds > 0
    assert measurement.events == 0  # no engine in the microbench


@pytest.mark.slow
def test_perf_single_core_measures_engine_telemetry():
    measurement = bench.get_workload("perf_single_core").run()
    assert measurement.unit == "requests"
    assert measurement.work_units == 1500
    assert measurement.events > measurement.work_units  # >1 event/request
    assert measurement.sim_ns > 0


@pytest.mark.slow
def test_campaign_smoke_probe_collects_both_systems():
    measurement = bench.get_workload("campaign_smoke").run()
    # Baseline + mitigated systems at 2 cores x 600 requests each.
    assert measurement.work_units == 2 * 2 * 600
    assert measurement.events > 0
    assert measurement.sim_ns > 0


def test_campaign_smoke_restores_probe_hook():
    from repro.campaigns import runners

    before = runners.system_probe
    bench.get_workload("campaign_smoke").run()
    assert runners.system_probe is before
