"""Unit tests for the bench measurement harness."""

import pytest

from repro import bench
from repro.bench import harness


def test_measure_workload_shapes_the_result_block():
    block = bench.measure_workload("scheduler_pick", reps=2, warmup=0)
    assert block["reps"] == 2
    assert block["warmup"] == 0
    assert block["unit"] == "picks"
    assert len(block["wall_seconds_all"]) == 2
    assert block["wall_seconds_best"] == min(block["wall_seconds_all"])
    assert block["units_per_sec"] > 0
    # the microbench has no engine, so no events_per_sec key
    assert "events_per_sec" not in block


def test_measure_workload_rejects_nonpositive_reps():
    with pytest.raises(ValueError):
        bench.measure_workload("scheduler_pick", reps=0)


def test_run_bench_selects_workloads_and_stamps_metadata():
    report = bench.run_bench(["scheduler_pick"], reps=1, warmup=0, rev="test-rev")
    assert report["schema"] == "repro-bench-v1"
    assert report["rev"] == "test-rev"
    assert list(report["workloads"]) == ["scheduler_pick"]
    assert report["python"]
    assert report["timestamp"] > 0


def test_detect_revision_falls_back_to_version(monkeypatch):
    monkeypatch.setattr(harness, "git_describe", lambda: None)
    from repro import __version__

    assert harness.detect_revision() == f"v{__version__}"
