"""Unit tests for BENCH json persistence, baselines, and comparisons."""

import json

from repro import bench


def _report(rev, events_per_sec, timestamp=1.0, acceptance=True):
    return {
        "schema": "repro-bench-v1",
        "rev": rev,
        "timestamp": timestamp,
        "workloads": {
            "perf_multi_core": {
                "title": "t",
                "acceptance": acceptance,
                "reps": 1,
                "unit": "requests",
                "work_units": 10,
                "events": 100,
                "sim_ns": 5.0,
                "wall_seconds_best": 0.1,
                "units_per_sec": 100.0,
                "events_per_sec": events_per_sec,
            }
        },
    }


def test_bench_filename_mangles_hostile_characters():
    assert bench.bench_filename("abc1234") == "BENCH_abc1234.json"
    assert bench.bench_filename("a/b c") == "BENCH_a-b-c.json"
    assert bench.bench_filename("abc1234-dirty") == "BENCH_abc1234-dirty.json"


def test_write_and_load_roundtrip(tmp_path):
    path = bench.write_report(_report("r1", 1000.0), tmp_path)
    assert path.name == "BENCH_r1.json"
    assert bench.load_report(path)["rev"] == "r1"


def test_find_baseline_picks_newest_and_excludes_current_rev(tmp_path):
    bench.write_report(_report("old", 500.0, timestamp=1.0), tmp_path)
    bench.write_report(_report("new", 800.0, timestamp=2.0), tmp_path)
    bench.write_report(_report("cur", 900.0, timestamp=3.0), tmp_path)
    baseline = bench.find_baseline(tmp_path, exclude_rev="cur")
    assert baseline["rev"] == "new"
    assert bench.find_baseline(tmp_path)["rev"] == "cur"


def test_find_baseline_handles_missing_dir_and_junk(tmp_path):
    assert bench.find_baseline(tmp_path / "absent") is None
    (tmp_path / "BENCH_junk.json").write_text("{not json")
    (tmp_path / "BENCH_list.json").write_text(json.dumps([1, 2]))
    assert bench.find_baseline(tmp_path) is None


def test_compare_computes_ratio_without_warning_on_speedup():
    comparison = bench.compare(_report("cur", 3000.0), _report("base", 1000.0))
    assert comparison["baseline_rev"] == "base"
    assert comparison["ratios"]["perf_multi_core"] == 3.0
    assert comparison["warnings"] == []


def test_compare_warns_on_regression_beyond_threshold():
    comparison = bench.compare(_report("cur", 700.0), _report("base", 1000.0))
    assert len(comparison["warnings"]) == 1
    assert "below" in comparison["warnings"][0]


def test_compare_tolerates_small_noise():
    comparison = bench.compare(_report("cur", 850.0), _report("base", 1000.0))
    assert comparison["warnings"] == []


def test_format_report_renders_rates_and_comparison():
    report = _report("cur", 3000.0)
    report["comparison"] = bench.compare(report, _report("base", 1000.0))
    text = bench.format_report(report)
    assert "perf_multi_core" in text
    assert "3.00x vs baseline" in text
    assert "no regression" in text
