"""Tests for synthetic trace generation."""


from repro.cpu.trace import total_instructions
from repro.workloads.catalog import get_workload
from repro.workloads.synthetic import (
    SyntheticWorkload,
    generate_trace,
    homogeneous_traces,
)


def test_trace_is_deterministic_per_seed():
    a = generate_trace("433.milc", 200, seed=1)
    b = generate_trace("433.milc", 200, seed=1)
    assert a == b


def test_different_seeds_differ():
    a = generate_trace("433.milc", 200, seed=1)
    b = generate_trace("433.milc", 200, seed=2)
    assert a != b


def test_addresses_stay_within_core_footprint():
    spec = get_workload("401.bzip2")
    workload = SyntheticWorkload(spec, core_offset=3)
    trace = workload.generate(500)
    lo = workload.base
    hi = workload.base + workload.footprint_bytes
    assert all(lo <= r.phys_addr < hi for r in trace)


def test_core_offsets_are_disjoint():
    t0 = generate_trace("401.bzip2", 300, core_offset=0)
    t1 = generate_trace("401.bzip2", 300, core_offset=1)
    a0 = {r.phys_addr for r in t0}
    a1 = {r.phys_addr for r in t1}
    assert not (a0 & a1)


def test_gap_density_tracks_rbmpki():
    """Higher-RBMPKI workloads access memory more often per instruction."""
    heavy = generate_trace("429.mcf", 2000)
    light = generate_trace("453.povray", 2000)
    heavy_rate = 2000 / total_instructions(heavy) * 1000
    light_rate = 2000 / total_instructions(light) * 1000
    assert heavy_rate > 20 * light_rate


def test_measured_rbmpki_in_category_band():
    """Generated density matches the target within a factor of 2."""
    for name in ("433.milc", "401.bzip2"):
        spec = get_workload(name)
        trace = generate_trace(name, 3000)
        accesses_pki = 3000 / total_instructions(trace) * 1000
        target = spec.rbmpki / (1 - spec.row_locality)
        assert target / 2 < accesses_pki < target * 2


def test_write_fraction_approximated():
    spec = get_workload("470.lbm")
    trace = generate_trace("470.lbm", 4000)
    frac = sum(r.is_write for r in trace) / len(trace)
    assert abs(frac - spec.write_fraction) < 0.05


def test_locality_produces_sequential_runs():
    trace = generate_trace("410.bwaves", 2000)   # locality 0.55
    sequential = sum(
        1
        for prev, cur in zip(trace, trace[1:])
        if cur.phys_addr == prev.phys_addr + 64
    )
    assert sequential / len(trace) > 0.3


def test_homogeneous_traces_shape():
    traces = homogeneous_traces("433.milc", cores=4, num_accesses=50)
    assert len(traces) == 4
    assert all(len(t) == 50 for t in traces)
