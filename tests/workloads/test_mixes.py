"""Tests for heterogeneous workload mixes."""

import pytest

from repro.workloads.mixes import (
    NAMED_MIXES,
    cloudsuite_mix,
    heterogeneous_traces,
    named_mix,
)


def test_heterogeneous_traces_one_per_name():
    traces = heterogeneous_traces(["429.mcf", "453.povray"], num_accesses=100)
    assert len(traces) == 2
    assert all(len(t) == 100 for t in traces)


def test_heterogeneous_footprints_disjoint():
    traces = heterogeneous_traces(["429.mcf", "429.mcf"], num_accesses=200)
    a = {r.phys_addr for r in traces[0]}
    b = {r.phys_addr for r in traces[1]}
    assert not (a & b)


def test_intensity_difference_visible_in_mix():
    traces = heterogeneous_traces(["429.mcf", "453.povray"], num_accesses=300)
    mcf_insts = sum(r.gap_insts + 1 for r in traces[0])
    povray_insts = sum(r.gap_insts + 1 for r in traces[1])
    assert povray_insts > 20 * mcf_insts


def test_cloudsuite_mix_has_four_threads():
    traces = cloudsuite_mix(num_accesses=50)
    assert len(traces) == 4


def test_named_mixes_resolve():
    for name in NAMED_MIXES:
        traces = named_mix(name, num_accesses=20)
        assert len(traces) == len(NAMED_MIXES[name])


def test_unknown_mix_raises():
    with pytest.raises(KeyError):
        named_mix("mix_unknown", 10)


def test_empty_names_rejected():
    with pytest.raises(ValueError):
        heterogeneous_traces([], 10)
