"""Tests for the workload catalog (paper Table 4)."""

import pytest

from repro.workloads.catalog import (
    CATALOG,
    by_category,
    get_workload,
    workload_names,
)


def test_catalog_has_paper_scale_and_suites():
    assert len(CATALOG) >= 50
    suites = {spec.suite for spec in CATALOG.values()}
    assert suites == {"spec2006", "spec2017", "cloudsuite"}
    assert len(workload_names(suite="cloudsuite")) == 4


def test_rbmpki_matches_category_bounds():
    for spec in CATALOG.values():
        if spec.category == "H":
            assert spec.rbmpki >= 10
        elif spec.category == "M":
            assert 1 <= spec.rbmpki < 10
        else:
            assert spec.rbmpki < 1


def test_key_paper_workloads_present():
    for name in ("433.milc", "429.mcf", "470.lbm", "453.povray", "nutch"):
        assert name in CATALOG


def test_milc_has_lowest_row_locality():
    """433.milc is the paper's worst case via extra row-buffer misses."""
    milc = get_workload("433.milc")
    assert milc.row_locality == min(s.row_locality for s in CATALOG.values())


def test_by_category_partitions_catalog():
    cats = by_category()
    assert sum(len(v) for v in cats.values()) == len(CATALOG)
    assert set(cats) == {"H", "M", "L"}
    assert len(cats["H"]) >= 20


def test_filters_compose():
    high_2017 = workload_names(category="H", suite="spec2017")
    assert "519.lbm" in high_2017
    assert "433.milc" not in high_2017


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        get_workload("999.mystery")


def test_spec_validation():
    from repro.workloads.catalog import WorkloadSpec

    with pytest.raises(ValueError):
        WorkloadSpec("x", "spec2006", "X", 1.0, 0.5, 10)
    with pytest.raises(ValueError):
        WorkloadSpec("x", "spec2006", "H", 10.0, 1.0, 10)
    with pytest.raises(ValueError):
        WorkloadSpec("x", "spec2006", "H", -1.0, 0.5, 10)
