"""Property tests: whole-system invariants under randomized traffic."""

from hypothesis import given, settings, strategies as st

from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.config import small_test_config
from repro.dram.timing import TimingChecker
from repro.mitigations.base import NoMitigationPolicy
from repro.mitigations.tprac import TpracPolicy


def _drive_random(mc, accesses):
    """Replay (bank, row, is_write) tuples as a dependent chain."""
    state = {"i": 0}

    def issue(req=None):
        if state["i"] >= len(accesses):
            return
        bank, row, is_write = accesses[state["i"]]
        state["i"] += 1
        mc.enqueue(
            MemRequest(
                phys_addr=bank_address(mc, bank, row),
                is_write=is_write,
                on_complete=issue,
            )
        )

    issue()
    mc.engine.run(until=500_000_000)
    return state["i"]


ACCESS = st.tuples(
    st.integers(0, 3), st.integers(0, 12), st.booleans()
)


@settings(max_examples=20, deadline=None)
@given(accesses=st.lists(ACCESS, min_size=1, max_size=80))
def test_no_request_is_lost_or_duplicated(accesses):
    mc = MemoryController(
        Engine(), small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False, enable_refresh=False,
    )
    served = _drive_random(mc, accesses)
    assert served == len(accesses)
    assert mc.stats.requests_served == len(accesses)
    assert mc.stats.reads + mc.stats.writes == len(accesses)
    assert mc.scheduler.pending() == 0


@settings(max_examples=12, deadline=None)
@given(accesses=st.lists(ACCESS, min_size=5, max_size=60))
def test_random_traffic_is_timing_clean(accesses):
    """Any random dependent chain yields a JEDEC-legal command trace."""
    config = small_test_config(nbo=10**6).with_prac(nbo=10**6)
    mc = MemoryController(
        Engine(), config, policy=TpracPolicy(tb_window=3000.0),
        enable_refresh=True, log_commands=True,
    )
    _drive_random(mc, accesses)
    checker = TimingChecker(config)
    checker.check(mc.command_log)
    assert checker.ok, checker.violations[:3]


@settings(max_examples=12, deadline=None)
@given(
    accesses=st.lists(ACCESS, min_size=1, max_size=60),
    window=st.floats(min_value=800.0, max_value=6000.0),
)
def test_tprac_counters_bounded_by_window_capacity(accesses, window):
    """No counter can exceed what fits between two TB-RFM pops plus the
    pre-existing backlog — and with the queue always tracking the max,
    the peak stays below 2x the per-window activation capacity once the
    defense is active."""
    config = small_test_config(nbo=10**6).with_prac(nbo=10**6)
    mc = MemoryController(
        Engine(), config, policy=TpracPolicy(tb_window=window),
        enable_refresh=False,
    )
    _drive_random(mc, accesses * 4)
    peak = max(
        (max(bank.counters.values(), default=0) for bank in mc.channel),
        default=0,
    )
    acts_per_window = window / 70.0
    assert peak <= max(2 * acts_per_window, len(accesses) * 4)
