"""Cross-cutting property-based tests on simulator invariants."""

from hypothesis import given, settings, strategies as st

from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.commands import RfmProvenance
from repro.dram.config import small_test_config
from repro.mitigations.base import NoMitigationPolicy
from repro.mitigations.tprac import TpracPolicy
from repro.prac.mitigation_queue import SingleEntryFrequencyQueue


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(st.integers(0, 30), min_size=1, max_size=60),
)
def test_counters_equal_activation_events(rows):
    """Sum of PRAC counters == number of ACT commands issued."""
    mc = MemoryController(
        Engine(), small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False, enable_refresh=False,
    )
    addrs = [_row_addr(mc, row) for row in rows]
    state = {"i": 0}

    def issue(req=None):
        if state["i"] >= len(addrs):
            return
        addr = addrs[state["i"]]
        state["i"] += 1
        mc.enqueue(MemRequest(phys_addr=addr, on_complete=issue))

    issue()
    mc.engine.run(until=10_000_000)
    bank = mc.channel.bank(0)
    assert sum(bank.counters.values()) == bank.stats.activations


def _row_addr(mc, row):
    from repro.dram.address import DramAddress

    return mc.mapping.encode(DramAddress(0, 0, 0, 0, row, 0))


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(st.integers(0, 10), min_size=2, max_size=40),
)
def test_completion_times_never_decrease_per_bank(rows):
    """Requests to one bank complete in service order."""
    mc = MemoryController(
        Engine(), small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False, enable_refresh=False,
    )
    done = []
    state = {"i": 0}

    def issue(req=None):
        if req is not None:
            done.append(req.done_time)
        if state["i"] >= len(rows):
            return
        addr = _row_addr(mc, rows[state["i"]])
        state["i"] += 1
        mc.enqueue(MemRequest(phys_addr=addr, on_complete=issue))

    issue()
    mc.engine.run(until=10_000_000)
    assert done == sorted(done)
    assert len(done) == len(rows)


@settings(max_examples=15, deadline=None)
@given(window=st.floats(min_value=500.0, max_value=20_000.0))
def test_tb_rfm_count_matches_elapsed_windows(window):
    """TB-RFMs are a pure function of time: count == floor(T / window)."""
    mc = MemoryController(
        Engine(), small_test_config(), policy=TpracPolicy(tb_window=window),
        enable_abo=False, enable_refresh=False,
    )
    horizon = 10 * window + 250.0
    mc.engine.run(until=horizon)
    expected = int(horizon // window)
    assert abs(mc.stats.rfm_count(RfmProvenance.TB) - expected) <= 1


@settings(max_examples=40, deadline=None)
@given(
    observations=st.lists(
        st.tuples(st.integers(0, 8), st.integers(1, 100)), min_size=1, max_size=50
    )
)
def test_single_entry_queue_never_underestimates(observations):
    """The queue's stored count >= every observation it accepted last."""
    queue = SingleEntryFrequencyQueue()
    for row, count in observations:
        queue.observe(row, count)
        peeked = queue.peek()
        assert peeked is not None
        # The stored count can only grow or track the stored row.
        assert peeked[1] >= 1
