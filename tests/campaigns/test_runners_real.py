"""Real-simulator trial kinds: the attack×defense composition is live.

These run full event-driven simulations (small budgets, sub-second
each) and assert the *semantics* the campaign exists to measure: the
PRACLeak attacks succeed against ABO-Only and degrade under TPRAC.
"""


from repro.campaigns.runners import run_trial
from repro.campaigns.scenario import Scenario


def test_covert_channel_clean_on_abo_only_and_degraded_by_tprac():
    undefended = run_trial(
        Scenario(attack="covert_activity", mitigation="abo_only",
                 nbo=128, params={"symbols": 6}),
        seed=1,
    )
    defended = run_trial(
        Scenario(attack="covert_activity", mitigation="tprac",
                 nbo=128, params={"symbols": 6}),
        seed=1,
    )
    assert undefended["error_rate"] == 0.0
    assert undefended["bitrate_kbps"] > 10.0
    # TPRAC's timing-based RFMs are key-independent noise: the channel
    # must lose information (strictly more symbol errors).
    assert defended["error_rate"] > undefended["error_rate"]


def test_aes_side_channel_recovers_nibble_against_abo_only():
    metrics = run_trial(
        Scenario(attack="aes_side_channel", mitigation="abo_only",
                 nbo=128, params={"encryptions": 150}),
        seed=1,
    )
    assert metrics["success"] == 1.0


def test_perf_trial_reports_normalized_slowdown():
    metrics = run_trial(
        Scenario(attack="perf", mitigation="tprac", workload="453.povray",
                 nbo=1024, params={"requests_per_core": 400}),
        seed=1,
    )
    assert 0.5 < metrics["normalized_perf"] <= 1.0
    assert metrics["rfms"] > 0


def test_covert_trial_accepts_background_workload_noise():
    metrics = run_trial(
        Scenario(attack="covert_activity", mitigation="abo_only",
                 workload="401.bzip2", nbo=128,
                 params={"symbols": 4, "noise_accesses": 50}),
        seed=2,
    )
    assert set(metrics) == {"error_rate", "bitrate_kbps", "period_us", "symbols"}
    assert metrics["symbols"] == 4.0
