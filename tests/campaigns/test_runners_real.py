"""Real-simulator trial kinds: the attack×defense composition is live.

These run full event-driven simulations (small budgets, sub-second
each) and assert the *semantics* the campaign exists to measure: the
PRACLeak attacks succeed against ABO-Only and degrade under TPRAC.
"""


from repro.campaigns.runners import run_trial
from repro.campaigns.scenario import Scenario


def test_covert_channel_clean_on_abo_only_and_degraded_by_tprac():
    undefended = run_trial(
        Scenario(attack="covert_activity", mitigation="abo_only",
                 nbo=128, params={"symbols": 6}),
        seed=1,
    )
    defended = run_trial(
        Scenario(attack="covert_activity", mitigation="tprac",
                 nbo=128, params={"symbols": 6}),
        seed=1,
    )
    assert undefended["error_rate"] == 0.0
    assert undefended["bitrate_kbps"] > 10.0
    # TPRAC's timing-based RFMs are key-independent noise: the channel
    # must lose information (strictly more symbol errors).
    assert defended["error_rate"] > undefended["error_rate"]


def test_aes_side_channel_recovers_nibble_against_abo_only():
    metrics = run_trial(
        Scenario(attack="aes_side_channel", mitigation="abo_only",
                 nbo=128, params={"encryptions": 150}),
        seed=1,
    )
    assert metrics["success"] == 1.0


def test_perf_trial_reports_normalized_slowdown():
    metrics = run_trial(
        Scenario(attack="perf", mitigation="tprac", workload="453.povray",
                 nbo=1024, params={"requests_per_core": 400}),
        seed=1,
    )
    assert 0.5 < metrics["normalized_perf"] <= 1.0
    assert metrics["rfms"] > 0


def test_eviction_set_covert_channel_decodes_through_l1l2():
    metrics = run_trial(
        Scenario(attack="eviction_set", mitigation="abo_only",
                 cache="l1l2", params={"symbols": 12}),
        seed=1,
    )
    # Prime+probe through the shared L2: the channel must transmit
    # most symbols correctly and the probe must straddle the threshold
    # (DRAM-bound probes, not L1 hits).
    assert metrics["symbols"] == 12.0
    assert metrics["error_rate"] <= 0.25
    assert metrics["bitrate_kbps"] > 0.0
    assert metrics["dram_reads"] > 0
    assert "interconnect_occupancy" not in metrics


def test_eviction_set_trial_reports_interconnect_stats():
    metrics = run_trial(
        Scenario(attack="eviction_set", mitigation="abo_only",
                 cache="l1l2", interconnect="crossbar",
                 params={"symbols": 8}),
        seed=3,
    )
    assert metrics["interconnect_occupancy"] >= 0.0
    assert metrics["error_rate"] <= 0.25


def test_perf_trial_reports_cache_and_interconnect_metrics():
    metrics = run_trial(
        Scenario(attack="perf", mitigation="tprac", workload="453.povray",
                 nbo=1024, cache="l1l2", interconnect="crossbar",
                 params={"requests_per_core": 400}),
        seed=1,
    )
    assert 0.0 <= metrics["l1_hit_rate"] <= 1.0
    assert 0.0 <= metrics["l2_hit_rate"] <= 1.0
    assert metrics["interconnect_transfers"] > 0
    assert "cache_writebacks" in metrics and "mshr_merges" in metrics


def test_covert_trial_accepts_background_workload_noise():
    metrics = run_trial(
        Scenario(attack="covert_activity", mitigation="abo_only",
                 workload="401.bzip2", nbo=128,
                 params={"symbols": 4, "noise_accesses": 50}),
        seed=2,
    )
    assert set(metrics) == {"error_rate", "bitrate_kbps", "period_us", "symbols"}
    assert metrics["symbols"] == 4.0
