"""The Monte Carlo trial engine: isolation, persistence, resume, stats."""

import json

import pytest

from repro.campaigns.grid import expand_grid
from repro.campaigns.runners import run_trial
from repro.campaigns.scenario import Scenario
from repro.campaigns.trials import (
    aggregate_metrics,
    load_campaign_index,
    load_scenario_result,
    run_campaign,
)

pytestmark = pytest.mark.smoke

SMOKE_AXES = {
    "attack": ["selftest"],
    "mitigation": ["abo_only", "tprac"],
    "nbo": [64, 128],
}


def test_campaign_runs_grid_and_persists_scenario_documents(tmp_path):
    scenarios = expand_grid(SMOKE_AXES)
    result = run_campaign(scenarios, tmp_path, trials=3, jobs=1, seed=0)
    assert set(result.statuses.values()) == {"ok"}
    assert result.scenarios_ok == 4 and not result.had_errors
    for scenario in scenarios:
        doc = load_scenario_result(result.paths[scenario.scenario_id])
        assert doc["scenario_id"] == scenario.scenario_id
        assert doc["spec"] == scenario.to_dict()
        assert doc["trials_completed"] == 3 and doc["trials_ok"] == 3
        assert [t["seed"] for t in doc["trials"]] == [0, 1, 2]
        assert doc["metrics"]["value"]["n"] == 3
        lo, hi = doc["metrics"]["value"]["bootstrap_ci95"]
        assert lo <= doc["metrics"]["value"]["mean"] <= hi
    index = load_campaign_index(tmp_path)
    assert [e["experiment"] for e in index] == [
        s.scenario_id for s in scenarios
    ]


def test_campaign_runs_on_a_process_pool(tmp_path):
    scenarios = expand_grid(SMOKE_AXES)
    result = run_campaign(scenarios, tmp_path, trials=3, jobs=2, seed=0)
    assert set(result.statuses.values()) == {"ok"}
    # Pool and inline execution must agree bit-for-bit (determinism).
    run_campaign(scenarios, tmp_path / "inline", trials=3, jobs=1)
    for scenario in scenarios:
        pooled_doc = load_scenario_result(result.paths[scenario.scenario_id])
        inline_doc = load_scenario_result(
            tmp_path / "inline" / result.paths[scenario.scenario_id].name
        )
        assert pooled_doc["metrics"] == inline_doc["metrics"]


def test_injected_crash_is_isolated_as_structured_error(tmp_path):
    scenarios = expand_grid(dict(SMOKE_AXES, crash_seeds=[1]))
    result = run_campaign(scenarios, tmp_path, trials=3, jobs=2, seed=0)
    # Every scenario still completed its other trials.
    assert set(result.statuses.values()) == {"partial"}
    assert result.had_errors
    for scenario in scenarios:
        doc = load_scenario_result(result.paths[scenario.scenario_id])
        assert doc["trials_ok"] == 2 and doc["trials_error"] == 1
        (failed,) = [t for t in doc["trials"] if t["status"] == "error"]
        assert failed["seed"] == 1
        assert failed["error"]["type"] == "RuntimeError"
        assert "injected selftest crash" in failed["error"]["message"]
        assert "traceback" in failed["error"]
        # Aggregates cover only the surviving trials.
        assert doc["metrics"]["value"]["n"] == 2
    index = load_campaign_index(tmp_path)
    assert all(e["status"] == "partial" for e in index)
    assert all(e["error"]["type"] == "RuntimeError" for e in index)


def test_resume_skips_completed_scenarios(tmp_path):
    scenarios = expand_grid(SMOKE_AXES)
    run_campaign(scenarios, tmp_path, trials=3, jobs=1, seed=0)
    resumed = run_campaign(
        scenarios, tmp_path, trials=3, jobs=1, seed=0, resume=True
    )
    assert set(resumed.statuses.values()) == {"cached"}
    assert resumed.scenarios_ok == len(scenarios)


def test_resume_reruns_on_changed_seed_trials_or_missing_file(tmp_path):
    scenarios = expand_grid(SMOKE_AXES)
    run_campaign(scenarios, tmp_path, trials=2, jobs=1, seed=0)
    # More trials requested than persisted -> re-run.
    more = run_campaign(scenarios, tmp_path, trials=3, jobs=1, seed=0, resume=True)
    assert set(more.statuses.values()) == {"ok"}
    # Different base seed -> cache key mismatch -> re-run.
    reseeded = run_campaign(
        scenarios, tmp_path, trials=3, jobs=1, seed=7, resume=True
    )
    assert set(reseeded.statuses.values()) == {"ok"}
    # Without resume, everything re-runs even if files match.
    fresh = run_campaign(scenarios, tmp_path, trials=3, jobs=1, seed=7)
    assert set(fresh.statuses.values()) == {"ok"}


def test_partial_scenarios_are_not_resumed_as_cached(tmp_path):
    scenarios = expand_grid(dict(SMOKE_AXES, crash_seeds=[0]))
    run_campaign(scenarios, tmp_path, trials=2, jobs=1, seed=0)
    again = run_campaign(
        scenarios, tmp_path, trials=2, jobs=1, seed=0, resume=True
    )
    assert set(again.statuses.values()) == {"partial"}


def test_scenario_documents_are_valid_json_mid_flush(tmp_path):
    # Atomic flush after every trial: the document on disk is always
    # parseable and internally consistent.
    scenarios = expand_grid({"attack": ["selftest"], "nbo": [64]})
    result = run_campaign(scenarios, tmp_path, trials=5, jobs=1)
    doc = json.loads(result.paths[scenarios[0].scenario_id].read_text())
    assert doc["trials_completed"] == len(doc["trials"]) == 5


def test_duplicate_scenarios_rejected(tmp_path):
    (scenario,) = expand_grid({"attack": ["selftest"]})
    with pytest.raises(ValueError, match="duplicate"):
        run_campaign([scenario, scenario], tmp_path, trials=1, jobs=1)


def test_trials_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="trials"):
        run_campaign(
            expand_grid({"attack": ["selftest"]}), tmp_path, trials=0
        )


def test_aggregate_metrics_matches_manual_mean_and_variance():
    trials = [
        {"status": "ok", "metrics": {"m": 1.0}},
        {"status": "ok", "metrics": {"m": 2.0}},
        {"status": "error", "error": {"type": "X", "message": ""}},
        {"status": "ok", "metrics": {"m": 6.0}},
    ]
    stats = aggregate_metrics(trials)["m"]
    assert stats["n"] == 3
    assert stats["mean"] == pytest.approx(3.0)
    assert stats["stdev"] == pytest.approx(2.6457513, rel=1e-6)
    lo, hi = stats["ci95"]
    assert lo < 3.0 < hi


def test_selftest_trial_is_deterministic_per_seed():
    scenario = Scenario(attack="selftest", nbo=64)
    assert run_trial(scenario, 3) == run_trial(scenario, 3)
    assert run_trial(scenario, 3) != run_trial(scenario, 4)


def test_perf_trial_requires_workload():
    with pytest.raises(ValueError, match="workload"):
        run_trial(Scenario(attack="perf", mitigation="tprac"), 0)


def test_aes_trial_rejects_unsupported_mitigation():
    with pytest.raises(ValueError, match="aes_side_channel supports"):
        run_trial(Scenario(attack="aes_side_channel", mitigation="qprac"), 0)


def test_feinting_trial_requires_tprac():
    with pytest.raises(ValueError, match="tprac"):
        run_trial(Scenario(attack="feinting", mitigation="abo_only"), 0)


def test_campaign_emits_heartbeat_and_lifecycle_events(tmp_path):
    from repro.obs.heartbeat import last_run, read_heartbeat, summarize

    scenarios = expand_grid({"attack": ["selftest"], "nbo": [64, 128]})
    seen = []
    run_campaign(
        scenarios, tmp_path, trials=2, jobs=1, seed=0,
        on_event=lambda event, fields: seen.append((event, dict(fields))),
    )
    events = [event for event, _ in seen]
    assert events[0] == "campaign.start"
    assert events[-1] == "campaign.finish"
    assert events.count("scenario.finish") == 2
    assert events.count("trial.finish") == 4

    records = read_heartbeat(tmp_path)
    assert [r["event"] for r in records] == events
    summary = summarize(last_run(records))
    assert summary["finished"] and not summary["faults"]
    assert summary["events"]["trial.finish"] == 4


def test_campaign_resume_heartbeat_appends_second_attempt(tmp_path):
    from repro.obs.heartbeat import last_run, read_heartbeat

    scenarios = expand_grid({"attack": ["selftest"], "nbo": [64]})
    run_campaign(scenarios, tmp_path, trials=2, jobs=1, seed=0)
    seen = []
    run_campaign(
        scenarios, tmp_path, trials=2, jobs=1, seed=0, resume=True,
        on_event=lambda event, fields: seen.append((event, dict(fields))),
    )
    assert ("scenario.cached", {"label": "selftest/abo_only/nbo64",
                                "trials": 2}) in [
        (event, {k: fields[k] for k in ("label", "trials") if k in fields})
        for event, fields in seen
    ]
    records = read_heartbeat(tmp_path)
    starts = [r for r in records if r["event"] == "campaign.start"]
    assert len(starts) == 2
    assert starts[0].get("resumed") is False
    assert starts[1].get("resumed") is True
    latest = last_run(records)
    assert {r["event"] for r in latest} >= {"scenario.cached", "campaign.finish"}


def test_campaign_heartbeat_can_be_disabled(tmp_path):
    scenarios = expand_grid({"attack": ["selftest"], "nbo": [64]})
    run_campaign(scenarios, tmp_path, trials=1, jobs=1, heartbeat=False)
    assert not (tmp_path / "heartbeat.jsonl").exists()
