"""The ``repro campaign`` CLI front-end."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.smoke

GRID = [
    "attack=selftest",
    "mitigation=abo_only,tprac,qprac,rfmpb",
    "nbo=64,128,256",
]


def test_campaign_list_prints_expanded_grid(capsys):
    assert main(["campaign", "--grid"] + GRID + ["--list"]) == 0
    out = capsys.readouterr().out
    assert "12 scenarios" in out
    assert "selftest/qprac/nbo128" in out


def test_campaign_runs_grid_end_to_end(tmp_path, capsys):
    out_dir = tmp_path / "camp"
    code = main(
        ["campaign", "--grid"] + GRID
        + ["--trials", "3", "--jobs", "2", "--out", str(out_dir)]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "12/12 scenarios ok (3 trials each)" in printed
    assert (out_dir / "campaign.json").exists()
    index = json.loads((out_dir / "campaign.json").read_text())
    assert len(index) == 12
    assert all(e["status"] == "ok" and e["trials_ok"] == 3 for e in index)


def test_campaign_survives_injected_crash_and_signals_failure(tmp_path, capsys):
    out_dir = tmp_path / "camp"
    code = main(
        ["campaign", "--grid"] + GRID
        + ["crash_seeds=1", "--trials", "3", "--out", str(out_dir), "--jobs", "2"]
    )
    assert code == 1                      # errors are signalled...
    printed = capsys.readouterr().out
    assert "partial" in printed           # ...but every scenario completed
    index = json.loads((out_dir / "campaign.json").read_text())
    assert len(index) == 12
    assert all(e["trials_ok"] == 2 and e["trials_error"] == 1 for e in index)


def test_campaign_resume_reports_cached(tmp_path, capsys):
    out_dir = tmp_path / "camp"
    args = ["campaign", "--grid"] + GRID + ["--trials", "2", "--out", str(out_dir)]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args + ["--resume"]) == 0
    assert "cached" in capsys.readouterr().out


def test_campaign_only_filters_scenarios(tmp_path, capsys):
    code = main(
        ["campaign", "--grid"] + GRID + ["--only", "qprac", "--list"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "3 scenarios" in out and "tprac" not in out.replace("qprac", "")


def test_campaign_only_with_no_match_errors(capsys):
    assert main(["campaign", "--grid"] + GRID + ["--only", "zzz"]) == 2
    assert "matched no scenarios" in capsys.readouterr().err


def test_campaign_bad_grid_token_errors(capsys):
    assert main(["campaign", "--grid", "nbo"]) == 2
    assert "bad grid token" in capsys.readouterr().err


def test_campaign_empty_grid_errors_instead_of_running_builtin(capsys):
    assert main(["campaign", "--grid"]) == 2
    assert "--grid given but no" in capsys.readouterr().err


def test_campaign_nonpositive_trials_errors_cleanly(capsys):
    assert main(["campaign", "--campaign", "smoke", "--trials", "0"]) == 2
    assert "trials must be positive" in capsys.readouterr().err


def test_campaign_unknown_builtin_errors(capsys):
    assert main(["campaign", "--campaign", "bogus"]) == 2
    assert "unknown campaign" in capsys.readouterr().err


def test_suite_list_prints_registry_without_running(capsys):
    assert main(["suite", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "scorecard" in out
    assert "Figure 10" in out
    assert "quick:" in out


def test_campaign_flags_rejected_on_other_commands(capsys):
    assert main(["fig7", "--trials", "3"]) == 2
    assert "--trials" in capsys.readouterr().err
    assert main(["suite", "--grid", "attack=selftest"]) == 2
    assert "--grid" in capsys.readouterr().err
    assert main(["campaign", "--full"]) == 2
    assert "--full" in capsys.readouterr().err
