"""Campaign-level resilience: corruption recovery, quarantine, interrupts."""

import json

import pytest

from repro.analysis.storage import attach_checksum, verify_checksum
from repro.campaigns import trials as trials_mod
from repro.campaigns.grid import expand_grid
from repro.campaigns.trials import load_scenario_result, run_campaign
from repro.obs.heartbeat import last_run, read_heartbeat, summarize

pytestmark = pytest.mark.smoke

AXES = {"attack": ["selftest"], "nbo": [64]}


def _scenario_path(result):
    (path,) = result.paths.values()
    return path


def _events(tmp_path):
    return [r["event"] for r in read_heartbeat(tmp_path)]


# ----------------------------------------------------------------------
# Checksummed scenario documents
# ----------------------------------------------------------------------
def test_scenario_documents_carry_valid_checksums(tmp_path):
    result = run_campaign(expand_grid(AXES), tmp_path, trials=2, jobs=1)
    doc = load_scenario_result(_scenario_path(result))
    assert verify_checksum(doc) is True


# ----------------------------------------------------------------------
# Resume-time corruption recovery
# ----------------------------------------------------------------------
def _corrupt_truncate(path):
    path.write_text(path.read_text()[: len(path.read_text()) // 2])


def _corrupt_bad_json(path):
    path.write_text("{definitely not json")


def _corrupt_checksum_mismatch(path):
    # Valid JSON, valid shape, stale checksum: a bit flip in a metric.
    doc = json.loads(path.read_text())
    doc["trials"][0]["metrics"]["value"] += 1.0
    path.write_text(json.dumps(doc, indent=2) + "\n")


@pytest.mark.parametrize(
    "corrupt",
    [_corrupt_truncate, _corrupt_bad_json, _corrupt_checksum_mismatch],
    ids=["truncated", "bad-json", "checksum-mismatch"],
)
def test_corrupt_scenario_file_is_quarantined_and_rerun(tmp_path, corrupt):
    scenarios = expand_grid(AXES)
    first = run_campaign(scenarios, tmp_path, trials=2, jobs=1, seed=0)
    path = _scenario_path(first)
    pristine = json.loads(path.read_text())
    corrupt(path)

    resumed = run_campaign(
        scenarios, tmp_path, trials=2, jobs=1, seed=0, resume=True
    )
    # Not trusted as a cache hit: the scenario re-ran...
    assert list(resumed.statuses.values()) == ["ok"]
    # ...the damaged file was preserved as a sidecar...
    sidecar = path.with_name(path.name + ".corrupt")
    assert sidecar.exists()
    # ...the re-run regenerated identical results (same seeds)...
    regenerated = json.loads(path.read_text())
    assert regenerated["metrics"] == pristine["metrics"]
    assert verify_checksum(regenerated) is True
    # ...and the recovery is visible in the heartbeat.
    assert "scenario.corrupt" in _events(tmp_path)


def test_intact_checksummed_file_still_resumes_as_cache_hit(tmp_path):
    scenarios = expand_grid(AXES)
    run_campaign(scenarios, tmp_path, trials=2, jobs=1, seed=0)
    resumed = run_campaign(
        scenarios, tmp_path, trials=2, jobs=1, seed=0, resume=True
    )
    assert list(resumed.statuses.values()) == ["cached"]


def test_legacy_document_without_checksum_is_accepted(tmp_path):
    # Pre-checksum result files must stay resumable, not be quarantined.
    scenarios = expand_grid(AXES)
    first = run_campaign(scenarios, tmp_path, trials=2, jobs=1, seed=0)
    path = _scenario_path(first)
    doc = json.loads(path.read_text())
    del doc["checksum"]
    path.write_text(json.dumps(doc, indent=2) + "\n")
    resumed = run_campaign(
        scenarios, tmp_path, trials=2, jobs=1, seed=0, resume=True
    )
    assert list(resumed.statuses.values()) == ["cached"]


def test_corrupt_campaign_index_is_quarantined(tmp_path):
    scenarios = expand_grid(AXES)
    run_campaign(scenarios, tmp_path, trials=1, jobs=1)
    (tmp_path / "campaign.json").write_text("{broken")
    run_campaign(scenarios, tmp_path, trials=1, jobs=1, resume=True)
    assert (tmp_path / "campaign.json.corrupt").exists()
    rows = json.loads((tmp_path / "campaign.json").read_text())
    assert isinstance(rows, list) and rows


# ----------------------------------------------------------------------
# Quarantined trials (persistent transient failure via flaky_seeds)
# ----------------------------------------------------------------------
def test_flaky_trial_is_quarantined_and_accounted(tmp_path):
    scenarios = expand_grid(dict(AXES, flaky_seeds=[1]))
    result = run_campaign(
        scenarios, tmp_path, trials=3, jobs=1, seed=0, retries=1
    )
    (sid,) = result.statuses
    assert result.statuses[sid] == "partial"
    doc = load_scenario_result(result.paths[sid])
    assert doc["trials_ok"] == 2
    assert doc["trials_quarantined"] == 1
    quarantined = doc["trials"][1]
    assert quarantined["status"] == "quarantined"
    assert len(quarantined["attempts"]) == 2  # retries=1 -> 2 attempts
    assert quarantined["error"]["type"] == "TransientError"
    events = _events(tmp_path)
    assert "trial.retry" in events
    assert "trial.quarantined" in events
    # The index records the quarantine like any other failure.
    rows = json.loads((tmp_path / "campaign.json").read_text())
    assert rows[0]["trials_quarantined"] == 1
    assert rows[0]["error"]["type"] == "TransientError"


def test_health_summary_counts_recovery_events(tmp_path):
    scenarios = expand_grid(dict(AXES, flaky_seeds=[0]))
    run_campaign(scenarios, tmp_path, trials=2, jobs=1, seed=0, retries=2)
    health = summarize(last_run(read_heartbeat(tmp_path)))["health"]
    assert health["retries"] == 2
    assert health["quarantined"] == 1


# ----------------------------------------------------------------------
# KeyboardInterrupt
# ----------------------------------------------------------------------
def test_interrupt_flushes_heartbeat_and_reraises(tmp_path, monkeypatch):
    def interrupted_trial(spec, seed, obs_dir=None):
        raise KeyboardInterrupt

    monkeypatch.setattr(trials_mod, "_execute_trial", interrupted_trial)
    with pytest.raises(KeyboardInterrupt):
        run_campaign(expand_grid(AXES), tmp_path, trials=2, jobs=1)
    events = _events(tmp_path)
    assert "campaign.interrupted" in events
    assert "campaign.finish" not in events
    # The index survived the abort.
    assert (tmp_path / "campaign.json").exists()
