"""Scenario spec: validation, round-trip, identity."""

import json

import pytest

from repro.campaigns.scenario import ATTACK_KINDS, Scenario

pytestmark = pytest.mark.smoke


def test_round_trips_through_dict_and_json():
    scenario = Scenario(
        attack="covert_count",
        mitigation="tprac",
        workload="433.milc",
        nbo=128,
        prac_level=2,
        params={"symbols": 4},
    )
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt == scenario
    assert rebuilt.scenario_id == scenario.scenario_id


def test_scenario_id_is_stable_content_hash():
    a = Scenario(attack="selftest", nbo=64)
    b = Scenario(attack="selftest", nbo=64)
    c = Scenario(attack="selftest", nbo=65)
    assert a.scenario_id == b.scenario_id
    assert a.scenario_id != c.scenario_id
    # params participate in identity: same axes, different tuning differ.
    assert a.with_params(x=1).scenario_id != a.scenario_id


@pytest.mark.parametrize(
    "overrides",
    [
        {"attack": "not_an_attack"},
        {"mitigation": "not_a_policy"},
        {"workload": "not_a_workload"},
        {"dram": "not_a_preset"},
        {"nbo": 0},
        {"prac_level": 3},
    ],
)
def test_validate_rejects_unknown_axis_values(overrides):
    spec = Scenario(attack="selftest").to_dict()
    spec.update(overrides)
    with pytest.raises(ValueError):
        Scenario.from_dict(spec)


def test_from_dict_rejects_unknown_keys_and_missing_attack():
    with pytest.raises(ValueError, match="unknown scenario keys"):
        Scenario.from_dict({"attack": "selftest", "victim": "aes"})
    with pytest.raises(ValueError, match="attack"):
        Scenario.from_dict({"mitigation": "tprac"})


def test_dram_config_applies_prac_knobs():
    scenario = Scenario(attack="selftest", nbo=99, prac_level=4)
    config = scenario.dram_config()
    assert config.prac.nbo == 99
    assert config.prac.prac_level == 4


def test_label_is_compact_and_distinguishing():
    plain = Scenario(attack="selftest")
    assert plain.label == "selftest/abo_only/nbo256"
    loaded = Scenario(
        attack="perf", mitigation="tprac", workload="470.lbm",
        nbo=1024, prac_level=2, dram="ddr5_4800",
    )
    for fragment in ("perf", "tprac", "470.lbm", "nbo1024", "lvl2", "ddr5_4800"):
        assert fragment in loaded.label


def test_every_attack_kind_is_a_valid_axis_value():
    for kind in ATTACK_KINDS:
        Scenario(attack=kind, mitigation="tprac", workload="470.lbm").validate()
