"""Scenario spec: validation, round-trip, identity."""

import json

import pytest

from repro.campaigns.scenario import ATTACK_KINDS, Scenario

pytestmark = pytest.mark.smoke


def test_round_trips_through_dict_and_json():
    scenario = Scenario(
        attack="covert_count",
        mitigation="tprac",
        workload="433.milc",
        nbo=128,
        prac_level=2,
        params={"symbols": 4},
    )
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt == scenario
    assert rebuilt.scenario_id == scenario.scenario_id


def test_scenario_id_is_stable_content_hash():
    a = Scenario(attack="selftest", nbo=64)
    b = Scenario(attack="selftest", nbo=64)
    c = Scenario(attack="selftest", nbo=65)
    assert a.scenario_id == b.scenario_id
    assert a.scenario_id != c.scenario_id
    # params participate in identity: same axes, different tuning differ.
    assert a.with_params(x=1).scenario_id != a.scenario_id


@pytest.mark.parametrize(
    "overrides",
    [
        {"attack": "not_an_attack"},
        {"mitigation": "not_a_policy"},
        {"workload": "not_a_workload"},
        {"dram": "not_a_preset"},
        {"nbo": 0},
        {"prac_level": 3},
    ],
)
def test_validate_rejects_unknown_axis_values(overrides):
    spec = Scenario(attack="selftest").to_dict()
    spec.update(overrides)
    with pytest.raises(ValueError):
        Scenario.from_dict(spec)


def test_from_dict_rejects_unknown_keys_and_missing_attack():
    with pytest.raises(ValueError, match="unknown scenario keys"):
        Scenario.from_dict({"attack": "selftest", "victim": "aes"})
    with pytest.raises(ValueError, match="attack"):
        Scenario.from_dict({"mitigation": "tprac"})


def test_dram_config_applies_prac_knobs():
    scenario = Scenario(attack="selftest", nbo=99, prac_level=4)
    config = scenario.dram_config()
    assert config.prac.nbo == 99
    assert config.prac.prac_level == 4


def test_label_is_compact_and_distinguishing():
    plain = Scenario(attack="selftest")
    assert plain.label == "selftest/abo_only/nbo256"
    loaded = Scenario(
        attack="perf", mitigation="tprac", workload="470.lbm",
        nbo=1024, prac_level=2, dram="ddr5_4800",
    )
    for fragment in ("perf", "tprac", "470.lbm", "nbo1024", "lvl2", "ddr5_4800"):
        assert fragment in loaded.label


def test_every_attack_kind_is_a_valid_axis_value():
    for kind in ATTACK_KINDS:
        # eviction_set lives in the cache layer: it requires cache != none.
        if kind == "eviction_set":
            Scenario(attack=kind, mitigation="tprac", cache="l1l2").validate()
            continue
        Scenario(attack=kind, mitigation="tprac", workload="470.lbm").validate()


# ----------------------------------------------------------------------
# channels axis
# ----------------------------------------------------------------------
def test_channels_axis_flows_into_dram_config_and_label():
    scenario = Scenario(attack="perf", workload="433.milc", channels=4)
    assert scenario.dram_config().organization.channels == 4
    assert "4ch" in scenario.label
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt == scenario


def test_single_channel_spec_dict_is_hash_backward_compatible():
    """channels=1 must not appear in to_dict(): persisted campaign
    results from before the multi-channel axis keep their content-hash
    identity (and stay resumable)."""
    scenario = Scenario(attack="selftest", nbo=64)
    assert "channels" not in scenario.to_dict()
    assert scenario.channels == 1
    # and a multi-channel scenario hashes differently
    perf = Scenario(attack="perf", workload="433.milc", nbo=64)
    assert (
        Scenario(
            attack="perf", workload="433.milc", nbo=64, channels=2
        ).scenario_id
        != perf.scenario_id
    )


@pytest.mark.parametrize("bad", [0, -1, 2.5])
def test_validate_rejects_bad_channel_counts(bad):
    with pytest.raises(ValueError, match="channels"):
        Scenario(attack="perf", workload="433.milc", channels=bad).validate()


def test_multi_channel_is_perf_only():
    """Attack harnesses drive one controller; channels>1 elsewhere
    would mislabel single-channel results as multi-channel."""
    with pytest.raises(ValueError, match="perf"):
        Scenario(attack="covert_activity", channels=2).validate()


def test_sanitize_axis_projects_and_keeps_hashes_stable():
    """The sanitize axis flows to SystemConfig, is omitted from the
    spec dict at its default, and is restricted to perf scenarios like
    every other non-default structural axis."""
    scenario = Scenario(attack="perf", workload="433.milc", sanitize=True)
    assert scenario.system_config().sanitize is True
    assert "sanitize" in scenario.label
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt == scenario

    default = Scenario(attack="perf", workload="433.milc")
    assert "sanitize" not in default.to_dict()
    assert default.scenario_id != scenario.scenario_id
    with pytest.raises(ValueError, match="perf"):
        Scenario(attack="covert_activity", sanitize=True).validate()
