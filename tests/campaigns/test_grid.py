"""Grid expansion and CLI token parsing."""

import pytest

from repro.campaigns.builtin import builtin_names, builtin_scenarios
from repro.campaigns.grid import expand_grid, parse_grid_tokens

pytestmark = pytest.mark.smoke


def test_expand_grid_takes_cartesian_product_in_axis_order():
    scenarios = expand_grid(
        {
            "attack": ["selftest"],
            "mitigation": ["abo_only", "tprac"],
            "nbo": [64, 128],
        }
    )
    assert len(scenarios) == 4
    assert [(s.mitigation, s.nbo) for s in scenarios] == [
        ("abo_only", 64), ("abo_only", 128), ("tprac", 64), ("tprac", 128),
    ]


def test_expansion_order_is_deterministic_and_ids_stable():
    axes = {"attack": ["selftest"], "nbo": [64, 128, 256]}
    first = [s.scenario_id for s in expand_grid(axes)]
    second = [s.scenario_id for s in expand_grid(axes)]
    assert first == second


def test_unknown_axes_become_params():
    (scenario,) = expand_grid(
        {"attack": ["selftest"], "crash_seeds": ["1+2"], "symbols": [6]}
    )
    assert scenario.params == {"crash_seeds": "1+2", "symbols": 6}


def test_grid_requires_attack_axis_and_nonempty_values():
    with pytest.raises(ValueError, match="attack"):
        expand_grid({"mitigation": ["tprac"]})
    with pytest.raises(ValueError, match="no values"):
        expand_grid({"attack": []})


def test_duplicate_scenarios_raise():
    with pytest.raises(ValueError, match="duplicate"):
        expand_grid({"attack": ["selftest", "selftest"]})


def test_invalid_axis_value_raises_at_expansion():
    with pytest.raises(ValueError, match="mitigation"):
        expand_grid({"attack": ["selftest"], "mitigation": ["bogus"]})


def test_parse_grid_tokens_coerces_types():
    axes = parse_grid_tokens(
        ["nbo=64,128", "mitigation=tprac", "inject=true,false", "rate=0.5"]
    )
    assert axes == {
        "nbo": [64, 128],
        "mitigation": ["tprac"],
        "inject": [True, False],
        "rate": [0.5],
    }


@pytest.mark.parametrize("token", ["nbo", "=64", "nbo=", ""])
def test_parse_grid_tokens_rejects_malformed(token):
    with pytest.raises(ValueError):
        parse_grid_tokens([token])


def test_parse_grid_tokens_rejects_repeated_axis():
    with pytest.raises(ValueError, match="twice"):
        parse_grid_tokens(["nbo=64", "nbo=128"])


def test_builtin_campaigns_expand():
    assert builtin_names() == ["perf", "security", "smoke"]
    security = builtin_scenarios("security")
    assert len(security) >= 12
    assert {s.attack for s in security} == {
        "covert_activity", "covert_count", "aes_side_channel",
    }
    assert {s.mitigation for s in security} == {"abo_only", "tprac"}
    assert len(builtin_scenarios("smoke")) >= 12
    with pytest.raises(ValueError, match="unknown campaign"):
        builtin_scenarios("bogus")
