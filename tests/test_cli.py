"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_every_experiment_has_a_command():
    expected = {
        "fig3", "table2", "fig4", "fig5", "fig7", "fig9",
        "fig10", "fig11", "fig12", "fig13", "fig14", "table5",
    }
    assert set(COMMANDS) == expected


def test_list_prints_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_fig7_runs_and_prints_values(capsys):
    assert main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "572" in out and "736" in out
    assert "TMAX vs TB-Window" in out


def test_table2_with_custom_nbo(capsys):
    assert main(["table2", "--nbo", "256"]) == 0
    out = capsys.readouterr().out
    assert "Activity-Based" in out
    assert "Activation-Count-Based" in out
    assert " 512" not in out.split("Kbps")[0]


def test_fig10_with_small_scale(capsys):
    code = main([
        "fig10", "--requests", "500",
        "--workloads", "433.milc", "453.povray",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "GEOMEAN" in out
    assert "433.milc" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])
