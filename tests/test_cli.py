"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import COMMANDS, build_parser, main
from repro.experiments import registry

pytestmark = pytest.mark.smoke


def test_every_registered_artifact_has_a_command():
    # The CLI must not drift from the registry: every registered
    # artifact is individually invocable.
    assert set(COMMANDS) == set(registry.discover())


def test_list_prints_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_fig7_runs_and_prints_values(capsys):
    assert main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "572" in out and "736" in out
    assert "TMAX vs TB-Window" in out


def test_table2_with_custom_nbo(capsys):
    assert main(["table2", "--nbo", "256"]) == 0
    out = capsys.readouterr().out
    assert "Activity-Based" in out
    assert "Activation-Count-Based" in out
    assert " 512" not in out.split("Kbps")[0]


def test_fig10_with_small_scale(capsys):
    code = main([
        "fig10", "--requests", "500",
        "--workloads", "433.milc", "453.povray",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "GEOMEAN" in out
    assert "433.milc" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_fig10_with_system_flags(capsys):
    code = main([
        "fig10", "--requests", "400", "--workloads", "433.milc",
        "--scheduler", "fcfs", "--mapping", "linear",
    ])
    assert code == 0
    assert "GEOMEAN" in capsys.readouterr().out


def test_unknown_scheduler_flag_gets_registry_error(capsys):
    assert main(["fig10", "--scheduler", "round_robin"]) == 2
    err = capsys.readouterr().err
    assert "'scheduler'" in err and "fr_fcfs" in err


def test_system_flags_rejected_outside_perf_artifacts(capsys):
    # Anywhere the flag would be accepted-and-ignored must reject it:
    # suite, campaign (which sweeps via --grid), bench, non-perf figs.
    for command in ("suite", "campaign", "bench", "fig7"):
        assert main([command, "--scheduler", "fcfs"]) == 2
        assert "--scheduler" in capsys.readouterr().err


def test_suite_command_runs_selected_artifacts(tmp_path, capsys):
    out_dir = tmp_path / "results"
    code = main([
        "suite", "--only", "fig7", "fig8", "--jobs", "2",
        "--out", str(out_dir), "--no-cache",
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "2/2 artifacts ok" in printed
    assert (out_dir / "fig7.json").exists()
    assert (out_dir / "fig8.json").exists()
    summary = json.loads((out_dir / "summary.json").read_text())
    assert [e["experiment"] for e in summary] == ["fig7", "fig8"]
    assert all(e["status"] == "ok" for e in summary)


def test_suite_exit_code_ignores_stale_entries_from_other_runs(tmp_path, capsys):
    # summary.json keeps history; a passing subset run must not fail
    # because an artifact from a *previous* run is recorded as error.
    out_dir = tmp_path / "results"
    out_dir.mkdir()
    (out_dir / "summary.json").write_text(json.dumps([
        {"experiment": "fig3", "status": "error",
         "error": {"type": "RuntimeError", "message": "old failure"}},
    ]))
    code = main(["suite", "--only", "fig8", "--out", str(out_dir)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "fig3" not in printed
    assert "1/1 artifacts ok" in printed
    # ...but the stale entry is still preserved in the index itself.
    summary = json.loads((out_dir / "summary.json").read_text())
    assert {e["experiment"] for e in summary} == {"fig3", "fig8"}


def test_suite_only_flags_rejected_on_other_commands(capsys):
    assert main(["fig7", "--full"]) == 2
    assert "--full" in capsys.readouterr().err
    assert main(["list", "--jobs", "4"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_suite_command_reports_cache_hits(tmp_path, capsys):
    out_dir = tmp_path / "results"
    assert main(["suite", "--only", "fig8", "--out", str(out_dir)]) == 0
    capsys.readouterr()
    assert main(["suite", "--only", "fig8", "--out", str(out_dir)]) == 0
    assert "cached" in capsys.readouterr().out


def test_bench_list_prints_workloads(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("perf_multi_core", "perf_single_core",
                 "campaign_smoke", "scheduler_pick"):
        assert name in out
    assert "acceptance workload" in out


def test_bench_flags_rejected_on_other_commands(capsys):
    assert main(["fig7", "--smoke"]) == 2
    err = capsys.readouterr().err
    assert "--smoke" in err
    assert main(["suite", "--reps", "3"]) == 2


def test_bench_rejects_unknown_workload(capsys):
    assert main(["bench", "--only", "nope", "--out", "ignored"]) == 2
    assert "unknown bench workload" in capsys.readouterr().err


def test_bench_smoke_writes_report_with_comparison(tmp_path, capsys):
    out_dir = tmp_path / "trajectory"
    out_dir.mkdir()
    code = main([
        "bench", "--smoke", "--only", "scheduler_pick",
        "--out", str(out_dir), "--rev", "first", "--baseline", str(out_dir),
    ])
    assert code == 0
    first = json.loads((out_dir / "BENCH_first.json").read_text())
    assert "scheduler_pick" in first["workloads"]
    assert "comparison" not in first  # nothing to compare against yet
    code = main([
        "bench", "--smoke", "--only", "scheduler_pick",
        "--out", str(out_dir), "--rev", "second", "--baseline", str(out_dir),
    ])
    assert code == 0
    second = json.loads((out_dir / "BENCH_second.json").read_text())
    assert second["comparison"]["baseline_rev"] == "first"
    out = capsys.readouterr().out
    assert "vs baseline rev first" in out


def test_bench_only_without_names_rejected(capsys):
    assert main(["bench", "--only"]) == 2
    assert "no workload names" in capsys.readouterr().err


def test_obs_report_renders_campaign_summary(tmp_path, capsys):
    from repro.obs.heartbeat import HEARTBEAT_FILENAME, HeartbeatWriter

    with HeartbeatWriter(tmp_path / HEARTBEAT_FILENAME) as writer:
        writer.emit("campaign.start", scenarios=1, trials=1)
        writer.emit("campaign.finish", scenarios_ok=1)
    assert main(["obs", "report", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert f"campaign: {tmp_path}" in out
    assert "heartbeat: 2 records" in out


def test_obs_report_missing_directory_fails(tmp_path, capsys):
    assert main(["obs", "report", str(tmp_path / "nope")]) == 1
    assert "not a campaign directory" in capsys.readouterr().err


def test_obs_export_trace_writes_chrome_json(tmp_path, capsys):
    from repro.obs.trace import TraceEvent, export_trace_jsonl

    source = tmp_path / "trace-s0.jsonl"
    export_trace_jsonl([TraceEvent("ACT", 1.0, dur=15.0, bank=0, row=2)],
                       source)
    out_path = tmp_path / "custom.chrome.json"
    assert main(["obs", "export-trace", str(source),
                 "--out", str(out_path)]) == 0
    assert f"-> {out_path}" in capsys.readouterr().out
    doc = json.loads(out_path.read_text())
    assert any(e.get("name") == "ACT" for e in doc["traceEvents"])


def test_obs_usage_errors_exit_2(capsys):
    assert main(["obs"]) == 2
    assert "needs a subcommand" in capsys.readouterr().err
    assert main(["obs", "frobnicate"]) == 2
    assert "unknown obs subcommand" in capsys.readouterr().err
    assert main(["obs", "export-trace"]) == 2
    assert "export-trace" in capsys.readouterr().err


def test_obs_arguments_rejected_on_other_commands(capsys):
    assert main(["fig7", "report"]) == 2
    assert "obs" in capsys.readouterr().err


def test_progress_flag_only_valid_for_campaign(capsys):
    assert main(["suite", "--progress"]) == 2
    assert "--progress" in capsys.readouterr().err


def test_strict_flag_only_valid_for_bench(capsys):
    assert main(["fig7", "--strict"]) == 2
    assert "--strict" in capsys.readouterr().err


def test_verbosity_flags_are_global_and_exclusive(capsys):
    assert main(["--quiet", "list"]) == 0
    capsys.readouterr()
    assert main(["--verbose", "list"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["--verbose", "--quiet", "list"])
    capsys.readouterr()


def test_retries_and_timeout_accepted_for_suite_and_campaign(tmp_path, capsys):
    code = main([
        "suite", "--only", "fig7", "--out", str(tmp_path),
        "--retries", "0", "--timeout", "300",
    ])
    assert code == 0
    capsys.readouterr()
    code = main([
        "campaign", "--grid", "attack=selftest", "--out", str(tmp_path / "c"),
        "--trials", "1", "--jobs", "1", "--retries", "1", "--timeout", "60",
    ])
    assert code == 0


def test_retries_and_timeout_rejected_on_other_commands(capsys):
    for command in ("bench", "fig7", "fig10"):
        assert main([command, "--retries", "2"]) == 2
        assert "--retries" in capsys.readouterr().err
        assert main([command, "--timeout", "5"]) == 2
        assert "--timeout" in capsys.readouterr().err


def test_invalid_retry_and_timeout_values_exit_2(capsys):
    assert main(["suite", "--retries", "-1"]) == 2
    assert "--retries" in capsys.readouterr().err
    assert main(["campaign", "--grid", "attack=selftest", "--timeout", "0"]) == 2
    assert "--timeout" in capsys.readouterr().err


def test_interrupted_suite_exits_130(tmp_path, capsys, monkeypatch):
    from repro.experiments import runner as runner_mod

    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(runner_mod, "run_suite", interrupted)
    code = main(["suite", "--only", "fig7", "--out", str(tmp_path)])
    assert code == 130
    assert "interrupted" in capsys.readouterr().err


def test_interrupted_campaign_exits_130(tmp_path, capsys, monkeypatch):
    from repro import campaigns as campaigns_mod

    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(campaigns_mod, "run_campaign", interrupted)
    code = main([
        "campaign", "--grid", "attack=selftest", "--out", str(tmp_path),
        "--trials", "1",
    ])
    assert code == 130
    assert "interrupted" in capsys.readouterr().err
