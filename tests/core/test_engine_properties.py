"""Property tests for the event kernel under randomized schedules."""

from hypothesis import given, settings, strategies as st

from repro.core.engine import Engine


@settings(max_examples=80, deadline=None)
@given(times=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_events_always_fire_in_nondecreasing_time_order(times):
    engine = Engine()
    fired = []
    for t in times:
        engine.schedule(t, lambda t=t: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)
    assert engine.now == max(times)


@settings(max_examples=50, deadline=None)
@given(
    times=st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=2, max_size=40),
    cancel_index=st.integers(min_value=0, max_value=39),
)
def test_cancellation_removes_exactly_one_event(times, cancel_index):
    engine = Engine()
    fired = []
    events = [
        engine.schedule(t, lambda i=i: fired.append(i)) for i, t in enumerate(times)
    ]
    victim = events[cancel_index % len(events)]
    victim.cancel()
    engine.run()
    assert len(fired) == len(times) - 1
    assert (cancel_index % len(times)) not in fired


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=25)
)
def test_chained_relative_delays_accumulate(delays):
    engine = Engine()
    arrivals = []

    def chain(remaining):
        arrivals.append(engine.now)
        if remaining:
            engine.schedule_after(remaining[0], lambda: chain(remaining[1:]))

    engine.schedule(0.0, lambda: chain(list(delays)))
    engine.run()
    expected = 0.0
    for arrival, delay in zip(arrivals[1:], delays):
        expected += delay
        assert abs(arrival - expected) < 1e-6


@settings(max_examples=30, deadline=None)
@given(
    times=st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=30),
    cutoff=st.floats(min_value=0.0, max_value=1000.0),
)
def test_run_until_is_a_clean_partition(times, cutoff):
    """Events at or before the cutoff fire; later ones stay queued."""
    engine = Engine()
    fired = []
    for t in times:
        engine.schedule(t, lambda t=t: fired.append(t))
    engine.run(until=cutoff)
    assert all(t <= cutoff for t in fired)
    assert len(fired) == sum(1 for t in times if t <= cutoff)
    engine.run()
    assert len(fired) == len(times)
