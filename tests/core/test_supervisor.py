"""The supervising executor: retries, deadlines, pool recovery."""

import json
import time

import pytest

from repro.core.executor import (
    DEADLINE_ERROR_TYPE,
    FAULT_PLAN_ENV,
    RetryPolicy,
    TransientError,
    error_entry,
    map_tasks,
    supervise_tasks,
    task_id_of,
)

pytestmark = pytest.mark.smoke

#: fast, deterministic policy for tests (no jitter, millisecond backoff)
FAST = RetryPolicy(retries=2, backoff_base=0.001, backoff_max=0.002, jitter=0.0)


def _double(x):
    return {"status": "ok", "value": 2 * x}


def _explode(x):
    raise ValueError(f"boom {x}")


def _sleepy(seconds):
    time.sleep(seconds)
    return {"status": "ok", "value": "slept"}


@pytest.fixture
def fault_plan(monkeypatch):
    """Set an inline fault plan for the duration of one test."""
    from repro import faults

    def activate(plan: dict) -> None:
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(plan))
        faults.clear_plan_cache()

    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    yield activate
    faults.clear_plan_cache()


# ----------------------------------------------------------------------
# error_entry (satellite regression)
# ----------------------------------------------------------------------
def test_error_entry_uses_the_exceptions_own_traceback():
    # Folding a future's exception happens *outside* any active except
    # block, where format_exc() would render the ambient (empty)
    # context as "NoneType: None".  The entry must come from the
    # exception object itself.
    try:
        raise RuntimeError("the real failure")
    except RuntimeError as exc:
        captured = exc
    entry = error_entry(captured)
    assert entry["type"] == "RuntimeError"
    assert "RuntimeError: the real failure" in entry["traceback"]
    assert "NoneType" not in entry["traceback"]


def test_error_entry_marks_transient_exceptions():
    assert error_entry(TransientError("flake"))["transient"] is True
    assert "transient" not in error_entry(RuntimeError("bug"))


def test_task_id_of_joins_tuple_keys():
    assert task_id_of(("abc", 2)) == "abc:2"
    assert task_id_of("fig10") == "fig10"


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_backoff_is_seeded_and_bounded():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.25)
    first = policy.backoff_delay("t", 1)
    assert first == policy.backoff_delay("t", 1)  # deterministic
    assert 0.075 <= first <= 0.125
    assert policy.backoff_delay("t", 2) != first
    assert policy.backoff_delay("other", 1) != first


def test_policy_validation_rejects_bad_knobs():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1).validate()
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0).validate()
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0).validate()


# ----------------------------------------------------------------------
# Fault-free equivalence with map_tasks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_fault_free_payloads_match_map_tasks(jobs):
    tasks = [(i, (i,)) for i in range(4)]
    plain = dict(map_tasks(_double, tasks, jobs=jobs))
    supervised = dict(supervise_tasks(_double, tasks, jobs=jobs, policy=FAST))
    assert supervised == plain


@pytest.mark.parametrize("jobs", [1, 2])
def test_deterministic_failures_are_not_retried(jobs):
    events = []
    results = dict(
        supervise_tasks(
            _explode,
            [("x", (1,)), ("y", (2,))],
            jobs=jobs,
            policy=FAST,
            on_event=lambda e, f: events.append(e),
        )
    )
    for payload in results.values():
        assert payload["status"] == "error"
        assert payload["error"]["type"] == "ValueError"
        assert "retries" not in payload
    assert "task.retry" not in events


def test_duplicate_task_ids_are_rejected():
    with pytest.raises(ValueError, match="duplicate task ids"):
        list(supervise_tasks(_double, [("a", (1,)), ("a", (2,))], jobs=1))


# ----------------------------------------------------------------------
# Retry / quarantine via the fault-injection hook
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_transient_fault_is_retried_to_success(fault_plan, jobs):
    fault_plan({"rules": [{"action": "raise", "match": "a", "attempts": [0]}]})
    events = []
    results = dict(
        supervise_tasks(
            _double,
            [("a", (1,)), ("b", (2,))],
            jobs=jobs,
            policy=FAST,
            on_event=lambda e, f: events.append((e, f)),
        )
    )
    assert results["b"] == {"status": "ok", "value": 4}
    assert results["a"]["status"] == "ok"
    assert results["a"]["value"] == 2
    assert results["a"]["retries"] == 1
    assert results["a"]["attempt_errors"][0]["type"] == "InjectedFault"
    retried = [f for e, f in events if e == "task.retry"]
    assert len(retried) == 1 and retried[0]["task"] == "a"


@pytest.mark.parametrize("jobs", [1, 2])
def test_persistent_transient_fault_is_quarantined(fault_plan, jobs):
    fault_plan(
        {"rules": [{"action": "raise", "match": "a", "attempts": [0, 1, 2]}]}
    )
    events = []
    results = dict(
        supervise_tasks(
            _double,
            [("a", (1,)), ("b", (2,))],
            jobs=jobs,
            policy=FAST,
            on_event=lambda e, f: events.append(e),
        )
    )
    assert results["b"]["status"] == "ok"
    quarantined = results["a"]
    assert quarantined["status"] == "quarantined"
    assert len(quarantined["attempts"]) == FAST.max_attempts
    assert quarantined["error"]["type"] == "InjectedFault"
    assert events.count("task.retry") == FAST.retries
    assert events.count("task.quarantined") == 1


def test_injected_bug_is_deterministic_and_not_retried(fault_plan):
    fault_plan(
        {
            "rules": [
                {
                    "action": "raise",
                    "match": "a",
                    "attempts": [0],
                    "transient": False,
                }
            ]
        }
    )
    results = dict(
        supervise_tasks(_double, [("a", (1,))], jobs=1, policy=FAST)
    )
    assert results["a"]["status"] == "error"
    assert results["a"]["error"]["type"] == "InjectedBug"
    assert "retries" not in results["a"]


# ----------------------------------------------------------------------
# Pool recovery (worker crash, hung worker)
# ----------------------------------------------------------------------
def test_worker_crash_breaks_pool_and_recovers(fault_plan):
    fault_plan({"rules": [{"action": "crash", "match": "1", "attempts": [0]}]})
    events = []
    tasks = [(i, (i,)) for i in range(4)]
    results = dict(
        supervise_tasks(
            _double,
            tasks,
            jobs=2,
            policy=FAST,
            on_event=lambda e, f: events.append(e),
        )
    )
    assert set(results) == set(range(4))
    for i in range(4):
        assert results[i]["status"] == "ok"
        assert results[i]["value"] == 2 * i
    assert events.count("pool.rebuild") >= 1


def test_hung_worker_hits_deadline_and_is_quarantined():
    policy = RetryPolicy(
        retries=0, timeout=0.4, backoff_base=0.001, jitter=0.0
    )
    events = []
    tasks = [("hang", (30,)), ("fast", (0.01,))]
    results = dict(
        supervise_tasks(
            _sleepy,
            tasks,
            jobs=2,
            policy=policy,
            on_event=lambda e, f: events.append(e),
        )
    )
    assert results["fast"]["status"] == "ok"
    assert results["hang"]["status"] == "quarantined"
    assert results["hang"]["error"]["type"] == DEADLINE_ERROR_TYPE
    assert "task.timeout" in events
    assert "pool.rebuild" in events


def test_hung_worker_recovers_within_retry_budget(fault_plan):
    # The hang comes from the plan (attempt 0 only), so the retry runs
    # clean: deadline -> kill -> rebuild -> retry -> success.
    fault_plan(
        {
            "rules": [
                {
                    "action": "hang",
                    "match": "a",
                    "attempts": [0],
                    "seconds": 30,
                }
            ]
        }
    )
    policy = RetryPolicy(
        retries=1, timeout=0.4, backoff_base=0.001, jitter=0.0
    )
    results = dict(
        supervise_tasks(
            _double, [("a", (1,)), ("b", (2,))], jobs=2, policy=policy
        )
    )
    assert results["a"]["status"] == "ok"
    assert results["a"]["value"] == 2
    assert results["a"]["retries"] == 1
    assert results["b"] == {"status": "ok", "value": 4}
