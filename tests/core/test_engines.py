"""Tests for the ENGINES registry and backend-built engine semantics.

Two layers:

* registry contract — backend construction by name, uniform error
  messages for unknown names and bad params, the default backend's
  serialization invisibility, and the numpy isolation guarantee (the
  default path must never import numpy; ``engine="batched"`` without
  numpy must raise the registry-uniform error naming the extra).
* engine semantics, parametrized over **every registered backend** —
  whichever :class:`~repro.core.engine.Engine` a backend hands out must
  satisfy the ``run(until=, max_events=)``, cancel and RepeatingTimer
  contracts that the epoch-barrier and wake machinery lean on.
"""

import subprocess
import sys

import pytest

from repro.config import SystemConfig
from repro.core.engines import DEFAULT_ENGINE, ENGINES, EngineBackend


def all_backend_names():
    return ENGINES.available()


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
def test_registry_lists_all_backends():
    names = ENGINES.available()
    assert "event" in names
    assert "batched" in names
    assert "sharded" in names


def test_default_engine_is_event_and_serializes_to_nothing():
    assert DEFAULT_ENGINE == "event"
    assert "engine" not in SystemConfig().to_dict()
    assert isinstance(SystemConfig().make_engine(), EngineBackend)


def test_unknown_engine_name_uniform_error():
    with pytest.raises(ValueError, match="engine"):
        SystemConfig(engine="warp").validate()


def test_bad_engine_params_name_the_field():
    with pytest.raises(ValueError, match="quantum"):
        SystemConfig(engine="sharded", engine_params={"quantum": -1}).make_engine()
    with pytest.raises(ValueError, match="min_banks"):
        SystemConfig(engine="batched", engine_params={"min_banks": 0}).make_engine()


def test_event_backend_is_base_class():
    backend = ENGINES.make("event")
    assert type(backend) is EngineBackend
    assert backend.name == "event"
    assert not backend.shards_channels(8)


def test_sharded_backend_shards_only_multichannel():
    backend = ENGINES.make("sharded")
    assert not backend.shards_channels(1)
    assert backend.shards_channels(2)


# ----------------------------------------------------------------------
# numpy isolation (the [accel] extra)
# ----------------------------------------------------------------------
def test_default_path_never_imports_numpy():
    """Building and running a default system must not pull in numpy."""
    code = (
        "import sys\n"
        "from repro.experiments.common import DesignPoint, build_system, "
        "homogeneous_traces\n"
        "system = build_system(DesignPoint(design='tprac', nrh=1024),"
        "homogeneous_traces('433.milc', cores=1, num_accesses=50, seed=0))\n"
        "system.run()\n"
        "assert 'numpy' not in sys.modules, 'default path imported numpy'\n"
    )
    subprocess.run([sys.executable, "-c", code], check=True)


def test_batched_fallback_never_imports_numpy():
    """engine_params={'numpy': False} must stay numpy-free too."""
    code = (
        "import sys\n"
        "from repro.config import SystemConfig\n"
        "from repro.experiments.common import DesignPoint, build_system, "
        "homogeneous_traces\n"
        "system = build_system(DesignPoint(design='tprac', nrh=1024),"
        "homogeneous_traces('433.milc', cores=1, num_accesses=50, seed=0),"
        "system=SystemConfig(engine='batched', engine_params={'numpy': False}))\n"
        "system.run()\n"
        "assert 'numpy' not in sys.modules, 'fallback path imported numpy'\n"
    )
    subprocess.run([sys.executable, "-c", code], check=True)


def test_batched_without_numpy_raises_registry_uniform_error():
    """With numpy unimportable, engine='batched' must raise a ValueError
    naming the config field, the missing dep and the [accel] extra."""
    code = (
        "import sys\n"
        "sys.modules['numpy'] = None\n"  # poison the import
        "from repro.config import SystemConfig\n"
        "try:\n"
        "    SystemConfig(engine='batched').make_engine()\n"
        "except ValueError as exc:\n"
        "    text = str(exc)\n"
        "    assert 'batched' in text and 'numpy' in text, text\n"
        "    assert 'repro[accel]' in text, text\n"
        "    assert \"engine_params={'numpy': False}\" in text, text\n"
        "else:\n"
        "    raise SystemExit('expected ValueError')\n"
    )
    subprocess.run([sys.executable, "-c", code], check=True)


# ----------------------------------------------------------------------
# Engine semantics, over every registered backend
# ----------------------------------------------------------------------
@pytest.fixture(params=all_backend_names())
def engine(request):
    backend = ENGINES.make(request.param)
    return backend.make_engine()


def test_run_until_advances_clock_on_drain(engine):
    fired = []
    engine.schedule(5.0, lambda: fired.append(engine.now))
    engine.run(until=100.0)
    assert fired == [5.0]
    # the clock must land on the horizon even though the queue drained
    assert engine.now == 100.0


def test_run_until_is_inclusive(engine):
    fired = []
    engine.schedule(10.0, lambda: fired.append("at-horizon"))
    engine.schedule(10.0 + 1e-9, lambda: fired.append("past-horizon"))
    engine.run(until=10.0)
    assert fired == ["at-horizon"]
    assert engine.now == 10.0


def test_run_until_in_the_past_is_a_noop(engine):
    engine.schedule(1.0, lambda: None)
    engine.run(until=5.0)
    assert engine.now == 5.0
    fired = []
    engine.schedule(6.0, lambda: fired.append(True))
    engine.run(until=2.0)  # horizon behind the clock: nothing may fire
    assert fired == []
    assert engine.now == 5.0


def test_run_resumes_across_epoch_boundaries(engine):
    """Repeated run(until=) calls — the epoch-barrier access pattern —
    must fire every event exactly once, in time order."""
    fired = []
    for t in (2.5, 7.5, 12.5, 17.5):
        engine.schedule(t, lambda t=t: fired.append(t))
    for boundary in (5.0, 10.0, 15.0, 20.0):
        engine.run(until=boundary)
        assert engine.now == boundary
    assert fired == [2.5, 7.5, 12.5, 17.5]


def test_max_events_caps_firing(engine):
    fired = []
    for t in range(5):
        engine.schedule(float(t), lambda t=t: fired.append(t))
    engine.run(max_events=2)
    assert fired == [0, 1]
    engine.run(max_events=None)
    assert fired == [0, 1, 2, 3, 4]


def test_request_stop_freezes_clock(engine):
    fired = []

    def stopper():
        fired.append(engine.now)
        engine.request_stop()

    engine.schedule(3.0, stopper)
    engine.schedule(9.0, lambda: fired.append(engine.now))
    engine.run(until=50.0)
    # stop exits before the horizon advance: the stopper wants the
    # clock frozen at the stopping event
    assert engine.now == 3.0
    engine.run(until=50.0)
    assert fired == [3.0, 9.0]
    assert engine.now == 50.0


def test_cancel_before_and_during_run(engine):
    fired = []
    doomed = engine.schedule(5.0, lambda: fired.append("doomed"))
    victim = engine.schedule(7.0, lambda: fired.append("victim"))
    engine.schedule(6.0, victim.cancel)
    doomed.cancel()
    engine.schedule(8.0, lambda: fired.append("survivor"))
    engine.run(until=20.0)
    assert fired == ["survivor"]
    # cancelling an already-fired event must be a harmless no-op
    doomed.cancel()
    victim.cancel()


def test_repeating_timer_fires_on_period_and_stops(engine):
    fired = []
    timer = engine.every(10.0, lambda: fired.append(engine.now))
    engine.run(until=35.0)
    assert fired == [10.0, 20.0, 30.0]
    timer.stop()
    engine.run(until=100.0)
    assert fired == [10.0, 20.0, 30.0]
    assert engine.now == 100.0


def test_repeating_timer_stop_from_inside_callback(engine):
    """stop() from within the callback must prevent the re-arm."""
    fired = []
    timer = engine.every(10.0, lambda: (fired.append(engine.now), timer.stop()))
    engine.run(until=100.0)
    assert fired == [10.0]
