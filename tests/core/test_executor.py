"""The shared pool executor (used by both runner and campaigns)."""

import pytest

from repro.core.executor import error_entry, map_tasks, to_jsonable

pytestmark = pytest.mark.smoke


def _double(x):
    return {"status": "ok", "value": 2 * x}


def _explode(x):
    raise ValueError(f"boom {x}")


def test_map_tasks_inline_yields_every_task():
    results = dict(map_tasks(_double, [("a", (1,)), ("b", (2,))], jobs=1))
    assert results == {
        "a": {"status": "ok", "value": 2},
        "b": {"status": "ok", "value": 4},
    }


def test_map_tasks_pool_yields_every_task():
    tasks = [(i, (i,)) for i in range(5)]
    results = dict(map_tasks(_double, tasks, jobs=2))
    assert results == {i: {"status": "ok", "value": 2 * i} for i in range(5)}


def test_map_tasks_folds_raising_worker_into_error_payload():
    # Workers are *supposed* to isolate themselves; if one leaks an
    # exception anyway, the batch still completes with a structured
    # error payload for that task.
    for jobs in (1, 2):
        results = dict(
            map_tasks(_explode, [("x", (1,)), ("y", (2,))], jobs=jobs)
        )
        assert set(results) == {"x", "y"}
        for payload in results.values():
            assert payload["status"] == "error"
            assert payload["error"]["type"] == "ValueError"
            assert "boom" in payload["error"]["message"]


def test_map_tasks_single_task_runs_inline_even_with_jobs():
    results = dict(map_tasks(_double, [("only", (3,))], jobs=8))
    assert results == {"only": {"status": "ok", "value": 6}}


def test_error_entry_shape():
    entry = error_entry(RuntimeError("nope"), with_traceback=False)
    assert entry == {"type": "RuntimeError", "message": "nope"}


def test_to_jsonable_remains_available_for_both_subsystems():
    from dataclasses import dataclass

    @dataclass
    class Point:
        x: int

    assert to_jsonable({(1, 2): [Point(3)]}) == {"(1, 2)": [{"x": 3}]}


# ----------------------------------------------------------------------
# ShardProcess: the sharded engine backend's worker lifecycle
# ----------------------------------------------------------------------
def _echo_worker(conn):
    while True:
        message = conn.recv()
        if message == ("stop",):
            conn.send(("bye",))
            return
        conn.send(("echo", message))


def _crashing_worker(conn):
    from repro.core.executor import error_entry

    conn.recv()
    conn.send(("error", error_entry(ValueError("shard blew up"))))


def test_shard_process_round_trips_messages():
    from repro.core.executor import ShardProcess

    worker = ShardProcess(_echo_worker, name="echo")
    try:
        worker.send(("epoch", 100.0, [1, 2, 3]))
        assert worker.recv() == ("echo", ("epoch", 100.0, [1, 2, 3]))
        worker.send(("stop",))
        assert worker.recv() == ("bye",)
    finally:
        worker.close()


def test_shard_process_error_tuple_raises():
    from repro.core.executor import ShardProcess

    worker = ShardProcess(_crashing_worker, name="crasher")
    try:
        worker.send(("epoch", 0.0, []))
        with pytest.raises(RuntimeError, match="shard blew up"):
            worker.recv()
    finally:
        worker.close()


def test_shard_process_dead_worker_raises_not_hangs():
    from repro.core.executor import ShardProcess

    def _exit_immediately(conn):
        conn.close()

    worker = ShardProcess(_exit_immediately, name="ghost")
    try:
        with pytest.raises(RuntimeError, match="died"):
            worker.recv()
    finally:
        worker.close()


def test_shard_process_refuses_daemonic_parent():
    """Campaign pool workers are daemonic; forking shards from inside one
    must fail fast with the --jobs 1 guidance rather than crash deep in
    multiprocessing."""
    import multiprocessing

    def _try_nested(conn):
        from repro.core.executor import ShardProcess, error_entry

        try:
            ShardProcess(_echo_worker, name="nested")
        except RuntimeError as exc:
            conn.send(("raised", str(exc)))
        except Exception as exc:  # pragma: no cover - wrong error type
            conn.send(("error", error_entry(exc)))
        else:  # pragma: no cover - no error at all
            conn.send(("error", {"type": "AssertionError", "message": "no raise"}))

    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_try_nested, args=(child,), name="daemonic-parent")
    proc.daemon = True
    proc.start()
    child.close()
    kind, text = parent.recv()
    proc.join(timeout=5.0)
    assert kind == "raised"
    assert "--jobs 1" in text
