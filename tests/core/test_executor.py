"""The shared pool executor (used by both runner and campaigns)."""

import pytest

from repro.core.executor import error_entry, map_tasks, to_jsonable

pytestmark = pytest.mark.smoke


def _double(x):
    return {"status": "ok", "value": 2 * x}


def _explode(x):
    raise ValueError(f"boom {x}")


def test_map_tasks_inline_yields_every_task():
    results = dict(map_tasks(_double, [("a", (1,)), ("b", (2,))], jobs=1))
    assert results == {
        "a": {"status": "ok", "value": 2},
        "b": {"status": "ok", "value": 4},
    }


def test_map_tasks_pool_yields_every_task():
    tasks = [(i, (i,)) for i in range(5)]
    results = dict(map_tasks(_double, tasks, jobs=2))
    assert results == {i: {"status": "ok", "value": 2 * i} for i in range(5)}


def test_map_tasks_folds_raising_worker_into_error_payload():
    # Workers are *supposed* to isolate themselves; if one leaks an
    # exception anyway, the batch still completes with a structured
    # error payload for that task.
    for jobs in (1, 2):
        results = dict(
            map_tasks(_explode, [("x", (1,)), ("y", (2,))], jobs=jobs)
        )
        assert set(results) == {"x", "y"}
        for payload in results.values():
            assert payload["status"] == "error"
            assert payload["error"]["type"] == "ValueError"
            assert "boom" in payload["error"]["message"]


def test_map_tasks_single_task_runs_inline_even_with_jobs():
    results = dict(map_tasks(_double, [("only", (3,))], jobs=8))
    assert results == {"only": {"status": "ok", "value": 6}}


def test_error_entry_shape():
    entry = error_entry(RuntimeError("nope"), with_traceback=False)
    assert entry == {"type": "RuntimeError", "message": "nope"}


def test_to_jsonable_remains_available_for_both_subsystems():
    from dataclasses import dataclass

    @dataclass
    class Point:
        x: int

    assert to_jsonable({(1, 2): [Point(3)]}) == {"(1, 2)": [{"x": 3}]}
