"""Unit tests for the discrete-event kernel."""

import pytest

from repro.core.engine import Engine


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(30.0, lambda: fired.append("c"))
    engine.schedule(10.0, lambda: fired.append("a"))
    engine.schedule(20.0, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 30.0


def test_same_time_events_fire_in_priority_then_fifo_order():
    engine = Engine()
    fired = []
    engine.schedule(5.0, lambda: fired.append("low"), priority=1)
    engine.schedule(5.0, lambda: fired.append("high"), priority=-1)
    engine.schedule(5.0, lambda: fired.append("mid1"), priority=0)
    engine.schedule(5.0, lambda: fired.append("mid2"), priority=0)
    engine.run()
    assert fired == ["high", "mid1", "mid2", "low"]


def test_schedule_after_uses_relative_delay():
    engine = Engine()
    seen = []
    engine.schedule(10.0, lambda: engine.schedule_after(5.0, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [15.0]


def test_schedule_in_past_raises():
    engine = Engine()
    engine.schedule(10.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule(5.0, lambda: None)


def test_negative_delay_raises():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule_after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(10.0, lambda: fired.append("x"))
    event.cancel()
    engine.schedule(20.0, lambda: fired.append("y"))
    engine.run()
    assert fired == ["y"]


def test_run_until_stops_and_advances_clock():
    engine = Engine()
    fired = []
    engine.schedule(10.0, lambda: fired.append(1))
    engine.schedule(100.0, lambda: fired.append(2))
    engine.run(until=50.0)
    assert fired == [1]
    assert engine.now == 50.0
    engine.run()
    assert fired == [1, 2]


def test_run_until_advances_clock_when_queue_drains_early():
    engine = Engine()
    engine.schedule(10.0, lambda: None)
    engine.run(until=500.0)
    assert engine.now == 500.0


def test_max_events_bounds_execution():
    engine = Engine()
    fired = []
    for i in range(10):
        engine.schedule(float(i), lambda i=i: fired.append(i))
    engine.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_execution_run():
    engine = Engine()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            engine.schedule_after(1.0, lambda: chain(depth + 1))

    engine.schedule(0.0, lambda: chain(0))
    engine.run()
    assert fired == [0, 1, 2, 3]


def test_pending_counts_live_events():
    engine = Engine()
    e1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending == 2
    e1.cancel()
    assert engine.pending == 1


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_drain_discards_everything():
    engine = Engine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.drain()
    engine.run()
    assert fired == []


# ----------------------------------------------------------------------
# Edge cases: cancellation, (priority, seq) tie-breaking, empty queues
# ----------------------------------------------------------------------
def test_cancel_from_inside_a_callback_suppresses_the_pending_event():
    engine = Engine()
    fired = []
    victim = engine.schedule(20.0, lambda: fired.append("victim"))
    engine.schedule(10.0, lambda: victim.cancel())
    engine.run()
    assert fired == []
    assert engine.now == 10.0          # the cancelled event never advanced time


def test_cancel_same_time_lower_priority_event_from_a_callback():
    # Cancellation must win even when canceller and victim share a
    # timestamp: the higher-priority event runs first and cancels.
    engine = Engine()
    fired = []
    victim = engine.schedule(5.0, lambda: fired.append("victim"), priority=1)
    engine.schedule(5.0, lambda: victim.cancel(), priority=0)
    engine.run()
    assert fired == []


def test_cancel_is_idempotent_and_counts_drop_once():
    engine = Engine()
    event = engine.schedule(5.0, lambda: None)
    assert engine.pending == 1
    event.cancel()
    event.cancel()
    assert engine.pending == 0
    engine.run()
    assert engine.events_fired == 0


def test_cancelled_head_is_skipped_without_firing_during_run_until():
    engine = Engine()
    fired = []
    head = engine.schedule(1.0, lambda: fired.append("head"))
    engine.schedule(2.0, lambda: fired.append("tail"))
    head.cancel()
    engine.run(until=5.0)
    assert fired == ["tail"]
    assert engine.now == 5.0
    assert engine.events_fired == 1


def test_same_timestamp_orders_by_priority_then_sequence_interleaved():
    # Interleave priorities at scheduling time; execution must sort by
    # (priority, seq), i.e. seq only breaks ties *within* a priority.
    engine = Engine()
    fired = []
    engine.schedule(7.0, lambda: fired.append("b0"), priority=1)
    engine.schedule(7.0, lambda: fired.append("a0"), priority=0)
    engine.schedule(7.0, lambda: fired.append("b1"), priority=1)
    engine.schedule(7.0, lambda: fired.append("a1"), priority=0)
    engine.run()
    assert fired == ["a0", "a1", "b0", "b1"]


def test_schedule_at_exactly_now_is_allowed_and_fires():
    engine = Engine()
    fired = []
    engine.schedule(10.0, lambda: engine.schedule(10.0, lambda: fired.append("x")))
    engine.run()
    assert fired == ["x"]
    assert engine.now == 10.0


def test_empty_queue_run_is_a_noop():
    engine = Engine()
    engine.run()
    assert engine.now == 0.0
    assert engine.events_fired == 0
    assert engine.pending == 0


def test_empty_queue_run_with_until_still_advances_the_clock():
    engine = Engine()
    engine.run(until=123.0)
    assert engine.now == 123.0
    assert engine.events_fired == 0


def test_run_with_only_cancelled_events_drains_cleanly():
    engine = Engine()
    for t in (1.0, 2.0, 3.0):
        engine.schedule(t, lambda: None).cancel()
    engine.run(until=10.0)
    assert engine.events_fired == 0
    assert engine.pending == 0
    assert engine.now == 10.0


def test_events_fired_counts_across_multiple_runs():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    engine.schedule(2.0, lambda: None)
    engine.run()
    assert engine.events_fired == 2


# ----------------------------------------------------------------------
# Fast-path kernel behaviors (slots Event, live counter, stop flag)
# ----------------------------------------------------------------------
def test_pending_is_maintained_without_heap_scans():
    engine = Engine()
    events = [engine.schedule(float(i), lambda: None) for i in range(5)]
    assert engine.pending == 5
    events[2].cancel()
    assert engine.pending == 4
    engine.run()
    assert engine.pending == 0


def test_double_cancel_decrements_pending_once():
    engine = Engine()
    event = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert engine.pending == 1


def test_cancel_after_fire_is_a_noop():
    engine = Engine()
    event = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.run(until=1.5)
    event.cancel()  # already fired: must not corrupt the live counter
    assert engine.pending == 1
    assert engine.events_fired == 1


def test_cancel_after_drain_is_a_noop():
    engine = Engine()
    event = engine.schedule(1.0, lambda: None)
    engine.drain()
    event.cancel()
    assert engine.pending == 0


def test_cancelled_event_releases_its_callback():
    engine = Engine()
    closure = lambda: None  # noqa: E731 - identity matters here
    event = engine.schedule(1.0, closure)
    event.cancel()
    # The slot is re-pointed at a module-level no-op (it stays a
    # callable, so the attribute type never widens to Optional) and the
    # scheduled closure is released.
    assert event.callback is not closure
    assert callable(event.callback)
    assert event.cancelled


def test_request_stop_halts_before_the_next_event():
    engine = Engine()
    fired = []
    engine.schedule(1.0, lambda: (fired.append(1), engine.request_stop()))
    engine.schedule(2.0, lambda: fired.append(2))
    engine.run()
    assert fired == [1]
    assert engine.pending == 1
    engine.run()  # a fresh run resumes normally
    assert fired == [1, 2]


def test_request_stop_skips_the_until_clock_advance():
    engine = Engine()
    engine.schedule(1.0, engine.request_stop)
    engine.run(until=100.0)
    assert engine.now == 1.0


def test_run_with_until_in_the_past_fires_nothing():
    engine = Engine()
    fired = []
    engine.schedule(5.0, lambda: fired.append(1))
    engine.run()  # now == 5.0
    engine.schedule(5.0, lambda: fired.append(2))
    engine.run(until=3.0)  # horizon before now: nothing may fire
    assert fired == [1]
    assert engine.now == 5.0


def test_event_exposes_its_sort_key_fields():
    engine = Engine()
    event = engine.schedule(7.0, lambda: None, priority=3, label="x")
    assert (event.time, event.priority, event.seq) == (7.0, 3, 0)
    assert event.label == "x"


def test_events_fired_is_exact_when_a_callback_raises():
    engine = Engine()
    engine.schedule(1.0, lambda: None)

    def boom():
        raise RuntimeError("boom")

    engine.schedule(2.0, boom)
    with pytest.raises(RuntimeError):
        engine.run()
    assert engine.events_fired == 2  # the raising event still fired
    assert engine.pending == 0


def test_drain_inside_a_callback_keeps_pending_exact():
    engine = Engine()
    engine.schedule(1.0, engine.drain)
    engine.schedule(2.0, lambda: None)  # discarded by the drain
    engine.run()
    assert engine.pending == 0
    assert engine.events_fired == 1


def test_drain_inside_a_callback_counts_events_scheduled_after_it():
    engine = Engine()

    def drain_then_reschedule():
        engine.drain()
        engine.schedule(5.0, lambda: None)
        engine.schedule(6.0, lambda: None)
        engine.request_stop()

    engine.schedule(1.0, drain_then_reschedule)
    engine.schedule(2.0, lambda: None)  # discarded by the drain
    engine.run()
    assert engine.pending == 2  # the two post-drain events are still live
    engine.run()
    assert engine.pending == 0
