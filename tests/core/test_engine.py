"""Unit tests for the discrete-event kernel."""

import pytest

from repro.core.engine import Engine


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(30.0, lambda: fired.append("c"))
    engine.schedule(10.0, lambda: fired.append("a"))
    engine.schedule(20.0, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 30.0


def test_same_time_events_fire_in_priority_then_fifo_order():
    engine = Engine()
    fired = []
    engine.schedule(5.0, lambda: fired.append("low"), priority=1)
    engine.schedule(5.0, lambda: fired.append("high"), priority=-1)
    engine.schedule(5.0, lambda: fired.append("mid1"), priority=0)
    engine.schedule(5.0, lambda: fired.append("mid2"), priority=0)
    engine.run()
    assert fired == ["high", "mid1", "mid2", "low"]


def test_schedule_after_uses_relative_delay():
    engine = Engine()
    seen = []
    engine.schedule(10.0, lambda: engine.schedule_after(5.0, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [15.0]


def test_schedule_in_past_raises():
    engine = Engine()
    engine.schedule(10.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule(5.0, lambda: None)


def test_negative_delay_raises():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule_after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(10.0, lambda: fired.append("x"))
    event.cancel()
    engine.schedule(20.0, lambda: fired.append("y"))
    engine.run()
    assert fired == ["y"]


def test_run_until_stops_and_advances_clock():
    engine = Engine()
    fired = []
    engine.schedule(10.0, lambda: fired.append(1))
    engine.schedule(100.0, lambda: fired.append(2))
    engine.run(until=50.0)
    assert fired == [1]
    assert engine.now == 50.0
    engine.run()
    assert fired == [1, 2]


def test_run_until_advances_clock_when_queue_drains_early():
    engine = Engine()
    engine.schedule(10.0, lambda: None)
    engine.run(until=500.0)
    assert engine.now == 500.0


def test_max_events_bounds_execution():
    engine = Engine()
    fired = []
    for i in range(10):
        engine.schedule(float(i), lambda i=i: fired.append(i))
    engine.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_execution_run():
    engine = Engine()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            engine.schedule_after(1.0, lambda: chain(depth + 1))

    engine.schedule(0.0, lambda: chain(0))
    engine.run()
    assert fired == [0, 1, 2, 3]


def test_pending_counts_live_events():
    engine = Engine()
    e1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending == 2
    e1.cancel()
    assert engine.pending == 1


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_drain_discards_everything():
    engine = Engine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.drain()
    engine.run()
    assert fired == []
