"""Unit tests for the refresh scheduler and TREF slots."""

import pytest

from repro.core.engine import Engine
from repro.dram.config import small_test_config
from repro.dram.rank import Channel
from repro.dram.refresh import RefreshScheduler


def _setup(tref_per_trefi=0.0):
    engine = Engine()
    config = small_test_config()
    channel = Channel(config)
    refresh = RefreshScheduler(engine, channel, config, tref_per_trefi=tref_per_trefi)
    return engine, config, channel, refresh


def test_refresh_fires_every_trefi():
    engine, config, channel, refresh = _setup()
    refresh.start()
    engine.run(until=10.5 * config.timing.tREFI)
    assert refresh.refresh_count == 10


def test_refresh_blocks_channel_for_trfc():
    engine, config, channel, refresh = _setup()
    refresh.start()
    engine.run(until=1.5 * config.timing.tREFI)
    assert channel.blocked_until == config.timing.tREFI + config.timing.tRFC


def test_tref_rate_quarter_fires_every_fourth_refresh():
    engine, config, channel, refresh = _setup(tref_per_trefi=0.25)
    seen = []
    refresh.on_tref.append(seen.append)
    refresh.start()
    engine.run(until=8.5 * config.timing.tREFI)
    assert refresh.tref_count == 2
    assert len(seen) == 2


def test_tref_rate_one_fires_every_refresh():
    engine, config, channel, refresh = _setup(tref_per_trefi=1.0)
    refresh.start()
    engine.run(until=5.5 * config.timing.tREFI)
    assert refresh.tref_count == 5


def test_invalid_tref_rate_rejected():
    engine = Engine()
    config = small_test_config()
    with pytest.raises(ValueError):
        RefreshScheduler(engine, Channel(config), config, tref_per_trefi=1.5)


def test_refw_hook_fires_at_refresh_window():
    engine, config, channel, refresh = _setup()
    times = []
    refresh.on_refw.append(times.append)
    refresh.start()
    engine.run(until=config.timing.tREFW * 2.5)
    assert len(times) == 2
    assert times[0] == pytest.approx(config.timing.tREFW)


def test_start_is_idempotent():
    engine, config, channel, refresh = _setup()
    refresh.start()
    refresh.start()
    engine.run(until=1.5 * config.timing.tREFI)
    assert refresh.refresh_count == 1
