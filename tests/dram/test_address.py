"""Unit and property tests for address mappings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import DramAddress, LinearMapping, MopMapping, make_mapping
from repro.dram.config import ddr5_8000b

ORG = ddr5_8000b().organization


@pytest.fixture(params=["linear", "mop"])
def mapping(request):
    return make_mapping(request.param, ORG)


def test_factory_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_mapping("hashed", ORG)


def test_decode_zero_is_origin(mapping):
    addr = mapping.decode(0)
    assert (addr.rank, addr.bank_group, addr.bank, addr.row, addr.column) == (
        0, 0, 0, 0, 0,
    )


def test_mop_stripes_blocks_across_banks():
    mop = MopMapping(ORG, mop_width=4)
    lines = [mop.decode(i * 64) for i in range(8)]
    # First 4 lines share a bank; the next block moves banks.
    assert len({(a.bank_group, a.bank) for a in lines[:4]}) == 1
    assert lines[4].bank != lines[0].bank or lines[4].bank_group != lines[0].bank_group


def test_mop_keeps_row_constant_within_stripe_group():
    mop = MopMapping(ORG)
    rows = {mop.decode(i * 64).row for i in range(64)}
    assert rows == {0}


def test_mop_width_must_divide_columns():
    with pytest.raises(ValueError):
        MopMapping(ORG, mop_width=7)


def test_linear_row_changes_every_bank_sweep():
    linear = LinearMapping(ORG)
    bytes_per_row_sweep = ORG.row_size_bytes * ORG.total_banks
    assert linear.decode(0).row == 0
    assert linear.decode(bytes_per_row_sweep).row == 1


@settings(max_examples=200, deadline=None)
@given(line=st.integers(min_value=0, max_value=2**30))
def test_roundtrip_linear(line):
    mapping = LinearMapping(ORG)
    phys = line * 64
    assert mapping.encode(mapping.decode(phys)) == phys


@settings(max_examples=200, deadline=None)
@given(line=st.integers(min_value=0, max_value=2**30))
def test_roundtrip_mop(line):
    mapping = MopMapping(ORG)
    phys = line * 64
    assert mapping.encode(mapping.decode(phys)) == phys


@settings(max_examples=100, deadline=None)
@given(
    rank=st.integers(0, ORG.ranks - 1),
    bank_group=st.integers(0, ORG.bank_groups - 1),
    bank=st.integers(0, ORG.banks_per_group - 1),
    row=st.integers(0, ORG.rows_per_bank - 1),
    column=st.integers(0, ORG.columns_per_row - 1),
)
def test_encode_decode_identity_on_coordinates(rank, bank_group, bank, row, column):
    mapping = MopMapping(ORG)
    addr = DramAddress(
        channel=0, rank=rank, bank_group=bank_group, bank=bank, row=row, column=column
    )
    assert mapping.decode(mapping.encode(addr)) == addr


def test_flat_bank_is_dense_and_unique():
    seen = set()
    for rank in range(ORG.ranks):
        for bg in range(ORG.bank_groups):
            for bank in range(ORG.banks_per_group):
                addr = DramAddress(0, rank, bg, bank, 0, 0)
                seen.add(addr.flat_bank(ORG))
    assert seen == set(range(ORG.total_banks))
