"""Tests for the online DRAM protocol sanitizer.

Three layers:

* synthetic known-bad command streams, each raising the expected
  :class:`ProtocolViolation` (tFAW overflow, ACT-during-REF, late
  ABO-RFM, and the per-rule constraint set);
* real controller traffic under ``SystemConfig(sanitize=True)`` across
  mitigation policies — zero violations;
* the fig10 perf path with and without the sanitizer — results must be
  byte-identical.
"""

import dataclasses
import json
import random

import pytest

from repro.attacks.probes import bank_address
from repro.config import SystemConfig
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.commands import CommandKind, RfmProvenance
from repro.dram.config import ddr5_8000b, small_test_config
from repro.dram.sanitizer import ProtocolChecker, ProtocolViolation
from repro.experiments.common import DesignPoint, run_perf_matrix
from repro.mitigations.abo_only import AboOnlyPolicy
from repro.mitigations.base import NoMitigationPolicy
from repro.mitigations.rfmpb import PerBankRfmPolicy
from repro.mitigations.tprac import TpracPolicy


def _checker(strict=False, **config_kw):
    return ProtocolChecker(small_test_config(**config_kw), strict=strict)


class TestInjectedViolations:
    """Seeded known-bad streams raise the expected violation."""

    def test_tfaw_overflow(self):
        # ddr5_8000b: 32 banks per rank, so five distinct banks of rank
        # 0 can be activated back-to-back.  The fifth ACT inside the
        # 10 ns window must trip the strict four-activate check.
        checker = ProtocolChecker(ddr5_8000b(), strict=True)
        rng = random.Random(0)
        t = 0.0
        with pytest.raises(ProtocolViolation) as err:
            for bank in range(5):
                checker.observe(CommandKind.ACT, bank, 1, t)
                t += rng.uniform(0.5, 1.5)  # all five inside tFAW=10
        assert err.value.constraint == "tFAW"
        assert err.value.command.kind is CommandKind.ACT

    def test_tfaw_is_a_strict_mode_check(self):
        # The timing model intentionally does not arbitrate per-rank
        # ACT bandwidth, so the default (in-controller) mode must not
        # flag the same stream.
        checker = ProtocolChecker(ddr5_8000b(), strict=False)
        for bank in range(5):
            checker.observe(CommandKind.ACT, bank, 1, float(bank))
        assert checker.ok

    def test_act_during_refresh(self):
        checker = _checker()
        checker.observe(CommandKind.REF, -1, -1, 0.0)
        with pytest.raises(ProtocolViolation) as err:
            # tRFC = 410 ns: any ACT before that is inside the window.
            checker.observe(CommandKind.ACT, 0, 1, 200.0)
        assert err.value.constraint == "BLOCKED"
        assert "REF" in err.value.detail

    def test_late_abo_rfm(self):
        checker = _checker()
        checker.on_alert(0.0, 0, 5)
        checker.observe(CommandKind.ACT, 0, 5, 0.0)  # the alerting ACT
        with pytest.raises(ProtocolViolation) as err:
            # tABOACT = 180 ns and nothing blocks the channel: an RFM
            # at 500 ns missed the mitigation deadline.
            checker.observe(
                CommandKind.RFM_AB, -1, -1, 500.0,
                provenance=RfmProvenance.ABO,
            )
        assert err.value.constraint == "ABO-WINDOW"

    def test_too_many_grace_acts_after_alert(self):
        checker = ProtocolChecker(ddr5_8000b())
        checker.on_alert(0.0, 0, 5)
        t = 0.0
        with pytest.raises(ProtocolViolation) as err:
            for bank in range(6):  # trigger + abo_act(3) allowed, then fail
                checker.observe(CommandKind.ACT, bank, 5, t)
                t += 60.0
        assert err.value.constraint == "ABO-ACT"

    def test_act_during_rfmab(self):
        checker = _checker()
        checker.observe(CommandKind.RFM_AB, -1, -1, 0.0)
        with pytest.raises(ProtocolViolation) as err:
            checker.observe(CommandKind.ACT, 0, 1, 100.0)  # tRFMab = 350
        assert err.value.constraint == "BLOCKED"

    def test_act_during_per_bank_rfm(self):
        checker = _checker()
        checker.observe(CommandKind.RFM_PB, 2, -1, 0.0)
        with pytest.raises(ProtocolViolation) as err:
            checker.observe(CommandKind.ACT, 2, 1, 50.0)  # tRFMpb = 130
        assert err.value.constraint == "BLOCKED"
        # ...while other banks stay usable.
        checker2 = _checker()
        checker2.observe(CommandKind.RFM_PB, 2, -1, 0.0)
        checker2.observe(CommandKind.ACT, 1, 1, 50.0)
        assert checker2.ok


class TestConstraintMatrix:
    """One stream per timing rule, checked via collect mode."""

    def _violations(self, feeds, **checker_kw):
        checker = ProtocolChecker(
            small_test_config(), raise_on_violation=False, **checker_kw
        )
        for kind, bank, row, t in feeds:
            checker.observe(kind, bank, row, t)
        return [v.constraint for v in checker.violations]

    def test_trc(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.PRE, 0, -1, 16.0),
            (CommandKind.ACT, 0, 2, 52.0 - 1.0),
        ])
        assert "tRC" in out

    def test_trp(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.PRE, 0, -1, 16.0),
            (CommandKind.ACT, 0, 2, 16.0 + 36.0 - 1.0),
        ])
        assert "tRP" in out

    def test_tras(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.PRE, 0, -1, 10.0),
        ])
        assert out == ["tRAS"]

    def test_trcd(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.RD, 0, 1, 10.0),
        ])
        assert out == ["tRCD"]

    def test_trtp(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.RD, 0, 1, 16.0),
            (CommandKind.PRE, 0, -1, 17.0),
        ])
        assert out == ["tRTP"]

    def test_tccd(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.RD, 0, 1, 16.0),
            (CommandKind.RD, 0, 1, 17.0),
        ])
        assert out == ["tCCD"]

    def test_twr(self):
        # WR at 16: data ends at 16+16+2=34, recovery until 44.
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.WR, 0, 1, 16.0),
            (CommandKind.PRE, 0, -1, 40.0),
        ])
        assert out == ["tWR"]

    def test_double_open(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.ACT, 0, 2, 100.0),
        ])
        assert "OPEN" in out

    def test_cas_row_mismatch(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.RD, 0, 2, 20.0),
        ])
        assert out == ["ROW"]

    def test_cas_without_open_row(self):
        out = self._violations([(CommandKind.RD, 0, 1, 0.0)])
        assert "CLOSED" in out

    def test_order(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 100.0),
            (CommandKind.PRE, 0, -1, 50.0),
        ])
        assert "ORDER" in out

    def test_refresh_must_wait_for_bus_drain(self):
        # RD at 16 occupies the bus until 16+16+2 = 34.
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.RD, 0, 1, 16.0),
            (CommandKind.REF, -1, -1, 33.0),
        ])
        assert "BUS" in out

    def test_clean_stream_collects_nothing(self):
        out = self._violations([
            (CommandKind.ACT, 0, 1, 0.0),
            (CommandKind.RD, 0, 1, 16.0),
            (CommandKind.PRE, 0, -1, 21.0),
            (CommandKind.ACT, 0, 2, 57.0),
        ])
        assert out == []


class TestViolationStructure:
    def test_violation_carries_command_and_history(self):
        checker = _checker()
        checker.observe(CommandKind.ACT, 0, 1, 0.0)
        checker.observe(CommandKind.RD, 0, 1, 16.0)
        with pytest.raises(ProtocolViolation) as err:
            checker.observe(CommandKind.ACT, 0, 2, 20.0)
        violation = err.value
        assert violation.constraint == "OPEN"
        assert violation.command.bank_id == 0
        assert violation.command.issue_time == 20.0
        kinds = [c.kind for c in violation.history]
        assert kinds == [CommandKind.ACT, CommandKind.RD, CommandKind.ACT]
        assert "OPEN" in str(violation)

    def test_collect_mode_keeps_scanning(self):
        checker = ProtocolChecker(
            small_test_config(), raise_on_violation=False
        )
        checker.observe(CommandKind.ACT, 0, 1, 0.0)
        checker.observe(CommandKind.ACT, 0, 2, 1.0)
        checker.observe(CommandKind.ACT, 0, 3, 2.0)
        assert not checker.ok
        assert len(checker.violations) >= 2


def _drive(policy, nbo=64, page="open", until=400_000, nreq=1200,
           enable_abo=True):
    """Run mixed read/write traffic through a sanitized controller."""
    config = small_test_config(nbo=nbo)
    mc = MemoryController(
        Engine(), config, policy=policy,
        system=SystemConfig(sanitize=True, page_policy=page),
        enable_refresh=True, enable_abo=enable_abo,
    )
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= nreq:
            return
        n = state["n"]
        state["n"] += 1
        if n % 4 < 2:
            # hammer two rows of bank 0: conflict chain, counter growth
            mc.enqueue(MemRequest(
                phys_addr=bank_address(mc, 0, n % 2), on_complete=issue
            ))
        else:
            mc.enqueue(MemRequest(
                phys_addr=bank_address(mc, n % 4, (n * 7) % 9),
                is_write=(n % 3 == 0), on_complete=issue,
            ))

    issue()
    issue()
    issue()
    mc.engine.run(until=until)
    assert mc.sanitizer is not None
    assert mc.sanitizer.ok, mc.sanitizer.violations[:3]
    return mc


class TestRealTrafficIsClean:
    """The controller's own command stream passes its sanitizer."""

    def test_no_mitigation(self):
        mc = _drive(NoMitigationPolicy(), nbo=100_000)
        assert mc.stats.reads + mc.stats.writes > 0

    def test_abo_alert_path(self):
        mc = _drive(AboOnlyPolicy(), nbo=16)
        assert mc.abo.alert_count > 0          # ABO ordering was checked
        assert mc.channel.rfm_count > 0

    def test_tprac_tb_rfms(self):
        mc = _drive(TpracPolicy(tb_window=2000.0), nbo=100_000)
        assert mc.channel.rfm_count > 0

    def test_per_bank_rfms(self):
        mc = _drive(PerBankRfmPolicy(tb_window=4000.0), nbo=100_000)
        assert mc.policy.pb_rfms_issued > 0

    def test_closed_page(self):
        _drive(NoMitigationPolicy(), nbo=100_000, page="closed")

    def test_sanitize_off_has_no_checker(self):
        mc = MemoryController(Engine(), small_test_config())
        assert mc.sanitizer is None
        assert mc._trace is None


class TestFig10ByteIdentical:
    """sanitize=True observes; it must never change results."""

    def test_perf_matrix_identical_with_sanitizer(self):
        designs = [DesignPoint(design="abo_only", nrh=1024)]
        kw = dict(
            workloads=["433.milc"], cores=4, requests_per_core=300, seed=0
        )
        plain = run_perf_matrix(designs, **kw)
        sanitized = run_perf_matrix(
            designs, system=SystemConfig(sanitize=True), **kw
        )
        as_json = lambda m: json.dumps(  # noqa: E731
            {k: [dataclasses.asdict(r) for r in v] for k, v in m.items()},
            sort_keys=True,
        )
        assert as_json(plain) == as_json(sanitized)
