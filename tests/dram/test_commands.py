"""Unit tests for the DRAM command vocabulary."""

from repro.dram.commands import Command, CommandKind, RfmProvenance


def test_rfm_detection():
    assert Command(kind=CommandKind.RFM_AB).is_rfm
    assert Command(kind=CommandKind.RFM_PB).is_rfm
    assert not Command(kind=CommandKind.ACT).is_rfm


def test_all_bank_detection():
    assert Command(kind=CommandKind.REF).is_all_bank
    assert Command(kind=CommandKind.RFM_AB).is_all_bank
    assert not Command(kind=CommandKind.RFM_PB).is_all_bank
    assert not Command(kind=CommandKind.RD).is_all_bank


def test_provenance_values_cover_paper_taxonomy():
    assert {p.value for p in RfmProvenance} == {"abo", "acb", "tb", "random"}


def test_command_defaults():
    command = Command(kind=CommandKind.ACT, bank_id=3, row=7, issue_time=12.5)
    assert command.provenance is None
    assert command.meta == {}
    assert repr(command)  # smoke: the debugging repr renders
