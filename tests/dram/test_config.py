"""Unit tests for DRAM configuration objects."""

import pytest

from repro.dram.config import (
    DramOrganization,
    DramTiming,
    PracConfig,
    ddr5_8000b,
    small_test_config,
)


def test_default_config_validates():
    config = ddr5_8000b()
    assert config.timing.tRC == pytest.approx(
        config.timing.tRAS + config.timing.tRP
    )


def test_paper_table3_values():
    timing = ddr5_8000b().timing
    assert timing.tRCD == 16.0
    assert timing.tCL == 16.0
    assert timing.tRP == 36.0      # PRAC-adjusted
    assert timing.tRC == 52.0
    assert timing.tRFC == 410.0
    assert timing.tREFI == 3900.0
    assert timing.tRFMab == 350.0
    assert timing.tABOACT == 180.0


def test_organization_totals():
    org = ddr5_8000b().organization
    assert org.banks_per_rank == 32
    assert org.total_banks == 128
    assert org.rows_per_bank == 128 * 1024
    assert org.columns_per_row == 128
    assert org.capacity_bytes == 128 * (128 * 1024) * 8192


def test_inconsistent_trc_rejected():
    with pytest.raises(ValueError, match="tRC"):
        DramTiming(tRC=50.0).validate()


def test_nonpositive_timing_rejected():
    with pytest.raises(ValueError):
        DramTiming(tCL=0.0).validate()


def test_trefi_must_be_less_than_trefw():
    with pytest.raises(ValueError, match="tREFI"):
        DramTiming(tREFI=1e9).validate()


def test_prac_level_restricted_to_jedec_values():
    for level in (1, 2, 4):
        PracConfig(prac_level=level).validate()
    with pytest.raises(ValueError):
        PracConfig(prac_level=3).validate()


def test_abo_delay_equals_prac_level():
    assert PracConfig(prac_level=4).abo_delay == 4


def test_with_prac_returns_modified_copy():
    base = ddr5_8000b()
    modified = base.with_prac(nbo=512)
    assert modified.prac.nbo == 512
    assert base.prac.nbo == 1024
    assert modified.timing is base.timing


def test_with_timing_and_organization_overrides():
    base = ddr5_8000b()
    assert base.with_timing(tRFMab=130.0).timing.tRFMab == 130.0
    assert base.with_organization(ranks=1).organization.ranks == 1


def test_max_acts_per_trefw_near_550k():
    # The paper quotes ~550K for this device.
    assert 500_000 < ddr5_8000b().max_acts_per_trefw < 600_000


def test_row_size_must_be_multiple_of_cacheline():
    with pytest.raises(ValueError):
        DramOrganization(row_size_bytes=100).validate()


def test_small_test_config_is_small_and_valid():
    config = small_test_config()
    assert config.organization.total_banks == 4
    assert config.prac.nbo == 64
