"""Property tests for channel-interleaved address mapping.

The multi-channel contract both mappings must honour:

* exact decode/encode round trips for every channel count;
* channel bits sit directly above the cache-line offset, so
  consecutive cache lines stripe across all channels (MOP keeps the
  channel bits *below* the MOP block);
* ``channel_of`` (the request-routing fast path) agrees with the full
  decode;
* ``channels=1`` decodes exactly as the historical single-channel
  mappings did.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import LinearMapping, MopMapping, make_mapping
from repro.dram.config import ddr5_8000b

CHANNEL_COUNTS = (1, 2, 4)


def _org(channels):
    return ddr5_8000b().with_organization(channels=channels).organization


@pytest.mark.parametrize("channels", CHANNEL_COUNTS)
@pytest.mark.parametrize("name", ["linear", "mop"])
@settings(max_examples=150, deadline=None)
@given(line=st.integers(min_value=0, max_value=2**30))
def test_roundtrip_across_channel_counts(name, channels, line):
    mapping = make_mapping(name, _org(channels))
    phys = line * 64
    addr = mapping.decode(phys)
    assert mapping.encode(addr) == phys
    assert 0 <= addr.channel < channels


@pytest.mark.parametrize("channels", CHANNEL_COUNTS)
@pytest.mark.parametrize("name", ["linear", "mop"])
@settings(max_examples=150, deadline=None)
@given(line=st.integers(min_value=0, max_value=2**30))
def test_channel_of_agrees_with_decode(name, channels, line):
    mapping = make_mapping(name, _org(channels))
    phys = line * 64
    assert mapping.channel_of(phys) == mapping.decode(phys).channel


@pytest.mark.parametrize("channels", (2, 4))
@pytest.mark.parametrize("name", ["linear", "mop"])
def test_consecutive_cache_lines_stripe_across_channels(name, channels):
    mapping = make_mapping(name, _org(channels))
    decoded = [mapping.decode(i * 64) for i in range(4 * channels)]
    # Any window of `channels` consecutive lines covers every channel —
    # in particular consecutive lines always land on distinct channels.
    for start in range(len(decoded) - channels + 1):
        window = decoded[start:start + channels]
        assert {a.channel for a in window} == set(range(channels))


@pytest.mark.parametrize("channels", (2, 4))
def test_mop_channel_bits_sit_below_the_mop_block(channels):
    """One MOP block's lines split evenly across channels, and the
    non-channel coordinates advance exactly as in the 1-channel layout
    stretched by the channel count."""
    mop_multi = MopMapping(_org(channels), mop_width=4)
    mop_single = MopMapping(_org(1), mop_width=4)
    for line in range(4 * channels * 3):
        multi = mop_multi.decode(line * 64)
        # Stripping the channel bits reproduces the single-channel decode.
        single = mop_single.decode((line // channels) * 64)
        assert multi._replace(channel=0) == single


@pytest.mark.parametrize("name", ["linear", "mop"])
def test_single_channel_matches_historical_layout(name):
    """channels=1 must decode bit-identically to the pre-multi-channel
    mapping (channel contributes zero address bits)."""
    mapping = make_mapping(name, _org(1))
    for line in (0, 1, 7, 128, 4095, 2**20 + 3):
        addr = mapping.decode(line * 64)
        assert addr.channel == 0
        assert mapping.encode(addr) == line * 64


@pytest.mark.parametrize("channels", CHANNEL_COUNTS)
def test_capacity_scales_with_channels(channels):
    org = _org(channels)
    assert org.total_banks == channels * org.banks_per_channel
    assert org.capacity_bytes == channels * _org(1).capacity_bytes
