"""Unit tests for Bank state and PRAC counters."""

import pytest

from repro.dram.bank import Bank
from repro.dram.config import small_test_config


@pytest.fixture
def bank():
    return Bank(small_test_config(), bank_id=0)


def test_activate_opens_row_and_counts(bank):
    count = bank.activate(5, time=100.0)
    assert count == 1
    assert bank.open_row == 5
    assert bank.counter(5) == 1
    assert bank.ready_at == 100.0 + bank.config.timing.tRC


def test_counters_accumulate_per_row(bank):
    for _ in range(3):
        bank.activate(7, time=0.0)
    bank.activate(8, time=0.0)
    assert bank.counter(7) == 3
    assert bank.counter(8) == 1
    assert bank.counter(9) == 0


def test_activate_out_of_range_row_rejected(bank):
    with pytest.raises(ValueError):
        bank.activate(bank.config.organization.rows_per_bank, time=0.0)


def test_precharge_closes_row(bank):
    bank.activate(3, time=0.0)
    bank.precharge(time=50.0)
    assert bank.open_row is None
    assert bank.precharge_done_at == 50.0 + bank.config.timing.tRP


def test_max_counter_row_tracks_heaviest(bank):
    bank.activate(1, 0.0)
    bank.activate(2, 0.0)
    bank.activate(2, 0.0)
    assert bank.max_counter_row() == 2


def test_max_counter_row_none_when_clean(bank):
    assert bank.max_counter_row() is None


def test_mitigate_resets_counter_and_counts(bank):
    for _ in range(5):
        bank.activate(4, 0.0)
    bank.mitigate(4)
    assert bank.counter(4) == 0
    assert bank.stats.mitigations == 1


def test_reset_all_counters(bank):
    bank.activate(1, 0.0)
    bank.activate(2, 0.0)
    bank.reset_all_counters()
    assert bank.counter(1) == 0 and bank.counter(2) == 0


def test_activation_observers_fire_with_count(bank):
    seen = []
    bank.on_activate(lambda b, row, count: seen.append((row, count)))
    bank.activate(9, 0.0)
    bank.activate(9, 0.0)
    assert seen == [(9, 1), (9, 2)]


def test_activations_since_rfm_accumulates(bank):
    bank.activate(1, 0.0)
    bank.activate(2, 0.0)
    assert bank.activations_since_rfm == 2
