"""Tests for the post-hoc timing checker, including on real traces."""


from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.commands import Command, CommandKind
from repro.dram.config import small_test_config
from repro.dram.timing import TimingChecker
from repro.mitigations.base import NoMitigationPolicy
from repro.mitigations.tprac import TpracPolicy


def _cmd(kind, bank=0, row=0, t=0.0):
    return Command(kind=kind, bank_id=bank, row=row, issue_time=t)


class TestSyntheticStreams:
    def test_clean_sequence_passes(self):
        config = small_test_config()
        checker = TimingChecker(config)
        checker.check([
            _cmd(CommandKind.ACT, row=1, t=0.0),
            _cmd(CommandKind.RD, row=1, t=16.0),
            _cmd(CommandKind.PRE, t=21.0),
            _cmd(CommandKind.ACT, row=2, t=57.0),
        ])
        assert checker.ok

    def test_trc_violation_detected(self):
        checker = TimingChecker(small_test_config())
        checker.check([
            _cmd(CommandKind.ACT, row=1, t=0.0),
            _cmd(CommandKind.PRE, t=16.0),
            _cmd(CommandKind.ACT, row=2, t=52.0 - 1.0),
        ])
        assert any(v.constraint == "tRC" for v in checker.violations)

    def test_tras_violation_detected(self):
        checker = TimingChecker(small_test_config())
        checker.check([
            _cmd(CommandKind.ACT, row=1, t=0.0),
            _cmd(CommandKind.PRE, t=10.0),
        ])
        assert any(v.constraint == "tRAS" for v in checker.violations)

    def test_trcd_violation_detected(self):
        checker = TimingChecker(small_test_config())
        checker.check([
            _cmd(CommandKind.ACT, row=1, t=0.0),
            _cmd(CommandKind.RD, row=1, t=10.0),
        ])
        assert any(v.constraint == "tRCD" for v in checker.violations)

    def test_act_on_open_bank_detected(self):
        checker = TimingChecker(small_test_config())
        checker.check([
            _cmd(CommandKind.ACT, row=1, t=0.0),
            _cmd(CommandKind.ACT, row=2, t=100.0),
        ])
        assert any(v.constraint == "OPEN" for v in checker.violations)

    def test_cas_to_wrong_row_detected(self):
        checker = TimingChecker(small_test_config())
        checker.check([
            _cmd(CommandKind.ACT, row=1, t=0.0),
            _cmd(CommandKind.RD, row=2, t=20.0),
        ])
        assert any(v.constraint == "ROW" for v in checker.violations)

    def test_command_inside_rfm_window_detected(self):
        checker = TimingChecker(small_test_config())
        checker.check([
            _cmd(CommandKind.RFM_AB, t=0.0),
            _cmd(CommandKind.ACT, row=1, t=100.0),   # inside 350ns block
        ])
        assert any(v.constraint == "BLOCKED" for v in checker.violations)

    def test_out_of_order_stream_detected_without_sort(self):
        checker = TimingChecker(small_test_config())
        checker.check(
            [
                _cmd(CommandKind.ACT, row=1, t=100.0),
                _cmd(CommandKind.PRE, t=50.0),
            ],
            sort=False,
        )
        assert any(v.constraint == "ORDER" for v in checker.violations)

    def test_sort_reorders_interleaved_bank_streams(self):
        checker = TimingChecker(small_test_config())
        # Appended out of order (different banks) but valid once sorted.
        checker.check([
            _cmd(CommandKind.ACT, bank=1, row=3, t=10.0),
            _cmd(CommandKind.ACT, bank=0, row=1, t=0.0),
            _cmd(CommandKind.RD, bank=0, row=1, t=16.0),
            _cmd(CommandKind.RD, bank=1, row=3, t=26.0),
        ])
        assert checker.ok


class TestRealControllerTraces:
    """The controller's actual command stream must satisfy the spec."""

    def _verify(self, mc):
        checker = TimingChecker(mc.config)
        checker.check(mc.command_log)
        assert checker.ok, checker.violations[:5]

    def test_conflict_heavy_trace_is_timing_clean(self):
        config = small_test_config(nbo=100_000).with_prac(nbo=100_000)
        mc = MemoryController(
            Engine(), config, policy=NoMitigationPolicy(),
            enable_refresh=False, log_commands=True,
        )
        state = {"n": 0}

        def issue(req=None):
            if state["n"] >= 60:
                return
            row = [1, 2, 3][state["n"] % 3]
            state["n"] += 1
            mc.enqueue(
                MemRequest(phys_addr=bank_address(mc, 0, row), on_complete=issue)
            )

        issue()
        mc.engine.run(until=50_000)
        assert sum(1 for c in mc.command_log if c.kind is CommandKind.ACT) == 60
        self._verify(mc)

    def test_trace_with_refresh_and_tb_rfms_is_timing_clean(self):
        config = small_test_config(nbo=100_000).with_prac(nbo=100_000)
        mc = MemoryController(
            Engine(), config, policy=TpracPolicy(tb_window=2000.0),
            enable_refresh=True, log_commands=True,
        )
        state = {"n": 0}

        def issue(req=None):
            if state["n"] >= 120:
                return
            row = state["n"] % 5
            bank = state["n"] % 3
            state["n"] += 1
            mc.enqueue(
                MemRequest(
                    phys_addr=bank_address(mc, bank, row), on_complete=issue
                )
            )

        issue()
        mc.engine.run(until=60_000)
        kinds = {c.kind for c in mc.command_log}
        assert CommandKind.RFM_AB in kinds
        assert CommandKind.REF in kinds
        self._verify(mc)

    def test_multibank_write_trace_is_timing_clean(self):
        config = small_test_config(nbo=100_000).with_prac(nbo=100_000)
        mc = MemoryController(
            Engine(), config, policy=NoMitigationPolicy(),
            enable_refresh=False, log_commands=True,
        )
        state = {"n": 0}

        def issue(req=None):
            if state["n"] >= 80:
                return
            n = state["n"]
            state["n"] += 1
            mc.enqueue(
                MemRequest(
                    phys_addr=bank_address(mc, n % 4, (n * 7) % 9),
                    is_write=(n % 3 == 0),
                    on_complete=issue,
                )
            )

        issue()
        mc.engine.run(until=50_000)
        self._verify(mc)
