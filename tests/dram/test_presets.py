"""Tests for named device presets and config sensitivity."""


from repro.analysis.feinting import feinting_tmax
from repro.dram.config import PRESETS, ddr5_4800, ddr5_8000b


def test_presets_registry():
    assert set(PRESETS) >= {"ddr5_8000b", "ddr5_4800"}
    for config in PRESETS.values():
        config.validate()


def test_slow_bin_has_longer_burst():
    fast, slow = ddr5_8000b(), ddr5_4800()
    assert slow.timing.tBL > fast.timing.tBL
    assert slow.timing.tCK > fast.timing.tCK
    # PRAC-relevant timings are shared (absolute-time JEDEC floors).
    assert slow.timing.tRC == fast.timing.tRC
    assert slow.timing.tRFMab == fast.timing.tRFMab


def test_feinting_analysis_works_for_both_presets():
    """The security analysis depends only on tRC/tRFC/tRFMab/tREFI,
    which both presets share, so TMAX must agree."""
    trefi = ddr5_8000b().timing.tREFI
    for name, config in PRESETS.items():
        result = feinting_tmax(config, trefi, with_reset=True)
        assert result.tmax == 572, name


def test_simulation_runs_on_slow_preset():
    from repro.controller.controller import MemoryController
    from repro.controller.request import MemRequest
    from repro.core.engine import Engine
    from repro.mitigations.base import NoMitigationPolicy

    mc = MemoryController(
        Engine(), ddr5_4800(), policy=NoMitigationPolicy(),
        enable_refresh=False,
    )
    done = []
    mc.enqueue(MemRequest(phys_addr=0, on_complete=lambda r: done.append(r)))
    mc.engine.run(until=10_000)
    assert len(done) == 1
    # Longer burst -> strictly higher latency than the fast bin.
    assert done[0].latency > 34.0
