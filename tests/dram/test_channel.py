"""Unit tests for the Channel aggregate."""

from repro.dram.config import small_test_config
from repro.dram.rank import Channel


def test_channel_builds_all_banks():
    config = small_test_config()
    channel = Channel(config)
    assert len(channel) == config.organization.total_banks
    assert [bank.bank_id for bank in channel] == list(range(len(channel)))


def test_block_closes_rows_and_pushes_ready():
    channel = Channel(small_test_config())
    channel.bank(0).activate(3, time=0.0)
    end = channel.block(start=100.0, duration=350.0)
    assert end == 450.0
    assert channel.blocked_until == 450.0
    assert channel.bank(0).open_row is None
    for bank in channel:
        assert bank.ready_at >= 450.0


def test_block_extends_not_shrinks():
    channel = Channel(small_test_config())
    channel.block(0.0, 1000.0)
    channel.block(100.0, 10.0)
    assert channel.blocked_until == 1000.0


def test_block_bank_only_affects_one_bank():
    channel = Channel(small_test_config())
    channel.bank(1).activate(2, 0.0)
    channel.block_bank(1, start=0.0, duration=130.0)
    assert channel.bank(1).ready_at >= 130.0
    assert channel.bank(0).ready_at == 0.0
    assert channel.blocked_until == 0.0


def test_reset_all_counters_spans_banks():
    channel = Channel(small_test_config())
    channel.bank(0).activate(1, 0.0)
    channel.bank(2).activate(5, 0.0)
    channel.reset_all_counters()
    assert channel.bank(0).counter(1) == 0
    assert channel.bank(2).counter(5) == 0
