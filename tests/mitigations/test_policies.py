"""Tests for the mitigation policies (ABO-Only, ACB-RFM, factory)."""

import pytest

from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.commands import RfmProvenance
from repro.dram.config import small_test_config
from repro.mitigations import make_policy
from repro.mitigations.abo_only import AboOnlyPolicy
from repro.mitigations.acb_rfm import AcbRfmPolicy
from repro.mitigations.base import NoMitigationPolicy


def _hammer(mc, bank, rows, count):
    state = {"n": 0}
    addrs = [bank_address(mc, bank, r) for r in rows]

    def issue(req=None):
        if state["n"] >= count:
            return
        addr = addrs[state["n"] % len(addrs)]
        state["n"] += 1
        mc.enqueue(MemRequest(phys_addr=addr, on_complete=issue))

    issue()
    mc.engine.run(until=100_000_000)


def test_factory_names():
    assert isinstance(make_policy("none"), NoMitigationPolicy)
    assert isinstance(make_policy("abo_only"), AboOnlyPolicy)
    assert isinstance(make_policy("abo_acb", bat=32), AcbRfmPolicy)
    with pytest.raises(ValueError):
        make_policy("magic")


def test_abo_only_mitigates_most_activated_row():
    config = small_test_config(nbo=8).with_prac(nbo=8, abo_act=0)
    mc = MemoryController(
        Engine(), config, policy=AboOnlyPolicy(), enable_refresh=False
    )
    _hammer(mc, bank=0, rows=[1, 2], count=20)
    records = mc.stats.rfm_records
    assert records, "expected at least one ABO RFM"
    assert records[0].provenance is RfmProvenance.ABO
    assert 0 in records[0].mitigated_rows
    assert records[0].mitigated_rows[0] in (1, 2)


def test_acb_rfm_fires_at_bat_threshold():
    config = small_test_config(nbo=1000).with_prac(nbo=1000)
    policy = AcbRfmPolicy(bat=16)
    mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
    _hammer(mc, bank=0, rows=[1, 2, 3, 4], count=40)
    assert policy.acb_rfms_requested >= 2
    assert mc.stats.rfm_count(RfmProvenance.ACB) >= 2
    # The ACB-RFMs prevented any ABO at this high N_BO.
    assert mc.stats.rfm_count(RfmProvenance.ABO) == 0


def test_acb_rfm_resets_bank_activation_count():
    config = small_test_config(nbo=1000)
    policy = AcbRfmPolicy(bat=16)
    mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
    _hammer(mc, bank=0, rows=[1, 2, 3, 4], count=20)
    assert mc.channel.bank(0).activations_since_rfm < 16


def test_bat_for_threshold_has_floor_of_16():
    assert AcbRfmPolicy.bat_for_threshold(16) == 16
    assert AcbRfmPolicy.bat_for_threshold(1024) == 512


def test_no_mitigation_policy_never_mitigates():
    config = small_test_config(nbo=8)
    policy = NoMitigationPolicy()
    mc = MemoryController(
        Engine(), config, policy=policy, enable_abo=False, enable_refresh=False
    )
    _hammer(mc, bank=0, rows=[1, 2], count=30)
    assert policy.mitigations_performed == 0
    assert mc.stats.rfm_count() == 0


def test_counter_reset_clears_policy_queues():
    config = small_test_config(nbo=1000)
    policy = AboOnlyPolicy()
    mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
    _hammer(mc, bank=0, rows=[1, 2], count=6)
    assert policy.queues[0].peek() is not None
    policy.on_counter_reset(mc, 0.0)
    assert policy.queues[0].peek() is None
