"""The string -> factory mitigation registry."""

import pytest

from repro import mitigations

pytestmark = pytest.mark.smoke


def test_available_lists_every_policy():
    assert mitigations.available() == sorted(
        ["none", "abo_only", "abo_acb", "tprac", "obfuscation", "rfmpb", "qprac"]
    )


def test_get_returns_factories_matching_policy_names():
    for name in mitigations.available():
        assert mitigations.get(name).name == name


def test_get_unknown_name_lists_alternatives():
    with pytest.raises(ValueError, match="qprac"):
        mitigations.get("prac_plus_plus")


def test_make_policy_instantiates_with_kwargs():
    policy = mitigations.make_policy("tprac", tb_window=5000.0)
    assert policy.name == "tprac"
    assert mitigations.make_policy("none").name == "none"
    with pytest.raises(ValueError):
        mitigations.make_policy("bogus")
